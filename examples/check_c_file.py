#!/usr/bin/env python3
"""Test your own mini-C code with DART: a tiny command-line front end.

Usage:
    python examples/check_c_file.py FILE.c TOPLEVEL [options]

Options:
    --depth N           successive toplevel calls per run (default 1)
    --max-iterations N  run budget (default 10000)
    --seed N            randomness seed (default 0)
    --strategy S        dfs | bfs | random (default dfs)
    --all-errors        keep searching after the first error
    --random            use the random-testing baseline instead of DART

Example (the AC controller from the paper):
    python examples/check_c_file.py /tmp/ac.c ac_controller --depth 2
"""

import argparse
import sys

from repro import DartOptions, Dart, RandomTester
from repro.minic.errors import MiniCError


def build_arg_parser():
    parser = argparse.ArgumentParser(
        description="DART: directed automated random testing for mini-C",
    )
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("toplevel", help="function to test")
    parser.add_argument("--depth", type=int, default=1)
    parser.add_argument("--max-iterations", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strategy", default="dfs",
                        choices=("dfs", "bfs", "random"))
    parser.add_argument("--all-errors", action="store_true")
    parser.add_argument("--random", action="store_true",
                        help="random testing baseline (no directed search)")
    return parser


def main(argv=None):
    args = build_arg_parser().parse_args(argv)
    with open(args.file) as handle:
        source = handle.read()
    options = DartOptions(
        depth=args.depth,
        max_iterations=args.max_iterations,
        seed=args.seed,
        strategy=args.strategy,
        stop_on_first_error=not args.all_errors,
    )
    tester_class = RandomTester if args.random else Dart
    try:
        tester = tester_class(source, args.toplevel, options,
                              filename=args.file)
    except MiniCError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    result = tester.run()
    print(result.describe())
    for error in result.errors:
        print(" -", error.describe())
    stats = result.stats.summary()
    print("runs: {iterations}, distinct paths: {distinct_paths}, "
          "solver calls: {solver_calls}, elapsed: {elapsed_s}s"
          .format(**stats))
    return 1 if result.found_error else 0


if __name__ == "__main__":
    sys.exit(main())
