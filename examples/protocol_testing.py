#!/usr/bin/env python3
"""Security-protocol testing: Needham-Schroeder (Section 4.2).

Reproduces the paper's headline security result at interactive scale:

* under the *possibilistic* environment (any raw message), DART finds the
  projection of Lowe's attack from the responder's point of view with two
  input messages;
* under the *Dolev-Yao* intruder filter, the search space grows steeply
  with the number of intruder actions, there is no attack of length <= 3,
  and the full Lowe attack appears at length 4 (run with --full to search
  for it; it takes a few minutes, like the paper's 18-minute search).

Run:  python examples/protocol_testing.py [--full]
"""

import sys

from repro import dart_check
from repro.programs.needham_schroeder import ns_source, ns_toplevel

AGENTS = {1: "A", 2: "B", 3: "I"}
NONCES = {101: "Na", 102: "Nb", 103: "Ni"}


def describe_dy_attack(inputs):
    """Pretty-print a Dolev-Yao attack input vector (3 ints per step)."""
    steps = [inputs[i : i + 3] for i in range(0, len(inputs), 3)]
    lines = []
    for op, x, y in steps:
        if op == 1:
            lines.append("A starts a session with B")
        elif op == 2:
            lines.append("A starts a session with the intruder")
        elif op == 3:
            lines.append("intruder forwards recorded message #{} to its "
                         "addressee".format(x))
        elif op == 4:
            lines.append(
                "intruder composes msg1 {{{}, {}}}Kb for B".format(
                    NONCES.get(x, x), AGENTS.get(y, y)
                )
            )
        elif op == 5:
            lines.append("intruder composes msg3 {{{}}}Kb for B".format(
                NONCES.get(x, x)
            ))
        else:
            lines.append("(no-op)")
    return lines


def main(full=False):
    print("=== possibilistic environment (Fig. 9) ===")
    for depth in (1, 2):
        result = dart_check(ns_source("possibilistic"), "ns_step",
                            depth=depth, max_iterations=20_000, seed=0)
        print("depth {}: {}".format(depth, result.describe()))

    print("\n=== Dolev-Yao intruder model (Fig. 10) ===")
    depths = (1, 2, 3, 4) if full else (1, 2)
    for depth in depths:
        result = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                            depth=depth, max_iterations=400_000, seed=0,
                            time_limit=None if full else 60)
        print("depth {}: {}".format(depth, result.describe()))
        if result.found_error:
            print("  the attack, step by step:")
            for line in describe_dy_attack(result.first_error().inputs):
                print("   -", line)
    if not full:
        print("(run with --full to search for the length-4 Lowe attack)")

    print("\n=== Lowe's fix (correct variant), possibilistic check ===")
    result = dart_check(ns_source("dolev_yao", fix="correct"),
                        ns_toplevel("dolev_yao"), depth=2,
                        max_iterations=20_000, seed=0)
    print("depth 2 with correct fix: {}".format(result.describe()))


if __name__ == "__main__":
    main(full="--full" in sys.argv[1:])
