#!/usr/bin/env python3
"""A tour of the tooling around the core search: the RAM-machine IR
disassembler, branch-direction coverage, and the uninitialized-read
detector.

The program under test is a little message router with layered input
validation — the kind of code where (as the paper's introduction argues)
random testing gets stuck at the first magic-number check while the
directed search walks straight through.

Run:  python examples/coverage_and_ir.py
"""

from repro import DartOptions, dart_check, random_check
from repro.minic import compile_program
from repro.minic.disasm import disassemble

SOURCE = """
enum { MAGIC = 0x5154 };

int route(int magic, int kind, int ttl) {
  int hops;
  if (magic != MAGIC) return -1;       /* filter 1 */
  if (ttl <= 0) return -2;             /* filter 2 */
  switch (kind) {
    case 1:  /* ping */
      return 0;
    case 2:  /* relay */
      hops = ttl - 1;
      if (hops == 0) return -3;
      return hops;
    case 3:  /* admin */
      if (ttl == 31337)
        abort();  /* the bug: admin packets with a magic ttl */
      return 1;
    default:
      return -4;
  }
}
"""


def main():
    module = compile_program(SOURCE)
    print("RAM-machine IR for route():")
    print(disassemble(module))

    budget = 200
    directed = dart_check(
        SOURCE, "route",
        DartOptions(max_iterations=budget, seed=0,
                    stop_on_first_error=False),
    )
    baseline = random_check(
        SOURCE, "route",
        DartOptions(max_iterations=budget, seed=0,
                    stop_on_first_error=False),
    )
    print("\nAfter {} runs each:".format(budget))
    print("  DART:   {}  | coverage {}".format(
        directed.describe(), directed.coverage.describe()
    ))
    print("  random: {}  | coverage {}".format(
        baseline.describe(), baseline.coverage.describe()
    ))
    if directed.found_error:
        error = directed.first_error()
        print("  the trigger: magic={:#x} kind={} ttl={}".format(
            *error.inputs[:3]
        ))

    print("\nUninitialized-read detection "
          "(the check the paper delegates to Purify):")
    buggy = """
    int parse_header(int version) {
      int flags;
      if (version >= 7) flags = 1;
      return flags;   /* never set for old versions */
    }
    """
    result = dart_check(
        buggy, "parse_header",
        DartOptions(max_iterations=100, seed=0, track_uninitialized=True),
    )
    print(" ", result.describe())


if __name__ == "__main__":
    main()
