#!/usr/bin/env python3
"""Library API fuzzing: the oSIP study at interactive scale (Section 4.3).

Takes a sample of the generated oSIP-like library's ~600 exported
functions, makes each one the DART toplevel in turn (exactly the paper's
setup: "we considered one-by-one each of the about 600 externally visible
functions as the toplevel function"), and reports which ones crash within
the iteration budget.  Then demonstrates the alloca security bug: a large
enough packet crashes the parser through the unchecked allocation.

Run:  python examples/library_fuzzing.py [sample_size]
"""

import random
import sys

from repro import DartOptions, dart_check
from repro.interp import Machine, MachineOptions, SegFault
from repro.interp.memory import MemoryOptions
from repro.minic import compile_program
from repro.programs.osip import OsipLibrary


def sweep(library, sample_size, seed=0):
    rng = random.Random(seed)
    sample = rng.sample(library.functions, sample_size)
    crashed = []
    for entry in sample:
        options = DartOptions(max_iterations=1000, seed=1,
                              max_steps=200_000, max_init_depth=4)
        result = dart_check(library.source_for_function(entry.name),
                            entry.name, options)
        if result.found_error:
            crashed.append((entry, result))
        status = "CRASH in {} run(s)".format(result.iterations) \
            if result.found_error else "survived"
        print("  {:<38} {}".format(entry.name, status))
    return sample, crashed


def alloca_attack(library):
    module = compile_program(library.source_for_module("parser"))
    stack_limit = 1 << 16  # the cygwin stack of the paper, scaled down

    def probe(size):
        machine = Machine(module, MachineOptions(
            max_steps=10_000_000,
            memory=MemoryOptions(stack_limit=stack_limit),
        ))
        try:
            machine.run("osip_attack_probe", (size,))
            return "parsed fine"
        except SegFault as fault:
            return "CRASH ({})".format(fault.message)

    print("\nThe alloca attack (stack limit = {} bytes):".format(
        stack_limit
    ))
    for size in (1024, 16 * 1024, 48 * 1024, 96 * 1024, 512 * 1024):
        print("  message of {:>7} bytes: {}".format(size, probe(size)))


def main(sample_size=20):
    library = OsipLibrary()
    print("Generated oSIP-like library: {} exported functions, "
          "{} modules".format(len(library.functions),
                              len(library.module_names)))
    print("Sweeping a random sample of {} functions "
          "(max 1,000 runs each):".format(sample_size))
    sample, crashed = sweep(library, sample_size)
    print("\n=> DART crashed {} of {} sampled functions ({:.0f}%)".format(
        len(crashed), len(sample), 100 * len(crashed) / len(sample)
    ))
    print("   (the paper reports 65% over the full library; run the "
          "benchmark for the complete sweep)")
    alloca_attack(library)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
