#!/usr/bin/env python3
"""Quickstart: DART on the paper's introductory example (Section 2.1).

The function ``h`` aborts when ``f(x) == x + 10`` (i.e. ``x == 10``) with
``x != y``.  Random testing has a 1-in-2^32 chance per run of hitting it;
DART's directed search solves the branch constraints and finds it on the
second execution.

Run:  python examples/quickstart.py
"""

from repro import dart_check, extract_interface, generate_driver, random_check

SOURCE = """
int f(int x) { return 2 * x; }

int h(int x, int y) {
  if (x != y)
    if (f(x) == x + 10)
      abort();  /* error */
  return 0;
}
"""


def main():
    print("Program under test:")
    print(SOURCE)

    # 1. Interface extraction (Section 3.1): fully automatic.
    interface, _ = extract_interface(SOURCE, "h")
    print("Extracted interface:", interface)

    # 2. Test-driver generation (Section 3.2): the driver is mini-C code.
    print("\nGenerated test driver:")
    print(generate_driver(interface, depth=1))

    # 3. The directed search (Section 2): two runs suffice.
    result = dart_check(SOURCE, "h", max_iterations=100, seed=7)
    print("DART:", result.describe())
    error = result.first_error()
    print("  inputs that trigger the bug: x = {}, y = {}".format(
        *error.inputs[:2]
    ))
    print("  (note x == 10, solved from the path constraint "
          "(x != y, 2x == x + 10))")

    # 4. The random-testing baseline: thousands of runs, nothing.
    baseline = random_check(SOURCE, "h", max_iterations=5000, seed=7)
    print("\nRandom testing:", baseline.describe())


if __name__ == "__main__":
    main()
