"""Exportable, replayable regression suites (the DART *product*).

A directed-search campaign discovers concrete input vectors that cover
branches and trigger errors; this package turns them into standalone
regression artifacts — the CTGEN-style deliverable the ROADMAP names.
Each artifact directory holds the mini-C source, the input vector, the
expected verdict (ok / error class / path and coverage fingerprint) and
a generated pytest wrapper that replays it through the forcing-replay
machinery with **zero search**; a deduplicated corpus manager keys the
artifacts by path fingerprint + error class, prunes coverage-subsumed
entries, and maintains a manifest with per-function C1 branch-coverage
metadata and provenance.  See ``docs/SUITES.md`` for the artifact
layout, the manifest schema, the dedup rules and the replay contract.

Entry points:

* :func:`export_suite` — write a suite from a finished (or interrupted)
  session; wired into ``Dart.run`` via ``DartOptions(export_suite=...)``
  and the ``python -m repro export-suite`` command.
* :func:`replay_suite` / :func:`check_artifact` — re-execute artifacts
  and compare against their recorded expectations bit-for-bit
  (``python -m repro replay-suite``; the generated pytest wrappers call
  :func:`check_artifact` directly, so a suite also runs under plain
  ``pytest`` with only ``PYTHONPATH=src``).
* :func:`suite_coverage` — the suite's C1 branch-coverage rollup
  (``python -m repro coverage-report``).
"""

from repro.suite.artifact import (
    Artifact,
    CorruptArtifact,
    load_artifact,
    load_manifest,
    load_suite,
    path_fingerprint,
)
from repro.suite.corpus import build_manifest, dedupe_artifacts, prune_subsumed
from repro.suite.export import export_suite
from repro.suite.replay import (
    ReplayOutcome,
    check_artifact,
    replay_artifact,
    replay_suite,
    suite_coverage,
)

__all__ = [
    "Artifact",
    "CorruptArtifact",
    "ReplayOutcome",
    "build_manifest",
    "check_artifact",
    "dedupe_artifacts",
    "export_suite",
    "load_artifact",
    "load_manifest",
    "load_suite",
    "path_fingerprint",
    "prune_subsumed",
    "replay_artifact",
    "replay_suite",
    "suite_coverage",
]
