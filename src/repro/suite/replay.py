"""The replay contract: re-execute an artifact with zero search.

Replay rebuilds the driver module from the artifact's pinned source and
options, feeds the recorded input vector back slot-by-slot (kinds
preserved — a ``ptr_choice`` slot replays the same shape decision), and
runs the program once under forcing-replay hooks that *record* the
branch path but never predict, negate or solve anything.  The outcome
is compared bit-for-bit against the recorded expectation:

* the **verdict** — ok, or an error of the recorded (kind, location)
  class;
* the **branch path** — the exact branch-bit signature;
* the **covered-branch set** — every (function, pc, taken) direction of
  the program under test.

Any difference is a regression (or a drifted toolchain) and fails the
generated pytest wrapper via :func:`check_artifact`.  Replay always
uses the tree-walking interpreter — the engines are observationally
identical (pinned by the engine-differential oracle), and the
interpreter has no lowering warm-up to pay for a single run.
"""

import os
import random

from repro.dart.config import DartOptions
from repro.dart.coverage import BranchCoverage, is_program_branch
from repro.dart.driver import DRIVER_ENTRY
from repro.dart.instrument import DirectedHooks
from repro.dart.inputs import InputVector
from repro.interp.faults import ExecutionFault
from repro.suite.artifact import (
    CorruptArtifact,
    load_artifact,
    load_suite,
)
from repro.symbolic.flags import CompletenessFlags


class _ReplayRecordingHooks(DirectedHooks):
    """Forcing-replay hooks: recorded inputs in, branch record out.

    ``acquire_input`` returns the recorded slot value with no symbolic
    variable attached, so the run is purely concrete; the inherited
    ``on_branch`` still appends every branch to the path record, and
    with an empty predicted stack it can never raise a forcing
    mismatch.  A program that asks for more inputs than were recorded
    gets zeros — the same contract as ``Dart.replay``.
    """

    def acquire_input(self, kind):
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        if ordinal < len(self.im):
            return self.im[ordinal].value, None
        return 0, None


class ReplayOutcome:
    """What one artifact replay produced."""

    __slots__ = ("fault", "path", "covered")

    def __init__(self, fault, path, covered):
        #: The ExecutionFault raised, or None for a clean run.
        self.fault = fault
        #: The branch-bit signature of the replayed run.
        self.path = tuple(path)
        #: Program-function (function, pc, taken) triples exercised.
        self.covered = set(covered)

    @property
    def verdict(self):
        return "error" if self.fault is not None else "ok"

    @property
    def error_key(self):
        if self.fault is None:
            return None
        return (self.fault.kind, str(self.fault.location))


def _replay_options(option_fields):
    """Build the replay DartOptions from an artifact's pinned fields."""
    return DartOptions(
        depth=option_fields["depth"],
        max_init_depth=option_fields["max_init_depth"],
        transparent_memory=option_fields["transparent_memory"],
        track_uninitialized=option_fields["track_uninitialized"],
        max_steps=option_fields["max_steps"],
        stack_limit=option_fields["stack_limit"],
        heap_limit=option_fields["heap_limit"],
        max_call_depth=option_fields["max_call_depth"],
        max_iterations=1,
        compiled_execution=False,
    )


def execute_vector(dart, inputs, kinds):
    """One forcing replay of ``inputs`` on a built :class:`Dart`.

    Shared by artifact replay and by the exporter (which rematerializes
    path/coverage for checkpoint-restored errors that predate witness
    collection).  Returns a :class:`ReplayOutcome`.
    """
    im = InputVector()
    for ordinal, value in enumerate(inputs):
        kind = kinds[ordinal] if ordinal < len(kinds) else "int"
        im.record(ordinal, kind, value)
    hooks = _ReplayRecordingHooks(
        im, [], CompletenessFlags(), random.Random(0), dart.options)
    machine = dart._machine(hooks, CompletenessFlags())
    fault = None
    try:
        machine.run(DRIVER_ENTRY)
    except ExecutionFault as caught:
        fault = caught
    covered = {entry for entry in machine.covered_branches
               if is_program_branch(entry)}
    return ReplayOutcome(fault, hooks.record.path_key(), covered)


def replay_artifact(directory):
    """Load and re-execute one artifact; returns ``(outcome, body)``.

    Raises :class:`CorruptArtifact` if the artifact fails validation.
    The comparison against the expectation is :func:`check_artifact`'s
    job — this function only produces the replayed facts.
    """
    from repro.dart.runner import Dart

    artifact, body = load_artifact(directory)
    options = _replay_options(body["options"])
    # Rebuild under the campaign's filename — fault locations embed it,
    # and the error-class comparison is string-exact.
    dart = Dart(body["source"], body["toplevel"], options,
                filename=body.get("filename", "<program>"))
    outcome = execute_vector(dart, artifact.inputs, artifact.kinds)
    return outcome, body


def check_artifact(directory):
    """Replay one artifact and assert its expectation bit-for-bit.

    The generated ``test_<id>.py`` wrappers call this; it raises
    ``AssertionError`` with a readable diff on any divergence.
    """
    outcome, body = replay_artifact(directory)
    expected_error = body["error"]
    assert outcome.verdict == body["verdict"], (
        "verdict drifted: expected {!r}, replay produced {!r}".format(
            body["verdict"], outcome.verdict))
    if expected_error is not None:
        expected_key = (expected_error["kind"],
                        str(expected_error["location"]))
        assert outcome.error_key == expected_key, (
            "error class drifted: expected {!r}, replay raised "
            "{!r}".format(expected_key, outcome.error_key))
    expected_path = tuple(bool(bit) for bit in body["path"])
    assert outcome.path == expected_path, (
        "branch path drifted: expected {} bit(s) {!r}, replay took "
        "{} bit(s) {!r}".format(
            len(expected_path),
            [1 if bit else 0 for bit in expected_path],
            len(outcome.path), [1 if bit else 0 for bit in outcome.path]))
    expected_covered = {(entry[0], int(entry[1]), bool(entry[2]))
                        for entry in body["covered"]}
    assert outcome.covered == expected_covered, (
        "covered-branch set drifted: missing {!r}, extra {!r}".format(
            sorted(expected_covered - outcome.covered),
            sorted(outcome.covered - expected_covered)))
    return outcome


def replay_suite(suite_dir):
    """Replay every artifact of a suite; returns a JSON-ready report.

    Corrupt entries are quarantined (listed, not fatal); replay
    divergences are recorded as failures.  ``report["ok"]`` is True
    only when every manifest entry replayed green.
    """
    from repro.suite.artifact import load_manifest

    manifest = load_manifest(suite_dir)
    passed = []
    failed = []
    quarantined = []
    for entry in manifest.get("artifacts", ()):
        directory = os.path.join(suite_dir, entry["dir"])
        try:
            check_artifact(directory)
        except CorruptArtifact as exc:
            quarantined.append({"id": entry.get("id", "?"),
                                "reason": str(exc)})
            continue
        except AssertionError as exc:
            failed.append({"id": entry.get("id", "?"),
                           "reason": str(exc)})
            continue
        passed.append(entry["id"])
    return {
        "suite": suite_dir,
        "artifacts": len(manifest.get("artifacts", ())),
        "passed": passed,
        "failed": failed,
        "quarantined": quarantined,
        "ok": not failed and not quarantined,
    }


def suite_coverage(suite_dir):
    """The C1 coverage rollup of a suite's loadable artifacts.

    Rebuilds the driver module from the manifest's pinned toplevel and
    options plus the first artifact's source, unions the artifacts'
    covered sets, and returns ``(BranchCoverage, manifest,
    quarantined)``.  Corrupt entries contribute nothing (and are
    reported), mirroring :func:`repro.suite.artifact.load_suite`.
    """
    from repro.dart.driver import build_test_program

    manifest, loaded, quarantined = load_suite(suite_dir)
    options = manifest["options"]
    union = set()
    source = None
    for _entry, artifact, body in loaded:
        union |= artifact.covered
        if source is None:
            source = body["source"]
    if source is None:
        raise CorruptArtifact(
            "suite: no loadable artifacts under {}".format(suite_dir))
    module = build_test_program(
        source, manifest["toplevel"], depth=options["depth"],
        filename=os.path.join(suite_dir, "program.c"),
        max_init_depth=options["max_init_depth"],
    )
    return BranchCoverage(module, union), manifest, quarantined
