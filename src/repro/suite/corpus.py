"""The deduplicated corpus manager: identity, subsumption, manifest.

Two artifacts are the *same discovery* when they share a path
fingerprint (sha256 over the branch-bit signature) and an error class
((fault kind, location), or None for a clean run) — the same key the
session's witness recorder uses, and the same key `repro.dart.runner`
deduplicates reported errors by.

Beyond identity, a clean artifact earns its place only by *coverage*:
an ok-run whose covered-branch set adds no direction to the union of
the kept artifacts would replay forever without ever distinguishing a
regression, so it is pruned (greedy largest-set-first, which keeps the
union exactly equal to the witnesses' union — the suite's
``coverage-report`` can never show less than the originating campaign
recorded).  Error-revealing artifacts are **never** pruned: each is the
sole replayable witness of its error class, coverage notwithstanding.
"""

import hashlib

from repro.dart.coverage import BranchCoverage
from repro.suite.artifact import SUITE_VERSION, replay_options_dict


def dedupe_artifacts(artifacts):
    """Collapse artifacts sharing a (path fingerprint, error class) key.

    First occurrence wins (witnesses arrive in discovery order, and the
    earliest run of a path is the canonical one).  Returns
    ``(unique, duplicates)``.
    """
    seen = set()
    unique = []
    duplicates = []
    for artifact in artifacts:
        key = artifact.dedup_key
        if key in seen:
            duplicates.append(artifact)
            continue
        seen.add(key)
        unique.append(artifact)
    return unique, duplicates


def prune_subsumed(artifacts):
    """Drop ok-artifacts whose coverage the kept set already provides.

    Error artifacts are all kept and contribute their coverage first;
    clean artifacts are then admitted greedily (largest covered set
    first, path fingerprint as the deterministic tie-break) whenever
    they add at least one uncovered direction.  The kept artifacts'
    covered union therefore equals the input union.  If nothing at all
    survives (a branchless program with only clean runs), the first
    candidate is kept so the suite still witnesses the ok verdict.
    Returns ``(kept, pruned)``.
    """
    errors = [artifact for artifact in artifacts
              if artifact.error is not None]
    oks = [artifact for artifact in artifacts if artifact.error is None]
    union = set()
    for artifact in errors:
        union |= artifact.covered
    kept = list(errors)
    pruned = []
    kept_ok = 0
    for artifact in sorted(
            oks, key=lambda a: (-len(a.covered), a.path_fp)):
        if artifact.covered - union:
            kept.append(artifact)
            union |= artifact.covered
            kept_ok += 1
        else:
            pruned.append(artifact)
    if not kept_ok and pruned:
        # Nothing clean survived on coverage grounds; keep the first
        # candidate anyway so an errorless program still gets a
        # replayable ok-witness.
        kept.append(pruned.pop(0))
    return kept, pruned


def build_manifest(module, source, toplevel, options, result, kept,
                   counts):
    """The manifest body for a suite of ``kept`` artifacts.

    ``counts`` is ``{"witnesses", "deduped", "pruned"}``;
    ``result`` supplies provenance (status, iterations) and may be None
    for a standalone (non-session) export.  Deterministic by
    construction: artifacts sorted by id, no timestamps.
    """
    from repro.solver.cache import ENCODING_VERSION

    union = set()
    for artifact in kept:
        union |= artifact.covered
    coverage = BranchCoverage(module, union)
    entries = []
    for artifact in sorted(kept, key=lambda a: a.artifact_id):
        entries.append({
            "id": artifact.artifact_id,
            "dir": "artifacts/{}".format(artifact.artifact_id),
            "verdict": artifact.verdict,
            "error": dict(artifact.error)
            if artifact.error is not None else None,
            "path_fingerprint": artifact.path_fp,
            "covered_directions": len(artifact.covered),
            "iteration": artifact.iteration,
        })
    return {
        "suite_version": SUITE_VERSION,
        "kind": "dart-regression-suite",
        "toplevel": toplevel,
        "options": replay_options_dict(options),
        "provenance": {
            "seed": options.seed,
            "strategy": options.strategy,
            "depth": options.depth,
            "options_digest": options.digest(),
            "encoding": ENCODING_VERSION,
            "source_sha256":
                hashlib.sha256(source.encode()).hexdigest(),
            "status": result.status if result is not None else None,
            "iterations": result.stats.iterations
            if result is not None else None,
        },
        "coverage": coverage.to_dict(),
        "counts": {
            "witnesses": counts.get("witnesses", len(kept)),
            "deduped": counts.get("deduped", 0),
            "pruned": counts.get("pruned", 0),
            "artifacts": len(kept),
            "errors": sum(1 for artifact in kept
                          if artifact.error is not None),
        },
        "artifacts": entries,
    }
