"""The suite exporter: campaign witnesses → standalone artifact tree.

``export_suite`` takes a finished (or interrupted — the runner calls it
either way) session and writes::

    <out_dir>/
        program.c            the campaign's program under test
        manifest.json        checksummed suite manifest (see corpus.py)
        artifacts/<id>/      one standalone replay test per discovery

The raw material is the session's :class:`PathWitness` list.  Errors
restored from a checkpoint written *without* witness collection carry
only their input vectors, so any error class missing from the witnesses
is rematerialized by one forcing replay through the live session's
machine — a non-reproducing restored error (drifted source, flaky
environment) is skipped rather than exported as a test that fails on
arrival.

Every duplicate collapse and subsumption prune is announced on the
trace bus (``artifact_deduped``) and counted into the session's
statistics; the export itself lands as one ``suite_exported`` event.
"""

import os

from repro.obs import trace as tr
from repro.suite.artifact import (
    ARTIFACTS_DIR,
    MANIFEST_FILE,
    PROGRAM_FILE,
    SUITE_VERSION,
    Artifact,
    body_checksum,
    write_artifact,
    _dump_json,
)
from repro.suite.corpus import (
    build_manifest,
    dedupe_artifacts,
    prune_subsumed,
)


def _rematerialize_errors(dart, result, witnessed_error_keys):
    """Replay unwitnessed restored errors to recover path + coverage.

    Returns the extra :class:`Artifact` list.  An error whose replay no
    longer faults with the recorded class is dropped — exporting it
    would plant a test that fails on its first run.
    """
    from repro.suite.replay import execute_vector

    extra = []
    for error in result.errors:
        key = (error.fault.kind, str(error.fault.location))
        if key in witnessed_error_keys:
            continue
        outcome = execute_vector(dart, error.inputs, error.kinds)
        if outcome.error_key != key:
            continue
        fault = outcome.fault
        extra.append(Artifact(
            error.inputs, error.kinds, outcome.path, outcome.covered,
            error={
                "kind": fault.kind,
                "message": getattr(fault, "message", str(fault)),
                "location": str(fault.location)
                if fault.location is not None else None,
            },
            iteration=error.iteration,
        ))
    return extra


def export_suite(dart, result, out_dir):
    """Write the deduplicated regression suite for ``result``.

    ``dart`` is the live :class:`repro.dart.runner.Dart` (its module,
    source and options pin the replay contract); ``result`` the
    :class:`DartResult` whose witnesses and errors feed the corpus.
    Returns the manifest body.
    """
    witnesses = list(result.witnesses or ())
    artifacts = [Artifact.from_witness(witness) for witness in witnesses]
    witnessed_error_keys = {
        artifact.error_key for artifact in artifacts
        if artifact.error is not None
    }
    artifacts.extend(
        _rematerialize_errors(dart, result, witnessed_error_keys))

    unique, duplicates = dedupe_artifacts(artifacts)
    kept, pruned = prune_subsumed(unique)
    trace = dart.trace
    if trace.enabled:
        for artifact in duplicates:
            trace.emit(tr.ARTIFACT_DEDUPED, reason="duplicate",
                       artifact=artifact.artifact_id,
                       path_fingerprint=artifact.path_fp[:12])
        for artifact in pruned:
            trace.emit(tr.ARTIFACT_DEDUPED, reason="subsumed",
                       artifact=artifact.artifact_id,
                       path_fingerprint=artifact.path_fp[:12])

    counts = {
        "witnesses": len(artifacts),
        "deduped": len(duplicates),
        "pruned": len(pruned),
    }
    manifest_body = build_manifest(
        dart.module, dart.source, dart.toplevel, dart.options, result,
        kept, counts)

    os.makedirs(out_dir, exist_ok=True)
    with open(os.path.join(out_dir, PROGRAM_FILE), "w") as handle:
        handle.write(dart.source)
    for artifact in kept:
        write_artifact(
            os.path.join(out_dir, ARTIFACTS_DIR, artifact.artifact_id),
            artifact, dart.source, dart.toplevel, dart.options,
            filename=dart.filename)
    _dump_json(os.path.join(out_dir, MANIFEST_FILE), {
        "version": SUITE_VERSION,
        "checksum": body_checksum(manifest_body),
        "body": manifest_body,
    })

    stats = result.stats
    stats.artifacts_exported += len(kept)
    stats.artifacts_deduped += len(duplicates)
    stats.artifacts_pruned += len(pruned)
    if trace.enabled:
        coverage = manifest_body["coverage"]
        trace.emit(
            tr.SUITE_EXPORTED, dir=out_dir, artifacts=len(kept),
            errors=manifest_body["counts"]["errors"],
            deduped=len(duplicates), pruned=len(pruned),
            c1_percent=round(coverage["c1_percent"], 2),
        )
    return manifest_body
