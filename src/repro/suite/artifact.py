"""Suite artifacts on disk: layout, encoding, validation, quarantine.

One artifact directory is a *standalone* regression test::

    artifacts/<id>/
        program.c       the mini-C source (hash-pinned by expected.json)
        input.json      the concrete input vector ([[kind, value], ...])
        expected.json   verdict, error class, path bits, covered set,
                        replay-relevant options — with a checksum
        test_<id>.py    generated pytest wrapper (replays with no search)

Artifact ids derive from the (path fingerprint, error class) dedup key,
so an id is stable across exports of the same discovery and unique
within a suite; the ``test_<id>.py`` basename is therefore unique too,
which keeps plain ``pytest`` discovery happy without ``__init__.py``
files.

Validation mirrors the checkpoint loader's damage taxonomy: every JSON
payload carries a checksum over its canonical body and the program
source is hash-pinned, so a torn write or a flipped bit raises
:class:`CorruptArtifact` — which suite-level loaders turn into a
*quarantine* (the entry is skipped and reported) instead of a crash.
The read path carries a fault-injection seam (``suite.bitflip``, see
:mod:`repro.faults`) so the quarantine behaviour is itself testable.

Nothing in an artifact carries a timestamp and every list is sorted, so
exporting the same campaign twice yields byte-identical suites — the
property the committed golden suite (``tests/golden_suite/``) pins.
"""

import hashlib
import json
import os
import re

from repro.faults import points as fault_points

#: Encoding version of the on-disk artifact/manifest format.
SUITE_VERSION = 1

PROGRAM_FILE = "program.c"
INPUT_FILE = "input.json"
EXPECTED_FILE = "expected.json"
MANIFEST_FILE = "manifest.json"
ARTIFACTS_DIR = "artifacts"

#: The DartOptions fields an artifact must pin for its replay to be
#: faithful: they shape the driver module, the memory model or the
#: execution budget.  Search-shaping knobs (strategy, seed, ...) are
#: deliberately absent — replay does no search.
REPLAY_OPTION_FIELDS = (
    "depth", "max_init_depth", "transparent_memory",
    "track_uninitialized", "max_steps", "stack_limit", "heap_limit",
    "max_call_depth",
)


class CorruptArtifact(Exception):
    """A suite file failed structural validation or its checksum."""


def path_fingerprint(path):
    """sha256 hex digest of a branch-bit signature (the dedup key)."""
    canonical = ",".join("1" if bit else "0" for bit in path)
    return hashlib.sha256(canonical.encode()).hexdigest()


def replay_options_dict(options):
    """The replay-relevant slice of a :class:`DartOptions`."""
    return {field: getattr(options, field)
            for field in REPLAY_OPTION_FIELDS}


def body_checksum(body):
    """sha256 over the canonical JSON of ``body`` (same recipe as the
    v2 checkpoint format in `repro.dart.persist`)."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class Artifact:
    """One distinct discovery: a (path, error-class) witness to export."""

    __slots__ = ("inputs", "kinds", "path", "covered", "error", "iteration")

    def __init__(self, inputs, kinds, path, covered, error=None,
                 iteration=0):
        self.inputs = list(inputs)
        self.kinds = list(kinds)
        self.path = tuple(bool(bit) for bit in path)
        #: (function, pc, taken) triples of program functions this
        #: single run exercised.
        self.covered = set(covered)
        #: {"kind", "message", "location"} or None for an ok run.
        self.error = error
        self.iteration = iteration

    @classmethod
    def from_witness(cls, witness):
        """Build from a :class:`repro.dart.report.PathWitness`."""
        return cls(witness.inputs, witness.kinds, witness.path,
                   witness.covered, error=witness.error,
                   iteration=witness.iteration)

    @property
    def error_key(self):
        """The error class (kind, location-string), or None if ok."""
        if self.error is None:
            return None
        return (self.error["kind"], str(self.error["location"]))

    @property
    def dedup_key(self):
        """(path fingerprint, error class) — the corpus identity."""
        return (self.path_fp, self.error_key)

    @property
    def path_fp(self):
        return path_fingerprint(self.path)

    @property
    def artifact_id(self):
        """Stable, filesystem- and python-identifier-safe id.

        Hashes the full dedup key so two error classes sharing one
        branch path (a clean run and a division fault can have
        identical branch bits) still get distinct ids.
        """
        digest = hashlib.sha256(
            "{}|{!r}".format(self.path_fp, self.error_key).encode()
        ).hexdigest()[:10]
        if self.error is None:
            return "ok_{}".format(digest)
        slug = re.sub(r"[^a-z0-9]+", "_",
                      str(self.error["kind"]).lower()).strip("_") or "fault"
        return "err_{}_{}".format(slug, digest)

    @property
    def verdict(self):
        return "error" if self.error is not None else "ok"

    def __repr__(self):
        return "Artifact({}, {} dir(s) covered)".format(
            self.artifact_id, len(self.covered))


_WRAPPER_TEMPLATE = '''\
"""Replay wrapper for suite artifact ``{artifact_id}`` (generated).

Re-executes the recorded input vector through the forcing-replay
machinery with search disabled and asserts the recorded verdict, branch
path and covered-branch set are reproduced bit-for-bit.  Standalone:
runs under plain ``pytest`` with only ``PYTHONPATH=src``.
"""

import os

from repro.suite.replay import check_artifact

_HERE = os.path.dirname(os.path.abspath(__file__))


def test_replay_{artifact_id}():
    check_artifact(_HERE)
'''


def _dump_json(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def write_artifact(directory, artifact, source, toplevel, options,
                   filename="<program>"):
    """Write one artifact directory; returns its expected-body dict.

    ``filename`` is the name the *campaign* compiled the program under:
    fault locations embed it, so replay must rebuild the module under
    the same name or every error-class comparison would drift.
    """
    os.makedirs(directory, exist_ok=True)
    with open(os.path.join(directory, PROGRAM_FILE), "w") as handle:
        handle.write(source)
    im_payload = [[kind, value]
                  for kind, value in zip(artifact.kinds, artifact.inputs)]
    _dump_json(os.path.join(directory, INPUT_FILE), {
        "version": SUITE_VERSION,
        "checksum": body_checksum(im_payload),
        "im": im_payload,
    })
    body = {
        "id": artifact.artifact_id,
        "verdict": artifact.verdict,
        "error": dict(artifact.error) if artifact.error is not None
        else None,
        "path": [1 if bit else 0 for bit in artifact.path],
        "path_fingerprint": artifact.path_fp,
        "covered": sorted([entry[0], entry[1], bool(entry[2])]
                          for entry in artifact.covered),
        "iteration": artifact.iteration,
        "toplevel": toplevel,
        "filename": filename,
        "options": replay_options_dict(options)
        if not isinstance(options, dict) else dict(options),
        "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
        "suite_version": SUITE_VERSION,
    }
    _dump_json(os.path.join(directory, EXPECTED_FILE), {
        "version": SUITE_VERSION,
        "checksum": body_checksum(body),
        "body": body,
    })
    wrapper = _WRAPPER_TEMPLATE.format(artifact_id=artifact.artifact_id)
    with open(os.path.join(
            directory, "test_{}.py".format(artifact.artifact_id)),
            "w") as handle:
        handle.write(wrapper)
    return body


def _read_checked_json(path, what):
    """Read a ``{version, checksum, body-ish}`` JSON file defensively.

    Probes the ``suite.bitflip`` fault seam first, so injected bit rot
    lands on the bytes this call is about to trust.
    """
    injector = fault_points.ACTIVE
    if injector is not None:
        injector.suite_read(path)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise CorruptArtifact("{}: missing {}".format(what, path))
    except (OSError, ValueError) as exc:
        raise CorruptArtifact("{}: unreadable JSON in {}: {}".format(
            what, path, exc))
    if not isinstance(payload, dict) \
            or payload.get("version") != SUITE_VERSION:
        raise CorruptArtifact("{}: bad version in {}".format(what, path))
    return payload


def load_artifact(directory):
    """Read and validate one artifact directory.

    Returns ``(artifact, body)`` — the :class:`Artifact` plus the full
    expected-body dict (toplevel, replay options, source hash).  Raises
    :class:`CorruptArtifact` on any structural damage, checksum
    mismatch, or a program source that no longer matches its pin;
    suite-level callers quarantine instead of crashing.
    """
    payload = _read_checked_json(
        os.path.join(directory, EXPECTED_FILE), "artifact")
    body = payload.get("body")
    if not isinstance(body, dict):
        raise CorruptArtifact("artifact: expected.json has no body")
    if body_checksum(body) != payload.get("checksum"):
        raise CorruptArtifact(
            "artifact: expected.json failed its checksum "
            "(torn write or bit rot)")
    input_payload = _read_checked_json(
        os.path.join(directory, INPUT_FILE), "artifact")
    im_payload = input_payload.get("im")
    if not isinstance(im_payload, list) \
            or body_checksum(im_payload) != input_payload.get("checksum"):
        raise CorruptArtifact(
            "artifact: input.json failed its checksum")
    try:
        with open(os.path.join(directory, PROGRAM_FILE)) as handle:
            source = handle.read()
    except OSError as exc:
        raise CorruptArtifact("artifact: unreadable program.c: "
                              "{}".format(exc))
    if hashlib.sha256(source.encode()).hexdigest() \
            != body.get("source_sha256"):
        raise CorruptArtifact(
            "artifact: program.c does not match its recorded hash")
    try:
        artifact = Artifact(
            inputs=[int(value) for _kind, value in im_payload],
            kinds=[str(kind) for kind, _value in im_payload],
            path=[bool(bit) for bit in body["path"]],
            covered={(entry[0], int(entry[1]), bool(entry[2]))
                     for entry in body["covered"]},
            error=body["error"],
            iteration=int(body.get("iteration", 0)),
        )
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CorruptArtifact("artifact: malformed body: {}".format(exc))
    body = dict(body)
    body["source"] = source
    return artifact, body


def load_manifest(suite_dir):
    """Read and validate a suite's ``manifest.json``; returns the body."""
    payload = _read_checked_json(
        os.path.join(suite_dir, MANIFEST_FILE), "manifest")
    body = payload.get("body")
    if not isinstance(body, dict):
        raise CorruptArtifact("manifest: no body")
    if body_checksum(body) != payload.get("checksum"):
        raise CorruptArtifact("manifest: failed its checksum")
    return body


def load_suite(suite_dir):
    """Load a whole suite, quarantining damaged entries.

    Returns ``(manifest, loaded, quarantined)`` where ``loaded`` is a
    list of ``(entry, artifact, body)`` triples in manifest order and
    ``quarantined`` lists ``{"id", "reason"}`` dicts for entries whose
    files failed validation — a corrupt artifact costs itself, never
    the suite (mirroring the corrupt-checkpoint containment).
    """
    manifest = load_manifest(suite_dir)
    loaded = []
    quarantined = []
    for entry in manifest.get("artifacts", ()):
        directory = os.path.join(suite_dir, entry["dir"])
        try:
            artifact, body = load_artifact(directory)
        except CorruptArtifact as exc:
            quarantined.append({"id": entry.get("id", "?"),
                                "reason": str(exc)})
            continue
        loaded.append((entry, artifact, body))
    return manifest, loaded, quarantined
