"""The chaos harness: whole campaigns under seeded fault schedules.

``run_chaos`` drives the full stack — runner, engines, solver, cache,
interpreter, persistence, signals — through ``schedules`` randomized
:class:`repro.faults.plan.FaultPlan`s and asserts the *recovery
invariants* after each one:

1. **No uncontained crash.**  Whatever the plan injects, ``Dart.run``
   returns a result; an exception escaping the fault boundaries is a
   violation.
2. **Termination.**  The campaign finishes within a bounded number of
   resumes (interrupted sessions are resumed from their checkpoint, like
   an operator re-running the CLI).
3. **Error replay soundness.**  Every reported error replays to the same
   fault kind on a clean, injector-free re-execution — Theorem 1(a)
   survives chaos.
4. **Error-set preservation.**  Against a fault-free baseline of the
   same benchmark: plans made only of *lossless* faults (checkpoint
   damage, worker kills, signals, slow/flaky-but-retried solves) must
   report exactly the baseline error set; plans containing *lossy*
   faults (quarantined runs, forced solver UNKNOWNs — work the paper's
   model legitimately loses) must report a subset, never an invention.
5. **Honest degradation.**  A session that consumed a corrupted
   checkpoint (``checkpoints_rejected > 0``) must never report
   ``complete``.
6. **No stale temp files.**  Failed checkpoint writes leave no
   ``*.tmp`` debris next to the state file.

The benchmarks are deliberately small programs whose fault-free directed
search is *exhaustive* well inside the iteration budget — that is what
makes invariant 4's subset direction sound: the baseline error set is
the complete error set, so a chaotic session can only ever rediscover
it, never exceed it.

``chaos_probe`` is the fuzz campaign's lightweight sibling: one
baseline-vs-faulted comparison on a *generated* program (non-signal,
in-process fault sites only), used by ``repro fuzz --chaos-every``.
"""

import json
import os
import tempfile
import time

from repro.dart.config import DartOptions
from repro.dart.report import COMPLETE, INTERRUPTED
from repro.dart.runner import Dart
from repro.faults import points as fault_points
from repro.faults.plan import ALL_SITES, SIGNAL_SITES, FaultPlan
from repro.faults.points import FaultInjector
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)
from repro.programs.samples import H_SOURCE, H_TOPLEVEL

#: Fault sites that require worker processes (meaningless when jobs=1).
_PARALLEL_ONLY = frozenset(("worker.kill",))

#: Sites probed outside any campaign (the suite loader reads
#: artifacts after sessions end), so a campaign-scoped schedule
#: naming them would never fire; excluded from every pool here.
_OFFLINE_SITES = frozenset(("suite.bitflip",))

#: Sites meaningful for a parallel benchmark: the engine-level seams.
#: Machine/solver/cache seams live in the workers, which deliberately
#: run injector-free (determinism needs parent-owned probe counters).
_PARALLEL_SITES = (
    "worker.kill", "persist.enospc", "persist.partial",
    "persist.truncate", "persist.bitflip",
    "signal.interrupt", "signal.checkpoint",
)

#: In-process sites for the fuzz campaign's chaos probe: no real signals
#: (a stray KeyboardInterrupt must never escape into the campaign
#: driver), no worker kills, no persistence (fuzz oracles keep no state
#: file, so those seams would never be probed).
PROBE_SITES = tuple(
    site for site in ALL_SITES
    if site not in SIGNAL_SITES
    and site not in _PARALLEL_ONLY
    and site not in _OFFLINE_SITES
    and not site.startswith("persist.")
)


class _Benchmark:
    """One chaos target: a program plus the session options shaping it."""

    def __init__(self, name, source, toplevel, sites, **options):
        self.name = name
        self.source = source
        self.toplevel = toplevel
        #: The fault sites seeded plans may draw from for this benchmark.
        self.sites = sites
        self.options = options

    def make_options(self, state_file, fault_plan=None, trace_file=None):
        return DartOptions(
            state_file=state_file, fault_plan=fault_plan,
            trace_file=trace_file, handle_signals=True,
            stop_on_first_error=False, **self.options)


def _serial_sites():
    return tuple(site for site in ALL_SITES
                 if site not in _PARALLEL_ONLY
                 and site not in _OFFLINE_SITES)


#: The benchmark rotation.  Both programs have exhaustive fault-free
#: searches (AC controller: the paper's Fig. 6 at depth 2; ``h``: the
#: Section 2.1 motivating example) and exactly one distinct error, so
#: every invariant above is decidable.  The checkpoint cadence is tuned
#: low so the persistence seams are probed many times per session.
BENCHMARKS = (
    _Benchmark(
        "ac-bfs", AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
        _serial_sites(), depth=2, strategy="bfs", max_iterations=150,
        checkpoint_every=3, time_limit=30.0, run_time_limit=5.0,
    ),
    _Benchmark(
        "h-dfs", H_SOURCE, H_TOPLEVEL,
        _serial_sites(), depth=1, strategy="dfs", max_iterations=150,
        checkpoint_every=3, time_limit=30.0, run_time_limit=5.0,
    ),
    _Benchmark(
        "ac-parallel", AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
        _PARALLEL_SITES, depth=2, strategy="bfs", jobs=2,
        max_iterations=150, checkpoint_every=3, time_limit=60.0,
        run_time_limit=5.0,
    ),
)


def _plan_seed(seed, index):
    """Deterministic per-schedule plan seed (mirrors ``_item_seed``)."""
    return seed * 1_000_003 + index


def _error_keys(result):
    """The deduplication identity of a result's error set."""
    return {(error.kind, str(error.location)) for error in result.errors}


class ScheduleOutcome:
    """What one fault schedule did to one benchmark."""

    def __init__(self, index, benchmark, plan):
        self.index = index
        self.benchmark = benchmark
        self.plan_spec = plan.spec()
        #: (site, occurrence) pairs that actually fired.
        self.fired = []
        self.resumes = 0
        self.status = None
        self.violations = []
        self.wall_s = 0.0

    @property
    def ok(self):
        return not self.violations

    def to_dict(self):
        return {
            "index": self.index,
            "benchmark": self.benchmark,
            "plan": self.plan_spec,
            "fired": [list(pair) for pair in self.fired],
            "resumes": self.resumes,
            "status": self.status,
            "violations": list(self.violations),
            "wall_s": round(self.wall_s, 3),
        }

    def describe(self):
        verdict = "ok" if self.ok else "FAIL"
        line = "[{:>3}] {} plan={!r} fired={} resumes={} status={} {}".format(
            self.index, self.benchmark, self.plan_spec or "(empty)",
            len(self.fired), self.resumes, self.status, verdict)
        for violation in self.violations:
            line += "\n      ! " + violation
        return line


class ChaosReport:
    """Every schedule's outcome plus the campaign verdict."""

    def __init__(self, seed, schedules):
        self.seed = seed
        self.schedules = schedules
        self.outcomes = []
        self.elapsed = 0.0

    @property
    def ok(self):
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def failures(self):
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def to_dict(self):
        return {
            "seed": self.seed,
            "schedules": self.schedules,
            "ok": self.ok,
            "elapsed_s": round(self.elapsed, 3),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def describe(self):
        fired = sum(len(outcome.fired) for outcome in self.outcomes)
        lines = [
            "chaos: seed {} -> {} schedule(s), {} fault(s) injected, "
            "{} violation(s) in {:.1f}s".format(
                self.seed, len(self.outcomes), fired,
                sum(len(outcome.violations) for outcome in self.outcomes),
                self.elapsed),
        ]
        for outcome in self.outcomes:
            lines.append(outcome.describe())
        return "\n".join(lines)


def _baseline(benchmark, cache):
    """The fault-free reference result for a benchmark (memoized)."""
    reference = cache.get(benchmark.name)
    if reference is None:
        with tempfile.TemporaryDirectory() as scratch:
            options = benchmark.make_options(
                os.path.join(scratch, "baseline.ckpt"))
            reference = Dart(benchmark.source, benchmark.toplevel,
                             options).run()
        cache[benchmark.name] = reference
    return reference


def _run_schedule(index, benchmark, plan, baseline, max_resumes,
                  out_dir=None):
    """One chaotic campaign: run, resume past interrupts, check."""
    outcome = ScheduleOutcome(index, benchmark.name, plan)
    started = time.monotonic()
    trace_file = None
    run_dir = None
    if out_dir is not None:
        run_dir = os.path.join(out_dir, "schedule-{:03d}".format(index))
        os.makedirs(run_dir, exist_ok=True)
        trace_file = os.path.join(run_dir, "trace.jsonl")
    injector = FaultInjector(plan)
    result = None
    crash = None
    with tempfile.TemporaryDirectory() as scratch:
        state_file = os.path.join(scratch, "session.ckpt")
        # One injector across every resume of this schedule: probe
        # counters persist, so each scheduled fault fires exactly once
        # per schedule instead of re-firing on every resumed session
        # (which could livelock an interrupt/resume loop).
        fault_points.install(injector)
        try:
            while outcome.resumes < max_resumes:
                options = benchmark.make_options(
                    state_file, trace_file=trace_file)
                result = Dart(benchmark.source, benchmark.toplevel,
                              options).run()
                outcome.resumes += 1
                if result.status != INTERRUPTED:
                    break
        except BaseException as caught:  # noqa: BLE001 — invariant 1
            crash = "{}: {}".format(type(caught).__name__, caught)
        finally:
            fault_points.uninstall()
        outcome.fired = list(injector.fired)
        if crash is not None:
            outcome.status = "crashed"
            outcome.violations.append(
                "uncontained crash escaped Dart.run: " + crash)
        elif result is None:
            outcome.status = "no-result"
            outcome.violations.append("no session produced a result")
        else:
            outcome.status = result.status
            _check_invariants(outcome, benchmark, plan, result, baseline,
                              state_file, max_resumes)
    outcome.wall_s = time.monotonic() - started
    if run_dir is not None:
        with open(os.path.join(run_dir, "outcome.json"), "w") as handle:
            json.dump(outcome.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return outcome


def _check_invariants(outcome, benchmark, plan, result, baseline,
                      state_file, max_resumes):
    violations = outcome.violations
    # 2. Termination within the resume budget.
    if result.status == INTERRUPTED:
        violations.append(
            "still interrupted after {} resume(s)".format(max_resumes))
    # 6. No stale temp file, whatever the persistence seams did.
    if os.path.exists(state_file + ".tmp"):
        violations.append("stale checkpoint temp file left behind")
    # No duplicate error reports across crash/resume boundaries.
    keys = [(error.kind, str(error.location)) for error in result.errors]
    if len(keys) != len(set(keys)):
        violations.append("duplicate error reports after resume: {}"
                          .format(sorted(keys)))
    # 3. Replay soundness, on a clean injector-free session.
    dart = Dart(benchmark.source, benchmark.toplevel,
                benchmark.make_options(None))
    for error in result.errors:
        fault = dart.replay(error)
        if fault is None or fault.kind != error.kind:
            violations.append(
                "error {} at {} does not replay cleanly (got {})".format(
                    error.kind, error.location,
                    fault.kind if fault is not None else "no fault"))
    # 4. Error-set preservation against the fault-free baseline.
    chaotic, reference = _error_keys(result), _error_keys(baseline)
    if plan.lossy:
        if not chaotic <= reference:
            violations.append(
                "lossy plan invented errors: {} not in baseline {}".format(
                    sorted(chaotic - reference), sorted(reference)))
    elif chaotic != reference:
        violations.append(
            "lossless plan changed the error set: {} vs baseline {}".format(
                sorted(chaotic), sorted(reference)))
    # A complete claim implies nothing was lost — equality always.
    if result.status == COMPLETE and chaotic != reference:
        violations.append("complete session missed errors: {} vs {}".format(
            sorted(chaotic), sorted(reference)))
    # 5. Consumed checkpoint corruption forbids completeness.
    if result.status == COMPLETE and result.stats.checkpoints_rejected:
        violations.append(
            "session claimed complete after a rejected checkpoint")


def run_chaos(seed=0, schedules=25, benchmarks=None, out_dir=None,
              max_resumes=8, progress=None):
    """Run ``schedules`` seeded fault schedules; returns a ChaosReport.

    Schedules rotate over ``benchmarks`` (default: the full
    :data:`BENCHMARKS` rotation, including the parallel engine); each
    draws a :class:`FaultPlan` from the benchmark's site pool with a
    seed derived from ``(seed, index)``, so any outcome is replayable
    from its printed plan spec alone.  ``out_dir`` writes per-schedule
    ``outcome.json`` and trace artifacts.  ``progress`` is an optional
    ``(index, outcome)`` callback.
    """
    targets = tuple(benchmarks) if benchmarks is not None else BENCHMARKS
    report = ChaosReport(seed, schedules)
    baselines = {}
    started = time.monotonic()
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
    for index in range(schedules):
        benchmark = targets[index % len(targets)]
        plan = FaultPlan.from_seed(_plan_seed(seed, index),
                                   sites=benchmark.sites)
        baseline = _baseline(benchmark, baselines)
        outcome = _run_schedule(index, benchmark, plan, baseline,
                                max_resumes, out_dir=out_dir)
        report.outcomes.append(outcome)
        if progress is not None:
            progress(index, outcome)
    report.elapsed = time.monotonic() - started
    if out_dir is not None:
        with open(os.path.join(out_dir, "report.json"), "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def chaos_probe(source, toplevel, options_kwargs, plan_seed):
    """One baseline-vs-faulted comparison on an arbitrary program.

    Used by the fuzz campaign (``repro fuzz --chaos-every``): runs the
    program's DART session once clean and once under a seeded in-process
    fault plan (:data:`PROBE_SITES` only), and checks that faults are
    contained and never *invent* errors.  The subset/equality invariant
    is only applied when the clean baseline finished its search inside
    the budget — a budget-truncated baseline's error set is not the
    complete set, so a faulted session legitimately may differ.

    Returns a list of violation strings (empty = invariants held).
    """
    plan = FaultPlan.from_seed(plan_seed, sites=PROBE_SITES)
    baseline = Dart(source, toplevel,
                    DartOptions(**options_kwargs)).run()
    violations = []
    injector = FaultInjector(plan)
    fault_points.install(injector)
    try:
        faulted = Dart(source, toplevel,
                       DartOptions(**options_kwargs)).run()
    except Exception as caught:  # noqa: BLE001 — containment is the test
        violations.append(
            "chaos: uncontained crash under plan {!r}: {}: {}".format(
                plan.spec(), type(caught).__name__, caught))
        return violations
    finally:
        fault_points.uninstall()
    if not injector.fired:
        return violations
    max_iterations = options_kwargs.get("max_iterations", 10_000)
    exhaustive = (baseline.status != INTERRUPTED
                  and baseline.stats.iterations < max_iterations)
    chaotic, reference = _error_keys(faulted), _error_keys(baseline)
    if exhaustive and not chaotic <= reference:
        violations.append(
            "chaos: plan {!r} invented errors {} (baseline {})".format(
                plan.spec(), sorted(chaotic - reference),
                sorted(reference)))
    if exhaustive and not plan.lossy and chaotic != reference:
        violations.append(
            "chaos: lossless plan {!r} changed the error set: "
            "{} vs {}".format(plan.spec(), sorted(chaotic),
                              sorted(reference)))
    return violations
