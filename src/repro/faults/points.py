"""The fault injector and its instrumented seams.

One :class:`FaultInjector` is *installed* process-globally (module
attribute :data:`ACTIVE`); every seam across the stack follows the trace
bus idiom::

    inj = points.ACTIVE
    if inj is not None:
        inj.some_seam()

so a session without an injector pays one module-attribute read per
*seam site* and never constructs anything — pinned by
``tests/test_fault_injection.py``.  Seams probe their site on every
pass; the 1-based probe count is matched against the installed
:class:`repro.faults.plan.FaultPlan`, which makes every injected fault
deterministic and replayable from the plan spec.

The injector deliberately lives in a process global rather than being
threaded through every constructor: fault injection cuts across layers
that share no object (solver, cache, machine, persistence), and chaos
testing is the only client.  Parallel workers do not inherit it — the
only worker-side fault is the kill switch, which the parent decides and
ships in the work payload (see `repro.dart.parallel`).
"""

import contextlib
import os
import signal
import threading
import time

from repro.faults.plan import FaultPlan
from repro.obs import trace as tr


class InjectedSolverError(Exception):
    """Raised by the ``solver.raise`` fault: an internal solver failure."""


class InjectedCacheCorruption(Exception):
    """Raised by the ``cache.corrupt`` fault: cache state went bad."""


#: The installed injector, or None.  Seams read this exactly once.
ACTIVE = None


def install(injector):
    """Install ``injector`` process-globally; returns it."""
    global ACTIVE
    ACTIVE = injector
    return injector


def uninstall():
    """Remove the installed injector (idempotent)."""
    global ACTIVE
    ACTIVE = None


@contextlib.contextmanager
def active(plan, **kwargs):
    """Context manager: install a fresh injector for ``plan``, then
    uninstall.  Yields the injector (e.g. to inspect ``fired``)."""
    injector = FaultInjector(plan, **kwargs)
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


class FaultInjector:
    """Counts seam probes and fires the plan's scheduled faults."""

    def __init__(self, plan, slow_solve_s=0.01):
        self.plan = FaultPlan.parse(plan)
        #: site -> probes so far (1-based after the first probe).
        self.hits = {}
        #: Log of every fault actually injected: (site, occurrence).
        self.fired = []
        #: Bound by the runner at session start (see `_Session`); a
        #: fault then bumps ``stats.faults_injected`` and emits a
        #: ``fault_injected`` trace event.
        self.trace = None
        self.stats = None
        #: Sleep of the ``solver.slow`` fault, in seconds.
        self.slow_solve_s = slow_solve_s

    def bind(self, trace, stats):
        """Attach a session's trace bus and statistics."""
        self.trace = trace
        self.stats = stats

    # -- core ---------------------------------------------------------------

    def _probe(self, site):
        occurrence = self.hits.get(site, 0) + 1
        self.hits[site] = occurrence
        if not self.plan.fires(site, occurrence):
            return False
        self._record(site, occurrence)
        return True

    def _record(self, site, occurrence):
        self.fired.append((site, occurrence))
        if self.stats is not None:
            self.stats.faults_injected += 1
        if self.trace is not None and self.trace.enabled:
            self.trace.emit(tr.FAULT_INJECTED, site=site,
                            occurrence=occurrence)

    # -- seams --------------------------------------------------------------

    def solver_call(self):
        """Probed by ``Solver.solve``; may raise, or direct the caller.

        Returns None (no fault), ``"unknown"`` (force an UNKNOWN
        verdict), or sleeps in place for the slow-solve fault.  The
        ``solver.raise`` fault raises :class:`InjectedSolverError`.
        """
        if self._probe("solver.raise"):
            raise InjectedSolverError("injected solver failure")
        if self._probe("solver.unknown"):
            return "unknown"
        if self._probe("solver.slow"):
            time.sleep(self.slow_solve_s)
        return None

    def cache_access(self):
        """Probed by cache lookups/stores; raises on corruption."""
        if self._probe("cache.corrupt"):
            raise InjectedCacheCorruption("injected cache corruption")

    def machine_probe(self):
        """Probed at machine run entry and watchdog ticks; may raise."""
        if self._probe("machine.memory"):
            raise MemoryError("injected machine memory exhaustion")
        if self._probe("machine.recursion"):
            raise RecursionError("injected machine recursion overflow")

    def checkpoint_write(self):
        """Probed inside ``_atomic_write``; returns a failure mode.

        None (no fault), ``"enospc"`` (fail before writing anything) or
        ``"partial"`` (fail after a truncated write — the temp file must
        be cleaned up either way).
        """
        if self._probe("persist.enospc"):
            return "enospc"
        if self._probe("persist.partial"):
            return "partial"
        return None

    def saved_checkpoint(self, path):
        """Probed after a successful checkpoint save; corrupts the file.

        ``persist.truncate`` tears the file in half; ``persist.bitflip``
        flips one byte.  Both must be caught by the loader's checksum
        and downgrade the next resume to a clean reseed.
        """
        if self._probe("persist.truncate"):
            with open(path, "r+b") as handle:
                handle.truncate(max(os.fstat(handle.fileno()).st_size // 2,
                                    1))
        if self._probe("persist.bitflip"):
            with open(path, "r+b") as handle:
                data = handle.read()
                if data:
                    middle = len(data) // 2
                    handle.seek(middle)
                    handle.write(bytes([data[middle] ^ 0x40]))

    def suite_read(self, path):
        """Probed before a suite artifact file is read; may corrupt it.

        The ``suite.bitflip`` fault flips one byte of the file —
        simulated bit rot in a stored regression suite.  The loader's
        checksum must catch the damage and quarantine the artifact
        instead of crashing the suite load.
        """
        if self._probe("suite.bitflip"):
            with open(path, "r+b") as handle:
                data = handle.read()
                if data:
                    middle = len(data) // 2
                    handle.seek(middle)
                    handle.write(bytes([data[middle] ^ 0x40]))

    def between_runs(self):
        """Probed at the between-runs boundary; may deliver SIGINT."""
        if self._probe("signal.interrupt"):
            self._deliver_signal()

    def mid_checkpoint(self):
        """Probed mid-atomic-write; may deliver SIGINT at the worst
        moment (the deferral machinery must keep the write atomic)."""
        if self._probe("signal.checkpoint"):
            self._deliver_signal()

    @staticmethod
    def _deliver_signal():
        # Real delivery through the OS so the whole handler path is
        # exercised; only meaningful (and only safe) on the main thread,
        # where the session's signal guard can observe it.
        if threading.current_thread() is threading.main_thread():
            os.kill(os.getpid(), signal.SIGINT)

    def worker_kill(self, iteration):
        """Parent-side decision: kill the worker running ``iteration``?

        Unlike the other sites this one is keyed on the global iteration
        number (worker processes cannot share a probe counter), and the
        parent ships the verdict in the work payload.  Re-dispatched
        payloads never carry the kill again — the injected crash is
        transient, which is exactly what the retry path recovers from.
        """
        if self.plan.fires("worker.kill", iteration):
            self._record("worker.kill", iteration)
            return True
        return False
