"""Deterministic fault injection for the DART engine (chaos testing).

PR 1 gave the engine fault boundaries, quarantine, watchdogs and
checkpoints; this package *exercises* those recovery paths deliberately.
A :class:`FaultPlan` is a seeded, replayable schedule of faults; a
:class:`FaultInjector` installed via :func:`install` (or the
``DartOptions(fault_plan=...)`` knob / CLI ``--fault-plan``) arms
instrumented seams across the stack — solver exceptions, forced-UNKNOWN
verdicts, slow solves, solver-cache corruption, ``MemoryError``/
``RecursionError`` inside the machine, worker-process kills, checkpoint
write failures (ENOSPC, partial writes, bit-flips of the saved file) and
signal delivery at adversarial moments.  Every seam follows the trace
bus idiom — one module-global ``None`` check when disabled, so a
production session pays nothing — and every injected fault emits a
``fault_injected`` trace event plus the ``faults_injected`` counter.

:mod:`repro.faults.chaos` drives whole campaigns through randomized
fault schedules and asserts the recovery invariants (``python -m repro
chaos``); see ``docs/ROBUSTNESS.md`` for the taxonomy and the invariant
matrix.
"""

from repro.faults.plan import (
    ALL_SITES,
    LOSSY_SITES,
    FaultPlan,
)
from repro.faults.points import (
    ACTIVE,
    FaultInjector,
    InjectedCacheCorruption,
    InjectedSolverError,
    active,
    install,
    uninstall,
)

__all__ = [
    "ACTIVE",
    "ALL_SITES",
    "FaultInjector",
    "FaultPlan",
    "InjectedCacheCorruption",
    "InjectedSolverError",
    "LOSSY_SITES",
    "active",
    "install",
    "uninstall",
]
