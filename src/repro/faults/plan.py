"""Seeded, replayable fault schedules.

A :class:`FaultPlan` maps *fault sites* (the instrumented seams listed in
:data:`ALL_SITES`) to the 1-based probe occurrences at which they fire:
``{"solver.raise": {2}}`` makes the second solver call of the session
raise an injected error.  Occurrence counting is per
:class:`repro.faults.points.FaultInjector` instance, so a plan replays
exactly under the same (program, options, seed) — the whole point of
deterministic chaos testing.

Plans have two interchangeable spellings:

* **Seeded** — ``FaultPlan.from_seed(seed)`` derives a schedule from a
  PRNG: a handful of sites, each with a few firing occurrences inside a
  small horizon.  ``seed:<n>`` in spec form.
* **Explicit** — ``"solver.raise@2,persist.enospc@1"`` names every
  (site, occurrence) pair.  ``FaultPlan.spec()`` always renders this
  form, so any seeded plan can be re-run from its printed spec.

:data:`LOSSY_SITES` marks the fault classes that may legitimately *lose*
search work (a quarantined run's subtree, an abandoned flip): the chaos
harness downgrades its error-set invariant from equality to subset for
plans containing them; everything else must preserve the error set
exactly.
"""

import random

#: Every instrumented fault site, with where its seam lives.
ALL_SITES = (
    # repro.solver.core.Solver.solve — raise an internal solver error.
    "solver.raise",
    # repro.solver.core.Solver.solve — force an UNKNOWN verdict (budget
    # exhaustion without a proof), exercising the escalation/degradation
    # path.
    "solver.unknown",
    # repro.solver.core.Solver.solve — sleep before solving (a slow
    # solve; interacts with session deadlines, never the run watchdog).
    "solver.slow",
    # repro.solver.cache.SolverResultCache — corrupt internal state:
    # lookups/stores raise until the engine self-heals by clearing.
    "cache.corrupt",
    # repro.interp.machine.Machine — MemoryError mid-execution.
    "machine.memory",
    # repro.interp.machine.Machine — RecursionError mid-execution.
    "machine.recursion",
    # repro.dart.parallel — kill a worker process mid-pipeline, right
    # after it claims its item (occurrence = the dispatch index / global
    # iteration whose payload carries the kill).
    "worker.kill",
    # repro.dart.persist._atomic_write — ENOSPC before any content is
    # written.
    "persist.enospc",
    # repro.dart.persist._atomic_write — ENOSPC after a partial write
    # (the temp file must be cleaned up, the old checkpoint preserved).
    "persist.partial",
    # repro.dart.persist.save_checkpoint — truncate the saved file after
    # a successful write (simulated torn storage; resume must reseed).
    "persist.truncate",
    # repro.dart.persist.save_checkpoint — flip a byte of the saved file
    # (bit rot; the checksum must catch it and resume must reseed).
    "persist.bitflip",
    # repro.dart.runner — deliver SIGINT at the between-runs boundary.
    "signal.interrupt",
    # repro.dart.persist._atomic_write — deliver SIGINT *mid-write*
    # (must be deferred until the atomic sequence completes).
    "signal.checkpoint",
    # repro.suite.artifact.load_artifact — flip a byte of the artifact
    # file about to be read (bit rot in a stored suite; the loader's
    # checksum must catch it and quarantine the entry, never crash).
    "suite.bitflip",
)

#: Sites whose faults may lose search work: the run (and its unexplored
#: children) is quarantined, or a flip is abandoned as unsolvable.  The
#: chaos harness asserts error-set *subset* instead of equality for
#: plans containing any of these.
LOSSY_SITES = frozenset((
    "solver.raise",
    "solver.unknown",
    "machine.memory",
    "machine.recursion",
))

#: Sites that corrupt or destroy the saved checkpoint: resuming from one
#: reseeds from scratch, so the resumed session re-runs the whole search
#: (equality still holds — the search is deterministic — but the session
#: honestly refuses to claim completeness).
RESEED_SITES = frozenset(("persist.truncate", "persist.bitflip"))

#: Sites that deliver real signals; excluded from the fuzz campaign's
#: chaos probe (which must never risk a KeyboardInterrupt escaping into
#: the campaign driver).
SIGNAL_SITES = frozenset(("signal.interrupt", "signal.checkpoint"))


class FaultPlan:
    """A deterministic schedule: fault site -> firing occurrences."""

    def __init__(self, schedule=None):
        #: {site: frozenset of 1-based occurrence indices}.
        self.schedule = {}
        for site, occurrences in (schedule or {}).items():
            if site not in ALL_SITES:
                raise ValueError("unknown fault site {!r}".format(site))
            occurrences = frozenset(int(n) for n in occurrences)
            if any(n < 1 for n in occurrences):
                raise ValueError("occurrences are 1-based")
            if occurrences:
                self.schedule[site] = occurrences

    # -- classification -----------------------------------------------------

    @property
    def sites(self):
        return frozenset(self.schedule)

    @property
    def lossy(self):
        """True when the plan may lose search work (subset invariant)."""
        return bool(self.sites & LOSSY_SITES)

    @property
    def reseeds(self):
        """True when the plan may force a from-scratch reseed."""
        return bool(self.sites & RESEED_SITES)

    def fires(self, site, occurrence):
        """Does ``site`` fire at its ``occurrence``-th probe?"""
        return occurrence in self.schedule.get(site, ())

    def __bool__(self):
        return bool(self.schedule)

    # -- spellings ----------------------------------------------------------

    def spec(self):
        """The explicit, replayable spec string of this plan."""
        parts = []
        for site in ALL_SITES:
            for occurrence in sorted(self.schedule.get(site, ())):
                parts.append("{}@{}".format(site, occurrence))
        return ",".join(parts)

    @classmethod
    def from_seed(cls, seed, sites=None, max_sites=3, max_fires=2,
                  horizon=12):
        """Derive a random schedule from ``seed``.

        Picks 1..``max_sites`` of ``sites`` (default: every site), each
        firing at 1..``max_fires`` occurrences within ``horizon`` — small
        numbers on purpose: early faults hit sessions while they still
        have work in flight.
        """
        rng = random.Random(seed)
        pool = list(sites) if sites is not None else list(ALL_SITES)
        count = rng.randint(1, min(max_sites, len(pool)))
        chosen = rng.sample(pool, count)
        schedule = {}
        for site in chosen:
            fires = rng.randint(1, max_fires)
            schedule[site] = {rng.randint(1, horizon) for _ in range(fires)}
        return cls(schedule)

    @classmethod
    def parse(cls, spec):
        """Parse a spec string: ``seed:<n>`` or ``site@occ[,site@occ...]``.

        Accepts a :class:`FaultPlan` (returned unchanged) and None (an
        empty plan), so option plumbing can pass whatever it holds.
        """
        if spec is None:
            return cls()
        if isinstance(spec, FaultPlan):
            return spec
        spec = spec.strip()
        if not spec:
            return cls()
        if spec.startswith("seed:"):
            return cls.from_seed(int(spec[len("seed:"):], 10))
        schedule = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "@" not in part:
                raise ValueError(
                    "bad fault spec {!r}: expected site@occurrence".format(
                        part))
            site, _, occurrence = part.partition("@")
            schedule.setdefault(site, set()).add(int(occurrence, 10))
        return cls(schedule)

    def __repr__(self):
        return "FaultPlan({!r})".format(self.spec())
