"""Normalization and exact integer equality elimination.

A conjunction of :class:`CmpExpr` constraints is normalized into three
buckets over the same :class:`LinExpr` representation:

* equalities  ``lin == 0``
* inequalities ``lin <= 0`` (strict and >-forms are rewritten using the
  integrality of the domain: ``lin < 0  <=>  lin + 1 <= 0``)
* disequalities ``lin != 0``

Equalities are then eliminated one at a time: after dividing by the GCD of
the coefficients (an infeasibility proof when it does not divide the
constant — the classic integer relaxation check), any variable with a
unit coefficient is solved for and substituted away.  An equality with no
unit-coefficient variable goes through the Omega test's exact integer
transformation (Pugh 1991): pick the variable ``x_k`` with the smallest
coefficient magnitude ``|a_k| >= 2``, let ``m = |a_k| + 1``, and introduce
a fresh auxiliary variable sigma with

    sum_i symmod(a_i, m) * x_i  =  m * sigma + symmod(c, m)

where ``symmod`` is the symmetric residue in ``(-m/2, m/2]``.  Because
``symmod(a_k, m) = -sign(a_k)``, this new equality *does* have a unit
coefficient for ``x_k``; substituting it back shrinks every coefficient of
the original equality by a factor of about 5/6, so iteration terminates.
Auxiliary variables get negative ordinals so they can never collide with
(or leak into) DART's input vector.
"""

from math import gcd

from repro.symbolic.expr import EQ, GE, GT, LE, LT, NE, LinExpr

#: Default domain for variables the caller did not bound: signed int32.
DEFAULT_DOMAIN = (-(1 << 31), (1 << 31) - 1)

#: Domain for Omega auxiliary variables: wide enough that a quotient of an
#: int32 quantity by m >= 3 always fits, tightened by propagation later.
AUX_DOMAIN = (-(1 << 33), 1 << 33)

#: Cap on Omega transformations per solve (termination backstop; Pugh's
#: 5/6 shrink factor makes even 64-bit coefficients converge in ~100).
_OMEGA_STEP_LIMIT = 128


class Problem:
    """A normalized conjunction, mutated in place by the solving passes.

    ``domains`` tracks only the variables the constraints mention — the
    solver must not assign (and hence a model must not overwrite) inputs
    the path constraint says nothing about (the ``IM + IM'`` update of
    Fig. 5 preserves them).
    """

    def __init__(self, domain_source=None):
        self._domain_source = domain_source or {}
        self.domains = {}  # ordinal -> [lo, hi] (constraint vars only)
        self.equalities = []  # LinExpr == 0
        self.inequalities = []  # LinExpr <= 0
        self.disequalities = []  # LinExpr != 0
        self.substitutions = []  # [(var, LinExpr)] in elimination order
        self.infeasible = False
        self._next_aux = -1  # Omega auxiliaries use negative ordinals

    def fresh_aux(self):
        var = self._next_aux
        self._next_aux -= 1
        self.domains[var] = list(AUX_DOMAIN)
        return var

    def variables(self):
        referenced = set()
        for lin in self.equalities + self.inequalities + self.disequalities:
            referenced |= lin.variables()
        return referenced

    def domain(self, var):
        if var not in self.domains:
            self.domains[var] = list(
                self._domain_source.get(var, DEFAULT_DOMAIN)
            )
        return self.domains[var]


def normalize(constraints, domains):
    """Build a :class:`Problem` from CmpExprs plus variable domains."""
    problem = Problem(domains)
    for constraint in constraints:
        lin = constraint.lin
        op = constraint.op
        if op == EQ:
            problem.equalities.append(lin)
        elif op == NE:
            problem.disequalities.append(lin)
        elif op == LE:
            problem.inequalities.append(lin)
        elif op == LT:
            problem.inequalities.append(lin.add_const(1))
        elif op == GE:
            problem.inequalities.append(lin.negate())
        elif op == GT:
            problem.inequalities.append(lin.negate().add_const(1))
        else:
            raise ValueError("unknown operator {!r}".format(op))
        for var in lin.variables():
            problem.domain(var)
    return problem


def _coefficient_gcd(lin):
    g = 0
    for coeff in lin.coeffs.values():
        g = gcd(g, abs(coeff))
    return g


def _reduce_by_gcd(lin):
    """Divide an equality by its coefficient GCD; None if infeasible."""
    g = _coefficient_gcd(lin)
    if g == 0:
        return lin if lin.const == 0 else None
    if lin.const % g != 0:
        return None
    if g == 1:
        return lin
    return LinExpr(
        {v: c // g for v, c in lin.coeffs.items()}, lin.const // g
    )


def substitute(lin, var, replacement):
    """Replace ``var`` by ``replacement`` inside ``lin``."""
    coeff = lin.coeffs.get(var)
    if coeff is None or coeff == 0:
        return lin
    remaining = {v: c for v, c in lin.coeffs.items() if v != var}
    return LinExpr(remaining, lin.const).add(replacement.scale(coeff))


def eliminate_equalities(problem):
    """Solve away equalities; mutates ``problem``.

    Each eliminated variable is recorded in ``problem.substitutions`` so
    models over the remaining variables can be completed afterwards (in
    reverse elimination order).  The eliminated variable's domain bounds are
    folded back in as inequalities over its defining expression.
    """
    pending = list(problem.equalities)
    problem.equalities = []
    omega_steps = 0
    while pending:
        lin = _reduce_by_gcd(pending.pop())
        if lin is None:
            problem.infeasible = True
            return
        if lin.is_constant():
            if lin.const != 0:
                problem.infeasible = True
                return
            continue
        var, coeff = _pick_unit_variable(lin)
        if var is None:
            omega_steps += 1
            if omega_steps > _OMEGA_STEP_LIMIT:
                # Termination backstop: demote to a <=/>= pair for the
                # propagation and search phases.
                problem.inequalities.append(lin)
                problem.inequalities.append(lin.negate())
                continue
            # Omega transformation: the symmod equality has a *unit*
            # coefficient for the pivot; substituting the pivot from it
            # (back into ``lin`` among others) shrinks the coefficients by
            # ~5/6 per round, so the loop terminates (Pugh 1991).
            pivot, star = _omega_star(problem, lin)
            pending.append(lin)
            pending = _solve_and_substitute(
                problem, pending, star, pivot, star.coeffs[pivot]
            )
            continue
        pending = _solve_and_substitute(problem, pending, lin, var, coeff)


def _solve_and_substitute(problem, pending, lin, var, coeff):
    """Solve ``lin == 0`` (where ``coeff`` of ``var`` is +/-1) for ``var``
    and substitute everywhere; returns the rewritten pending list."""
    # coeff is +/-1:  coeff*var + rest = 0  ==>  var = -coeff*rest.
    rest = LinExpr(
        {v: c for v, c in lin.coeffs.items() if v != var}, lin.const
    )
    replacement = rest.scale(-coeff)
    problem.substitutions.append((var, replacement))
    pending = [substitute(e, var, replacement) for e in pending]
    problem.inequalities = [
        substitute(e, var, replacement) for e in problem.inequalities
    ]
    problem.disequalities = [
        substitute(e, var, replacement) for e in problem.disequalities
    ]
    lo, hi = problem.domain(var)
    # lo <= replacement <= hi
    problem.inequalities.append(replacement.negate().add_const(lo))
    problem.inequalities.append(replacement.add_const(-hi))
    problem.domains.pop(var, None)
    return pending


def _symmetric_mod(a, m):
    """The symmetric residue of ``a`` modulo ``m``, in ``(-m/2, m/2]``."""
    r = a % m  # Python: in [0, m)
    if 2 * r > m:
        r -= m
    return r


def _omega_star(problem, lin):
    """Pugh's auxiliary equality for a no-unit-coefficient ``lin == 0``.

    Picks the pivot with the smallest coefficient magnitude, sets
    ``m = |a_k| + 1`` and returns ``(pivot, star)`` where

        star:  sum_i symmod(a_i, m) x_i + symmod(c, m) - m * sigma  ==  0

    with a fresh auxiliary ``sigma``.  The pivot's coefficient in ``star``
    is ``-sign(a_k)`` — a unit — so the caller can solve ``star`` for the
    pivot directly.
    """
    pivot = min(lin.coeffs, key=lambda v: (abs(lin.coeffs[v]), v))
    m = abs(lin.coeffs[pivot]) + 1
    sigma = problem.fresh_aux()
    coeffs = {
        var: _symmetric_mod(coeff, m)
        for var, coeff in lin.coeffs.items()
    }
    coeffs[sigma] = -m
    return pivot, LinExpr(coeffs, _symmetric_mod(lin.const, m))


def _pick_unit_variable(lin):
    """A variable with coefficient +/-1 (preferring the lowest ordinal for
    determinism), or (None, None)."""
    best = None
    for var in sorted(lin.coeffs):
        coeff = lin.coeffs[var]
        if coeff in (1, -1):
            best = (var, coeff)
            break
    return best if best is not None else (None, None)


def complete_model(problem, model):
    """Fill eliminated variables back into ``model`` (mutated and returned)."""
    for var, replacement in reversed(problem.substitutions):
        model[var] = replacement.evaluate(model)
    return model
