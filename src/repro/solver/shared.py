"""A cross-worker solver-result store for the persistent worker pool.

The serial engines hold one :class:`repro.solver.cache.SolverResultCache`
for the whole session, so every query benefits from every earlier
answer.  Worker processes cannot share that object directly — and
naively shipping *any* cached answer across workers would make the
search timing-dependent: which worker solved a query first would decide
which model every other worker plans its children from.

The pool therefore splits caching into two layers with a sharp
determinism contract (see ``docs/PARALLELISM.md``):

* **Per-item local cache** — each work item gets a fresh
  :class:`SolverResultCache` with all four tiers (exact, UNSAT-core,
  UNSAT-superset, model reuse).  Canonically-equal and subsumed queries
  *within one item's expansion* — the common case once slicing shrinks
  queries — are answered locally, and because the cache starts empty
  per item, every worker result is a pure function of its payload.
* **Shared exact store** (this module) — a parent-side
  :class:`CacheServer` thread memoizes *identical* queries across
  workers.  The key is the ordered tuple of verbatim constraint keys
  plus sorted domains (stricter than the local cache's canonical set
  key), so two queries share an entry only when the solver would have
  seen byte-identical input — which makes the stored value a pure
  function of the key (``Solver.solve`` is deterministic in the query,
  seed and node budget), no matter which worker solved it first or how
  the race went.

**Claim protocol.**  A worker's lookup either *hits* (the key was
decided), *waits* (another worker is solving the same key right now —
the reply is deferred until that solve resolves), or *claims* (the
worker is first: it gets a miss, solves, and reports the result back).
Unknown verdicts are never stored — they resolve the claim and release
any waiters with a fresh claim each, so escalation and the
random-fallback degradation behave per-occurrence exactly as in the
serial engine.  The protocol is deadlock-free because a worker holds at
most one unresolved claim and issues no lookups while solving it.

**Determinism.**  For every distinct key that the solver decides,
exactly one lookup per session misses (the claim) and every other
occurrence hits; for keys the solver cannot decide, every occurrence
misses.  Both counts depend only on the payloads, so session-total
cache/solver counters are reproducible run to run even though *which*
worker pays each miss is not (nothing pins per-worker attribution).

**Failure containment.**  A worker death releases its claims
(:meth:`CacheServer.release_worker`, also triggered by pipe EOF), so
waiters never hang on a dead claimant; a client-side ``clear()`` — the
cache self-heal path — releases that worker's outstanding claims.
Losing the whole store merely costs re-derived solver calls, exactly
like clearing the serial cache.
"""

import threading
import time
from collections import OrderedDict
from multiprocessing import Pipe
from multiprocessing.connection import wait as _wait_ready

from repro.obs import trace as tr
from repro.solver.cache import (
    _DEFAULT_DOMAIN,
    ENCODING_VERSION,
    EXACT,
    SolverResultCache,
)
from repro.solver.core import SolverResult


def shared_query_key(constraints, domains):
    """Identity of one *verbatim* query: ordered conjuncts + domains.

    Deliberately stricter than :meth:`SolverResultCache.query_key`: no
    strict-inequality canonicalization and no set-collapse of the
    conjunct order.  Two queries map to the same shared key only when
    the solver would receive structurally identical input, which is
    what makes the shared store's values key-pure (and the pool's
    counters timing-invariant).  Domains are sorted by ``repr`` so the
    key is stable across processes regardless of per-process string
    hashing.
    """
    variables = set()
    for constraint in constraints:
        variables |= constraint.variables()
    doms = tuple(sorted(
        ((var,) + tuple(domains.get(var, _DEFAULT_DOMAIN))
         for var in variables),
        key=repr,
    ))
    return (
        ENCODING_VERSION,
        tuple(constraint.key() for constraint in constraints),
        doms,
    )


class CacheServer:
    """Parent-side thread serving the shared exact store over pipes.

    One duplex pipe per worker, multiplexed with
    ``multiprocessing.connection.wait``; all state is guarded by one
    lock so the parent (worker-death cleanup) and the serving thread
    never race.  Messages from a worker:

    * ``("lookup", key)`` — replied with ``("hit", status, model)`` or
      ``("claimed",)``; a lookup of an in-flight key is *not* replied to
      until the claimant resolves it (the wait-on-inflight path).
    * ``("resolve", key, status, model)`` — fire-and-forget; stores a
      decided result, clears the in-flight claim, releases waiters.
    """

    def __init__(self, max_results=65536):
        self._lock = threading.Lock()
        #: key -> (status, model); first resolve wins (values are
        #: key-pure, so first-wins and last-wins are equivalent — keep
        #: the cheaper one).
        self._results = OrderedDict()
        self._inflight = {}  # key -> claiming wid
        self._waiters = {}  # key -> [wid, ...] awaiting a reply
        self._conns = {}  # wid -> parent-side Connection
        self._next_wid = 0
        self._max_results = max_results
        self._stop = threading.Event()
        self._thread = None
        #: Served/claimed lookup tallies (parent-side observability;
        #: read after stop() for the pool_stopped trace event).
        self.hits = 0
        self.claims = 0

    # -- lifecycle ----------------------------------------------------------

    def register_worker(self):
        """Create one worker's pipe; returns ``(wid, child_connection)``.

        Call before starting (or respawning) the worker process and pass
        the child end down; the serving loop picks the new connection up
        on its next iteration.
        """
        parent_conn, child_conn = Pipe()
        with self._lock:
            wid = self._next_wid
            self._next_wid += 1
            self._conns[wid] = parent_conn
        return wid, child_conn

    def start(self):
        self._thread = threading.Thread(
            target=self._serve, name="dart-cache-server", daemon=True)
        self._thread.start()

    def stop(self):
        """Wind the server down; safe to call more than once."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._lock:
            for conn in self._conns.values():
                try:
                    conn.close()
                except OSError:
                    pass
            self._conns.clear()
            self._inflight.clear()
            self._waiters.clear()

    def release_worker(self, wid):
        """Clean up after a dead worker: close its pipe, free its claims.

        Every key the worker had claimed is un-claimed and its waiters
        are released with a fresh claim each — they re-solve the query
        themselves (pure, so the recovered answers are the ones the dead
        worker would have produced).  Also triggered internally when a
        worker's pipe hits EOF.
        """
        with self._lock:
            self._release_locked(wid)

    def __len__(self):
        with self._lock:
            return len(self._results)

    # -- internals ----------------------------------------------------------

    def _release_locked(self, wid):
        conn = self._conns.pop(wid, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        for key, owner in list(self._inflight.items()):
            if owner != wid:
                continue
            del self._inflight[key]
            for waiter in self._waiters.pop(key, ()):
                self.claims += 1
                self._reply(waiter, ("claimed",))
        for key, waiters in list(self._waiters.items()):
            if wid in waiters:
                self._waiters[key] = [w for w in waiters if w != wid]

    def _reply(self, wid, message):
        conn = self._conns.get(wid)
        if conn is None:
            return
        try:
            conn.send(message)
        except (OSError, ValueError):
            # The waiter died; its claims are freed when the parent (or
            # the EOF path below) releases it — dropping the reply here
            # cannot strand anyone else.
            self._conns.pop(wid, None)

    def _serve(self):
        while not self._stop.is_set():
            with self._lock:
                by_conn = {conn: wid for wid, conn in self._conns.items()}
            if not by_conn:
                self._stop.wait(0.02)
                continue
            try:
                ready = _wait_ready(list(by_conn), timeout=0.05)
            except OSError:
                continue
            for conn in ready:
                wid = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    with self._lock:
                        if self._conns.get(wid) is conn:
                            self._release_locked(wid)
                    continue
                with self._lock:
                    try:
                        self._handle(wid, message)
                    except Exception:
                        # Self-heal like the in-process cache: a broken
                        # internal state must degrade to re-derived
                        # solver calls, never take the session down.
                        self._results.clear()
                        self._reply(wid, ("claimed",))

    def _handle(self, wid, message):
        kind = message[0]
        if kind == "lookup":
            key = message[1]
            entry = self._results.get(key)
            if entry is not None:
                self._results.move_to_end(key)
                self.hits += 1
                self._reply(wid, ("hit",) + entry)
            elif key in self._inflight:
                self._waiters.setdefault(key, []).append(wid)
            else:
                self._inflight[key] = wid
                self.claims += 1
                self._reply(wid, ("claimed",))
        elif kind == "resolve":
            key, status, model = message[1], message[2], message[3]
            if status in ("sat", "unsat") and key not in self._results:
                self._results[key] = (status, model)
                while len(self._results) > self._max_results:
                    self._results.popitem(last=False)
            self._inflight.pop(key, None)
            entry = self._results.get(key)
            for waiter in self._waiters.pop(key, ()):
                if entry is not None:
                    self.hits += 1
                    self._reply(waiter, ("hit",) + entry)
                else:
                    self.claims += 1
                    self._reply(waiter, ("claimed",))


class SharedCacheClient:
    """Worker-side cache facade: per-item local tiers + the shared store.

    Implements the :class:`SolverResultCache` interface that
    :func:`repro.dart.solve.solve_with_retry` consumes (``lookup`` /
    ``store`` / ``clear`` / ``trace``), so the worker's solving loop is
    byte-identical to the serial engine's.  ``begin_item()`` must be
    called before each work item: it resets the local cache (keeping
    worker results payload-pure) and releases any leftover claim.
    """

    def __init__(self, conn):
        self._conn = conn
        #: Optional TraceBus (the worker's private per-item bus); one
        #: cache_lookup / cache_store event per call, like the serial
        #: cache.
        self.trace = None
        self.local = SolverResultCache()
        self._claims = set()

    def begin_item(self):
        """Reset per-item state (fresh local cache, no stale claims)."""
        self.local = SolverResultCache()
        self._release_claims()
        self.trace = None

    # -- the SolverResultCache interface ------------------------------------

    def lookup(self, constraints, domains):
        trace = self.trace
        if trace is None or not trace.enabled:
            return self._lookup(constraints, domains)
        started = time.perf_counter()
        hit = self._lookup(constraints, domains)
        trace.emit(
            tr.CACHE_LOOKUP,
            tier=hit[1] if hit is not None else None,
            verdict=hit[0].status if hit is not None else None,
            constraints=len(constraints),
            wall_s=round(time.perf_counter() - started, 6),
        )
        return hit

    def _lookup(self, constraints, domains):
        hit = self.local.lookup(constraints, domains)
        if hit is not None:
            return hit
        key = shared_query_key(constraints, domains)
        self._conn.send(("lookup", key))
        reply = self._conn.recv()  # may block on an in-flight claimant
        if reply[0] == "hit":
            status, model = reply[1], reply[2]
            result = SolverResult(status,
                                  dict(model) if model else None)
            # Feed the local tiers too: later queries of this same item
            # can then reuse the model or the UNSAT set without another
            # round-trip (still payload-pure — the shared value is a
            # function of the key).
            self.local.store(constraints, domains, result)
            return result, EXACT
        self._claims.add(key)
        return None

    def store(self, constraints, domains, result):
        key = shared_query_key(constraints, domains)
        self._claims.discard(key)
        if result.status not in ("sat", "unsat"):
            # Resolve the claim so waiters stop waiting; unknown itself
            # is never cached (same rule as the serial cache).
            self._conn.send(("resolve", key, result.status, None))
            return
        trace = self.trace
        started = time.perf_counter() \
            if trace is not None and trace.enabled else None
        self.local.store(constraints, domains, result)
        self._conn.send(("resolve", key, result.status, result.model))
        if started is not None:
            trace.emit(
                tr.CACHE_STORE, verdict=result.status,
                constraints=len(constraints),
                wall_s=round(time.perf_counter() - started, 6),
            )

    def clear(self):
        """Self-heal: drop local state and release outstanding claims."""
        self.local.clear()
        self._release_claims()

    def __len__(self):
        return len(self.local)

    # -- internals ----------------------------------------------------------

    def _release_claims(self):
        for key in list(self._claims):
            try:
                self._conn.send(("resolve", key, "unknown", None))
            except (OSError, ValueError):
                break
        self._claims.clear()
