"""Fourier–Motzkin refutation for ``lin <= 0`` systems.

Eliminating a variable by combining each positive-coefficient constraint
with each negative-coefficient one preserves rational satisfiability;
deriving a constraint ``c <= 0`` with constant ``c > 0`` therefore proves
the system infeasible over the rationals — and hence over the integers.
This catches cyclic contradictions that interval propagation cannot, such
as ``x < y`` together with ``y < x``.

Only used as a refutation: the procedure never claims satisfiability
(integer gaps make the rational relaxation incomplete in that direction),
and it gives up silently when the quadratic constraint growth exceeds its
budget, so it is always sound to consult.
"""

from math import gcd

from repro.symbolic.expr import LinExpr

#: Abandon elimination when the working set would exceed this size.
_GROWTH_LIMIT = 400


def _normalized(lin):
    """Divide by the positive GCD of all coefficients and the constant's
    sign-preserving part, for cheap duplicate elimination."""
    g = 0
    for coeff in lin.coeffs.values():
        g = gcd(g, abs(coeff))
    if g > 1:
        # Integer division of the constant keeps soundness for <=:
        # (g*a <= 0) iff (a <= 0) when dividing exactly; otherwise keep
        # the floor, which only weakens the constraint.
        return LinExpr(
            {v: c // g for v, c in lin.coeffs.items()}, -((-lin.const) // g)
        )
    return lin


def refutes(inequalities):
    """True if Fourier–Motzkin proves the ``lin <= 0`` system infeasible."""
    working = []
    seen = set()
    for lin in inequalities:
        lin = _normalized(lin)
        if lin.is_constant():
            if lin.const > 0:
                return True
            continue
        key = (frozenset(lin.coeffs.items()), lin.const)
        if key not in seen:
            seen.add(key)
            working.append(lin)

    variables = set()
    for lin in working:
        variables |= lin.variables()

    for var in sorted(variables):
        positive = [l for l in working if l.coeffs.get(var, 0) > 0]
        negative = [l for l in working if l.coeffs.get(var, 0) < 0]
        neutral = [l for l in working if l.coeffs.get(var, 0) == 0]
        if len(positive) * len(negative) + len(neutral) > _GROWTH_LIMIT:
            return False  # too expensive; give up (sound)
        combined = list(neutral)
        for pos in positive:
            a = pos.coeffs[var]
            for neg in negative:
                b = -neg.coeffs[var]
                # b*pos + a*neg eliminates var; both scales positive.
                lin = _normalized(pos.scale(b).add(neg.scale(a)))
                if lin.is_constant():
                    if lin.const > 0:
                        return True
                    continue
                key = (frozenset(lin.coeffs.items()), lin.const)
                if key not in seen:
                    seen.add(key)
                    combined.append(lin)
        working = combined
        if not working:
            return False
    for lin in working:
        if lin.is_constant() and lin.const > 0:
            return True
    return False
