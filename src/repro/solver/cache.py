"""Solver result caching keyed on canonical constraint sets.

DART's directed search re-issues many near-identical queries: consecutive
candidate flips share almost all conjuncts, sliced queries for different
branch indices often normalize to the *same* constraint set, and restarts
revisit prefixes already decided.  This cache answers a query without a
solver call through four tiers, cheapest first:

1. **Exact hit** — the canonical key (the encoding generation, the set
   of conjunct keys with strict inequalities normalized to non-strict
   form, and the domains of their variables) was decided before; the
   stored result is returned verbatim.
2. **UNSAT-core subsumption** — a recorded *minimal* conflicting
   conjunct set (extracted by greedy deletion after a sliced query came
   back UNSAT, see :func:`repro.dart.solve._extract_core`) that is
   contained in the query refutes it cross-subtree: the core alone is
   already unsatisfiable, and adding conjuncts or tightening domains
   never repairs that.
3. **UNSAT-superset shortcut** — a previously proved-UNSAT constraint set
   that is a subset of the query (under domains at least as wide) refutes
   the query too, by the same monotonicity.  The core tier is the same
   argument applied to a deliberately minimized set, so it fires on far
   more supersets.
4. **Model reuse** — a model cached from an earlier SAT answer that
   assigns every variable of the query, within its domains, and satisfies
   every conjunct answers SAT without a search (the counterexample-cache
   idea of KLEE and Green).

The two UNSAT tiers share a **smallest-conjunct-key index**: every
stored set is bucketed under its lexicographically smallest conjunct
key, and a lookup only scans buckets whose key appears in the query —
a subset's smallest element is necessarily one of the query's elements,
so the pruning can never miss a hit the full linear scan would find
(pinned by a property test), while misses stop costing O(cache size).

Only decided results (sat/unsat) are stored; ``unknown`` is a node-budget
artifact that an escalated retry may overturn, so caching it would make
incompleteness sticky.  All stores are bounded LRU so a long session's
memory stays flat.

Soundness: every tier returns a verdict that the solver itself would
have produced — exact hits replay a prior verdict for a canonically
equal query, the UNSAT-superset tier relies on monotonicity (a superset
of an unsatisfiable set under no-wider domains is unsatisfiable), and
reused models are re-checked against every conjunct of the *current*
query before being answered SAT.  The cache can therefore never steer
the search somewhere the solver would not have.

With a :class:`repro.obs.trace.TraceBus` attached (the ``trace``
attribute, set by the runner), each lookup/store emits an event carrying
the tier (or miss) and its wall time.

Under ``jobs>1`` this cache becomes the *local* layer of a two-layer
scheme: each pool worker consults a per-item instance (all four tiers),
backed by a parent-side server that shares exact-tier results across
workers (`repro.solver.shared` — the layering keeps every worker result
a pure function of its payload, which the pool's determinism argument
in docs/PARALLELISM.md rests on).
"""

import time
from collections import OrderedDict

from repro.faults import points as fault_points
from repro.obs import trace as tr
from repro.solver.core import SAT, UNSAT, SolverResult
from repro.symbolic.expr import GE, GT, LE, LT

#: Default domain for variables the query does not bound: signed int32
#: (mirrors repro.solver.problem.DEFAULT_DOMAIN without importing it, to
#: keep this module dependency-free for the parallel workers).
_DEFAULT_DOMAIN = (-(1 << 31), (1 << 31) - 1)

#: Generation of the constraint *encoding* the engine records.  Bumped
#: whenever the meaning of a canonically-equal constraint set changes —
#: v1: ideal-integer conjuncts with the faithfulness drop screen;
#: v2: machine-integer widening (wrap-anchored conjuncts + window
#: guards); v3: cross-subtree UNSAT-core subsumption (a key can now be
#: refuted by a *recorded core* it contains, not only replayed or
#: refuted by a whole prior query — the answer set a key stands for
#: changed, so the key semantics changed).  The version is part of every
#: query key, so entries from a different generation can never answer a
#: query, and it is stamped into the session fingerprint
#: (`Dart.fingerprint`), so a checkpoint written under another encoding
#: is rejected and its branches re-solved.
ENCODING_VERSION = 3

#: Lookup-tier tags (also the RunStats counter the caller bumps).
EXACT = "exact"
UNSAT_CORE = "unsat-core"
UNSAT_SUPERSET = "unsat-superset"
MODEL_REUSE = "model-reuse"


def _smallest_key(cons_keys):
    """The bucket key of a stored UNSAT set: its smallest conjunct key.

    Conjunct keys are heterogeneous tuples (plain vs. widened/tagged),
    so ``repr`` provides the total order — any deterministic one works,
    as long as store and lookup agree.
    """
    return min(cons_keys, key=repr)


class SolverResultCache:
    """Bounded cache of solver verdicts for normalized constraint sets."""

    def __init__(self, max_results=4096, max_models=64, max_unsat_sets=256,
                 max_cores=256):
        #: Optional TraceBus; when attached and enabled, lookups and
        #: stores emit cache_lookup / cache_store events.
        self.trace = None
        #: query key -> SolverResult (exact tier).
        self._results = OrderedDict()
        #: frozenset(model.items()) -> model dict (model-reuse tier).
        self._models = OrderedDict()
        #: unsat key -> (constraint key set, {var: (lo, hi)}).
        self._unsat = OrderedDict()
        #: core key -> (constraint key set, {var: (lo, hi)}) — minimal
        #: conflicting sets recorded by the subsumption layer.
        self._cores = OrderedDict()
        #: Smallest-conjunct-key indexes over the two UNSAT stores:
        #: bucket key -> list of store keys, maintained through LRU
        #: eviction and clear().
        self._unsat_index = {}
        self._core_index = {}
        self._max_results = max_results
        self._max_models = max_models
        self._max_unsat_sets = max_unsat_sets
        self._max_cores = max_cores

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def canonical_cmp_key(constraint):
        """Canonical cache identity of one conjunct.

        Over the integers ``lin < 0`` iff ``lin + 1 <= 0`` and ``lin > 0``
        iff ``lin - 1 >= 0``, so strict inequalities are normalized to
        their non-strict form during key construction — the two spellings
        of the same half-space then share exact-tier entries.  (The
        normalization lives here, not in ``CmpExpr.key()``, so expression
        equality/hashing and slicing identities are untouched.)  Tagged
        keys of widened conjuncts are kept verbatim: their guards are part
        of their meaning, and they are flattened to plain conjuncts before
        any query reaches the cache anyway.
        """
        key = constraint.key()
        if len(key) != 2:
            return key
        op = constraint.op
        if op == LT:
            return (LE, constraint.lin.add_const(1).key())
        if op == GT:
            return (GE, constraint.lin.add_const(-1).key())
        return key

    @staticmethod
    def query_key(constraints, domains):
        """Canonical identity of (encoding, constraint set, domains).

        The leading :data:`ENCODING_VERSION` makes keys from different
        constraint-encoding generations disjoint by construction.
        """
        cons = frozenset(
            SolverResultCache.canonical_cmp_key(c) for c in constraints
        )
        variables = set()
        for c in constraints:
            variables |= c.variables()
        doms = frozenset(
            (var,) + tuple(domains.get(var, _DEFAULT_DOMAIN))
            for var in variables
        )
        return (ENCODING_VERSION, cons, doms)

    # -- lookup -------------------------------------------------------------

    def lookup(self, constraints, domains):
        """Answer a query from the cache, or None.

        Returns ``(SolverResult, tier)`` with ``tier`` one of
        :data:`EXACT`, :data:`UNSAT_CORE`, :data:`UNSAT_SUPERSET`,
        :data:`MODEL_REUSE`.
        """
        trace = self.trace
        if trace is None or not trace.enabled:
            return self._lookup(constraints, domains)
        started = time.perf_counter()
        hit = self._lookup(constraints, domains)
        wall = time.perf_counter() - started
        trace.emit(
            tr.CACHE_LOOKUP,
            tier=hit[1] if hit is not None else None,
            verdict=hit[0].status if hit is not None else None,
            constraints=len(constraints),
            wall_s=round(wall, 6),
        )
        return hit

    def _lookup(self, constraints, domains):
        injector = fault_points.ACTIVE
        if injector is not None:
            # Fault seam: simulated internal corruption.  The engine
            # (solve_with_retry) self-heals by clearing the cache and
            # treating the lookup as a miss.
            injector.cache_access()
        key = self.query_key(constraints, domains)
        result = self._results.get(key)
        if result is not None:
            self._results.move_to_end(key)
            return result, EXACT
        core = self._refute(self._cores, self._core_index, key[1], domains)
        if core is not None:
            return core, UNSAT_CORE
        shortcut = self._refute(self._unsat, self._unsat_index, key[1],
                                domains)
        if shortcut is not None:
            return shortcut, UNSAT_SUPERSET
        reused = self._reuse_model(constraints, domains)
        if reused is not None:
            return reused, MODEL_REUSE
        return None

    def _refute(self, store, index, cons_keys, domains):
        """Shared subset test of the two UNSAT tiers, index-pruned.

        A stored set contained in the query refutes it.  Candidates come
        from the buckets of the query's own conjunct keys: any subset's
        smallest key is one of the query's keys, so no hit the full scan
        would find is skipped.  Bucket keys are visited in sorted order —
        conjunct keys contain strings, so raw frozenset order would vary
        with hash randomization and make LRU touch order (hence eviction,
        hence counters) irreproducible across interpreter runs.
        """
        for bucket_key in sorted(cons_keys, key=repr):
            for store_key in index.get(bucket_key, ()):
                cached_cons, cached_domains = store[store_key]
                if not cached_cons <= cons_keys:
                    continue
                # The cached refutation holds under domains at least as
                # wide as the query's for every variable it constrains.
                for var, (lo, hi) in cached_domains.items():
                    qlo, qhi = domains.get(var, _DEFAULT_DOMAIN)
                    if qlo < lo or qhi > hi:
                        break
                else:
                    store.move_to_end(store_key)
                    return SolverResult(UNSAT)
        return None

    def _reuse_model(self, constraints, domains):
        variables = set()
        for c in constraints:
            variables |= c.variables()
        for model_key, model in reversed(self._models.items()):
            if any(var not in model for var in variables):
                continue
            in_domain = True
            for var in variables:
                lo, hi = domains.get(var, _DEFAULT_DOMAIN)
                if not lo <= model[var] <= hi:
                    in_domain = False
                    break
            if not in_domain:
                continue
            if all(c.evaluate(model) for c in constraints):
                self._models.move_to_end(model_key)
                # Restrict to the query's variables: a fuller model would
                # leak assignments into IM slots this query says nothing
                # about when the caller merges it (the IM + IM' update).
                return SolverResult(
                    SAT, {var: model[var] for var in variables}
                )
        return None

    # -- store --------------------------------------------------------------

    def store(self, constraints, domains, result):
        """Record a decided result; ``unknown`` is never cached."""
        if result.status not in ("sat", "unsat"):
            return
        trace = self.trace
        if trace is not None and trace.enabled:
            started = time.perf_counter()
            self._store(constraints, domains, result)
            trace.emit(
                tr.CACHE_STORE, verdict=result.status,
                constraints=len(constraints),
                wall_s=round(time.perf_counter() - started, 6),
            )
            return
        self._store(constraints, domains, result)

    def _store(self, constraints, domains, result):
        injector = fault_points.ACTIVE
        if injector is not None:
            injector.cache_access()
        key = self.query_key(constraints, domains)
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)
        if result.status == "sat" and result.model:
            model_key = frozenset(result.model.items())
            self._models[model_key] = result.model
            self._models.move_to_end(model_key)
            while len(self._models) > self._max_models:
                self._models.popitem(last=False)
        elif result.status == "unsat":
            self._store_unsat_set(self._unsat, self._unsat_index,
                                  self._max_unsat_sets, key, constraints,
                                  domains)

    def store_core(self, constraints, domains):
        """Record a minimal conflicting conjunct set (the subsumption
        layer's cross-subtree tier).

        The caller has proved ``constraints`` UNSAT and minimized it by
        greedy deletion; any future query containing it (under no-wider
        domains) is refuted without a solver call.  Goes through the
        same fault seam and trace events as a plain store.
        """
        trace = self.trace
        if trace is None or not trace.enabled:
            self._store_core(constraints, domains)
            return
        started = time.perf_counter()
        self._store_core(constraints, domains)
        trace.emit(
            tr.CACHE_STORE, verdict="unsat-core",
            constraints=len(constraints),
            wall_s=round(time.perf_counter() - started, 6),
        )

    def _store_core(self, constraints, domains):
        injector = fault_points.ACTIVE
        if injector is not None:
            injector.cache_access()
        key = self.query_key(constraints, domains)
        self._store_unsat_set(self._cores, self._core_index,
                              self._max_cores, key, constraints, domains)

    @staticmethod
    def _store_unsat_set(store, index, bound, key, constraints, domains):
        cached_domains = {
            var: tuple(domains.get(var, _DEFAULT_DOMAIN))
            for c in constraints for var in c.variables()
        }
        if key in store:
            store.move_to_end(key)
            return
        store[key] = (key[1], cached_domains)
        index.setdefault(_smallest_key(key[1]), []).append(key)
        while len(store) > bound:
            evicted_key, (evicted_cons, _domains) = store.popitem(last=False)
            bucket_key = _smallest_key(evicted_cons)
            bucket = index.get(bucket_key)
            if bucket is not None:
                try:
                    bucket.remove(evicted_key)
                except ValueError:  # pragma: no cover — index invariant
                    pass
                if not bucket:
                    del index[bucket_key]

    def clear(self):
        """Drop every entry (the self-heal after detected corruption).

        Losing the cache costs only re-derived solver calls, never
        answers: every tier reproduces verdicts the solver would give,
        so an empty cache is always a safe state to fall back to.
        """
        self._results.clear()
        self._models.clear()
        self._unsat.clear()
        self._cores.clear()
        self._unsat_index.clear()
        self._core_index.clear()

    def __len__(self):
        return len(self._results)
