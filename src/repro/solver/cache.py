"""Solver result caching keyed on canonical constraint sets.

DART's directed search re-issues many near-identical queries: consecutive
candidate flips share almost all conjuncts, sliced queries for different
branch indices often normalize to the *same* constraint set, and restarts
revisit prefixes already decided.  This cache answers a query without a
solver call through three tiers, cheapest first:

1. **Exact hit** — the canonical key (the encoding generation, the set
   of conjunct keys with strict inequalities normalized to non-strict
   form, and the domains of their variables) was decided before; the
   stored result is returned verbatim.
2. **UNSAT-superset shortcut** — a previously proved-UNSAT constraint set
   that is a subset of the query (under domains at least as wide) refutes
   the query too: adding conjuncts or tightening domains never makes an
   unsatisfiable set satisfiable.
3. **Model reuse** — a model cached from an earlier SAT answer that
   assigns every variable of the query, within its domains, and satisfies
   every conjunct answers SAT without a search (the counterexample-cache
   idea of KLEE and Green).

Only decided results (sat/unsat) are stored; ``unknown`` is a node-budget
artifact that an escalated retry may overturn, so caching it would make
incompleteness sticky.  All stores are bounded LRU so a long session's
memory stays flat.

Soundness: every tier returns a verdict that the solver itself would
have produced — exact hits replay a prior verdict for a canonically
equal query, the UNSAT-superset tier relies on monotonicity (a superset
of an unsatisfiable set under no-wider domains is unsatisfiable), and
reused models are re-checked against every conjunct of the *current*
query before being answered SAT.  The cache can therefore never steer
the search somewhere the solver would not have.

With a :class:`repro.obs.trace.TraceBus` attached (the ``trace``
attribute, set by the runner), each lookup/store emits an event carrying
the tier (or miss) and its wall time.

Under ``jobs>1`` this cache becomes the *local* layer of a two-layer
scheme: each pool worker consults a per-item instance (all three tiers),
backed by a parent-side server that shares exact-tier results across
workers (`repro.solver.shared` — the layering keeps every worker result
a pure function of its payload, which the pool's determinism argument
in docs/PARALLELISM.md rests on).
"""

import time
from collections import OrderedDict

from repro.faults import points as fault_points
from repro.obs import trace as tr
from repro.solver.core import SAT, UNSAT, SolverResult
from repro.symbolic.expr import GE, GT, LE, LT

#: Default domain for variables the query does not bound: signed int32
#: (mirrors repro.solver.problem.DEFAULT_DOMAIN without importing it, to
#: keep this module dependency-free for the parallel workers).
_DEFAULT_DOMAIN = (-(1 << 31), (1 << 31) - 1)

#: Generation of the constraint *encoding* the engine records.  Bumped
#: whenever the meaning of a canonically-equal constraint set changes —
#: v1: ideal-integer conjuncts with the faithfulness drop screen;
#: v2: machine-integer widening (wrap-anchored conjuncts + window
#: guards).  The version is part of every query key, so entries from a
#: different generation can never answer a query, and it is stamped into
#: the session fingerprint (`Dart.fingerprint`), so a checkpoint written
#: under another encoding is rejected and its branches re-solved.
ENCODING_VERSION = 2

#: Lookup-tier tags (also the RunStats counter the caller bumps).
EXACT = "exact"
UNSAT_SUPERSET = "unsat-superset"
MODEL_REUSE = "model-reuse"


class SolverResultCache:
    """Bounded cache of solver verdicts for normalized constraint sets."""

    def __init__(self, max_results=4096, max_models=64, max_unsat_sets=256):
        #: Optional TraceBus; when attached and enabled, lookups and
        #: stores emit cache_lookup / cache_store events.
        self.trace = None
        #: query key -> SolverResult (exact tier).
        self._results = OrderedDict()
        #: frozenset(model.items()) -> model dict (model-reuse tier).
        self._models = OrderedDict()
        #: unsat key -> (constraint key set, {var: (lo, hi)}).
        self._unsat = OrderedDict()
        self._max_results = max_results
        self._max_models = max_models
        self._max_unsat_sets = max_unsat_sets

    # -- keys ---------------------------------------------------------------

    @staticmethod
    def canonical_cmp_key(constraint):
        """Canonical cache identity of one conjunct.

        Over the integers ``lin < 0`` iff ``lin + 1 <= 0`` and ``lin > 0``
        iff ``lin - 1 >= 0``, so strict inequalities are normalized to
        their non-strict form during key construction — the two spellings
        of the same half-space then share exact-tier entries.  (The
        normalization lives here, not in ``CmpExpr.key()``, so expression
        equality/hashing and slicing identities are untouched.)  Tagged
        keys of widened conjuncts are kept verbatim: their guards are part
        of their meaning, and they are flattened to plain conjuncts before
        any query reaches the cache anyway.
        """
        key = constraint.key()
        if len(key) != 2:
            return key
        op = constraint.op
        if op == LT:
            return (LE, constraint.lin.add_const(1).key())
        if op == GT:
            return (GE, constraint.lin.add_const(-1).key())
        return key

    @staticmethod
    def query_key(constraints, domains):
        """Canonical identity of (encoding, constraint set, domains).

        The leading :data:`ENCODING_VERSION` makes keys from different
        constraint-encoding generations disjoint by construction.
        """
        cons = frozenset(
            SolverResultCache.canonical_cmp_key(c) for c in constraints
        )
        variables = set()
        for c in constraints:
            variables |= c.variables()
        doms = frozenset(
            (var,) + tuple(domains.get(var, _DEFAULT_DOMAIN))
            for var in variables
        )
        return (ENCODING_VERSION, cons, doms)

    # -- lookup -------------------------------------------------------------

    def lookup(self, constraints, domains):
        """Answer a query from the cache, or None.

        Returns ``(SolverResult, tier)`` with ``tier`` one of
        :data:`EXACT`, :data:`UNSAT_SUPERSET`, :data:`MODEL_REUSE`.
        """
        trace = self.trace
        if trace is None or not trace.enabled:
            return self._lookup(constraints, domains)
        started = time.perf_counter()
        hit = self._lookup(constraints, domains)
        wall = time.perf_counter() - started
        trace.emit(
            tr.CACHE_LOOKUP,
            tier=hit[1] if hit is not None else None,
            verdict=hit[0].status if hit is not None else None,
            constraints=len(constraints),
            wall_s=round(wall, 6),
        )
        return hit

    def _lookup(self, constraints, domains):
        injector = fault_points.ACTIVE
        if injector is not None:
            # Fault seam: simulated internal corruption.  The engine
            # (solve_with_retry) self-heals by clearing the cache and
            # treating the lookup as a miss.
            injector.cache_access()
        key = self.query_key(constraints, domains)
        result = self._results.get(key)
        if result is not None:
            self._results.move_to_end(key)
            return result, EXACT
        shortcut = self._unsat_superset(key[1], constraints, domains)
        if shortcut is not None:
            return shortcut, UNSAT_SUPERSET
        reused = self._reuse_model(constraints, domains)
        if reused is not None:
            return reused, MODEL_REUSE
        return None

    def _unsat_superset(self, cons_keys, constraints, domains):
        for unsat_key, (cached_cons, cached_domains) in self._unsat.items():
            if not cached_cons <= cons_keys:
                continue
            # The cached refutation holds under domains at least as wide
            # as the query's for every variable it constrains.
            for var, (lo, hi) in cached_domains.items():
                qlo, qhi = domains.get(var, _DEFAULT_DOMAIN)
                if qlo < lo or qhi > hi:
                    break
            else:
                self._unsat.move_to_end(unsat_key)
                return SolverResult(UNSAT)
        return None

    def _reuse_model(self, constraints, domains):
        variables = set()
        for c in constraints:
            variables |= c.variables()
        for model_key, model in reversed(self._models.items()):
            if any(var not in model for var in variables):
                continue
            in_domain = True
            for var in variables:
                lo, hi = domains.get(var, _DEFAULT_DOMAIN)
                if not lo <= model[var] <= hi:
                    in_domain = False
                    break
            if not in_domain:
                continue
            if all(c.evaluate(model) for c in constraints):
                self._models.move_to_end(model_key)
                # Restrict to the query's variables: a fuller model would
                # leak assignments into IM slots this query says nothing
                # about when the caller merges it (the IM + IM' update).
                return SolverResult(
                    SAT, {var: model[var] for var in variables}
                )
        return None

    # -- store --------------------------------------------------------------

    def store(self, constraints, domains, result):
        """Record a decided result; ``unknown`` is never cached."""
        if result.status not in ("sat", "unsat"):
            return
        trace = self.trace
        if trace is not None and trace.enabled:
            started = time.perf_counter()
            self._store(constraints, domains, result)
            trace.emit(
                tr.CACHE_STORE, verdict=result.status,
                constraints=len(constraints),
                wall_s=round(time.perf_counter() - started, 6),
            )
            return
        self._store(constraints, domains, result)

    def _store(self, constraints, domains, result):
        injector = fault_points.ACTIVE
        if injector is not None:
            injector.cache_access()
        key = self.query_key(constraints, domains)
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self._max_results:
            self._results.popitem(last=False)
        if result.status == "sat" and result.model:
            model_key = frozenset(result.model.items())
            self._models[model_key] = result.model
            self._models.move_to_end(model_key)
            while len(self._models) > self._max_models:
                self._models.popitem(last=False)
        elif result.status == "unsat":
            cached_domains = {
                var: tuple(domains.get(var, _DEFAULT_DOMAIN))
                for c in constraints for var in c.variables()
            }
            self._unsat[key] = (key[1], cached_domains)
            self._unsat.move_to_end(key)
            while len(self._unsat) > self._max_unsat_sets:
                self._unsat.popitem(last=False)

    def clear(self):
        """Drop every entry (the self-heal after detected corruption).

        Losing the cache costs only re-derived solver calls, never
        answers: every tier reproduces verdicts the solver would give,
        so an empty cache is always a safe state to fall back to.
        """
        self._results.clear()
        self._models.clear()
        self._unsat.clear()

    def __len__(self):
        return len(self._results)
