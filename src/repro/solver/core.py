"""The solver facade: normalize, eliminate, propagate, search, verify.

The search phase assigns variables one at a time (smallest-domain first),
propagating after each assignment.  Small domains are enumerated
exhaustively; large domains are probed at structured candidates (bounds,
zero, midpoint, deterministic pseudo-random samples) — when the probes of a
large domain are exhausted without a full exploration the answer degrades
from UNSAT to UNKNOWN, never the reverse.  Every model is verified against
the *original* constraints and domains before SAT is reported.
"""

import random

from repro.faults import points as fault_points
from repro.solver.fm import refutes
from repro.solver.problem import (
    complete_model,
    eliminate_equalities,
    normalize,
)
from repro.solver.propagate import propagate

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Domain width below which a variable is enumerated exhaustively.
_ENUMERATE_WIDTH = 32


class SolverResult:
    """Outcome of one solve call."""

    __slots__ = ("status", "model", "nodes")

    def __init__(self, status, model=None, nodes=0):
        self.status = status
        self.model = model
        self.nodes = nodes

    @property
    def is_sat(self):
        return self.status == SAT

    def __repr__(self):
        return "SolverResult({}, model={}, nodes={})".format(
            self.status, self.model, self.nodes
        )


class _Budget:
    __slots__ = ("remaining",)

    def __init__(self, limit):
        self.remaining = limit

    def spend(self):
        self.remaining -= 1
        return self.remaining >= 0


class Solver:
    """Decides conjunctions of CmpExpr constraints over bounded integers."""

    def __init__(self, seed=0, node_budget=50_000, probe_samples=4):
        self._seed = seed
        self._node_budget = node_budget
        self._probe_samples = probe_samples

    @property
    def node_budget(self):
        """The default per-call node budget (for escalated retries)."""
        return self._node_budget

    def solve(self, constraints, domains=None, node_budget=None):
        """Solve ``constraints`` (iterable of CmpExpr).

        ``domains`` maps variable ordinals to (lo, hi); unmentioned
        variables default to signed int32.  ``node_budget`` overrides the
        solver's default budget for this one call (used by the DART
        engine's escalated retry after an ``unknown``).  Returns a
        :class:`SolverResult`; a SAT model assigns every variable that
        occurs in the constraints.
        """
        injector = fault_points.ACTIVE
        if injector is not None:
            # Fault seam: may raise InjectedSolverError, sleep (a slow
            # solve), or force an UNKNOWN verdict — the caller's
            # resilience paths (solve_with_retry) are the test subject.
            if injector.solver_call() == "unknown":
                return SolverResult(UNKNOWN)
        constraints = list(constraints)
        call_budget = self._node_budget if node_budget is None \
            else node_budget
        problem = normalize(constraints, domains or {})
        eliminate_equalities(problem)
        if problem.infeasible:
            return SolverResult(UNSAT)
        if refutes(problem.inequalities):
            # A rational Fourier-Motzkin contradiction (e.g. x < y < x)
            # refutes the integer system too.
            return SolverResult(UNSAT)
        search_domains = {
            var: list(bounds) for var, bounds in problem.domains.items()
        }
        # Ensure every remaining constraint variable has a domain entry.
        for lin in problem.inequalities + problem.disequalities:
            for var in lin.variables():
                if var not in search_domains:
                    search_domains[var] = list(
                        problem.domain(var)
                    )
        budget = _Budget(call_budget)
        rng = random.Random(self._seed)
        status, model = self._search(
            search_domains, problem.inequalities, problem.disequalities,
            budget, rng,
        )
        nodes = call_budget - budget.remaining
        if status != SAT:
            return SolverResult(status, nodes=nodes)
        complete_model(problem, model)
        if not self._verify(constraints, domains or {}, model):
            # Should not happen; degrade honestly rather than mislead DART.
            return SolverResult(UNKNOWN, nodes=nodes)
        return SolverResult(SAT, model, nodes=nodes)

    # -- search -------------------------------------------------------------

    def _search(self, domains, inequalities, disequalities, budget, rng):
        if not budget.spend():
            return UNKNOWN, None
        if not propagate(domains, inequalities, disequalities):
            return UNSAT, None
        undecided = [
            var for var, (lo, hi) in domains.items() if lo < hi
        ]
        if not undecided:
            model = {var: lo for var, (lo, hi) in domains.items()}
            if self._check(model, inequalities, disequalities):
                return SAT, model
            return UNSAT, None
        var = min(undecided, key=lambda v: domains[v][1] - domains[v][0])
        lo, hi = domains[var]
        width = hi - lo
        exhaustive = width < _ENUMERATE_WIDTH
        candidates = self._candidates(lo, hi, exhaustive, rng)
        saw_unknown = False
        for value in candidates:
            child = {
                v: (list(b) if v != var else [value, value])
                for v, b in domains.items()
            }
            status, model = self._search(
                child, inequalities, disequalities, budget, rng
            )
            if status == SAT:
                return SAT, model
            if status == UNKNOWN:
                saw_unknown = True
                if budget.remaining <= 0:
                    return UNKNOWN, None
        if exhaustive and not saw_unknown:
            return UNSAT, None
        return UNKNOWN, None

    def _candidates(self, lo, hi, exhaustive, rng):
        if exhaustive:
            return list(range(lo, hi + 1))
        picks = [lo, hi, lo + 1, hi - 1]
        if lo <= 0 <= hi:
            picks.append(0)
        picks.append(lo + (hi - lo) // 2)
        for _ in range(self._probe_samples):
            picks.append(rng.randint(lo, hi))
        seen = set()
        ordered = []
        for value in picks:
            if lo <= value <= hi and value not in seen:
                seen.add(value)
                ordered.append(value)
        return ordered

    @staticmethod
    def _check(model, inequalities, disequalities):
        for lin in inequalities:
            if lin.evaluate(model) > 0:
                return False
        for lin in disequalities:
            if lin.evaluate(model) == 0:
                return False
        return True

    @staticmethod
    def _verify(constraints, domains, model):
        for constraint in constraints:
            for var in constraint.variables():
                if var not in model:
                    return False
                lo, hi = domains.get(
                    var, (-(1 << 31), (1 << 31) - 1)
                )
                if not lo <= model[var] <= hi:
                    return False
            if not constraint.evaluate(model):
                return False
        return True
