"""Interval (bounds) propagation over ``lin <= 0`` constraints.

For a constraint ``sum(a_i * x_i) + c <= 0`` and a variable ``x_j``, every
solution satisfies

    a_j * x_j  <=  -c - min over domains of sum(a_i * x_i, i != j)

so values of ``x_j`` beyond the induced bound can be pruned.  Iterating to a
fixpoint (with a round cap against slow convergence) yields either a
refutation (an empty domain — UNSAT) or tightened domains for the search
phase.  Single-variable disequalities additionally shave domain endpoints.
"""


def _floor_div(a, b):
    return a // b


def _ceil_div(a, b):
    return -((-a) // b)


def propagate(domains, inequalities, disequalities, max_rounds=64):
    """Tighten ``domains`` in place.

    Returns True if consistent, False when a constraint is refuted
    (a proof of infeasibility over the integer domains).
    """
    for _ in range(max_rounds):
        changed = False
        for lin in inequalities:
            ok, this_changed = _propagate_one(domains, lin)
            if not ok:
                return False
            changed |= this_changed
        for lin in disequalities:
            ok, this_changed = _shave_disequality(domains, lin)
            if not ok:
                return False
            changed |= this_changed
        if not changed:
            return True
    return True


def _propagate_one(domains, lin):
    """Prune domains using one ``lin <= 0`` constraint -> (ok, changed)."""
    coeffs = lin.coeffs
    if not coeffs:
        return lin.const <= 0, False
    changed = False
    # Domain-minimal value of each term, kept in sync as bounds tighten.
    term_min = {}
    for var, coeff in coeffs.items():
        lo, hi = domains[var]
        term_min[var] = coeff * lo if coeff > 0 else coeff * hi
    total_min = lin.const + sum(term_min.values())
    if total_min > 0:
        return False, changed  # even the best case violates the constraint
    for var, coeff in coeffs.items():
        lo, hi = domains[var]
        others_min = total_min - term_min[var] - lin.const
        bound = -lin.const - others_min
        if coeff > 0:
            new_hi = _floor_div(bound, coeff)
            if new_hi < hi:
                if new_hi < lo:
                    return False, changed
                domains[var][1] = new_hi
                changed = True
        else:
            new_lo = _ceil_div(bound, coeff)
            if new_lo > lo:
                if new_lo > hi:
                    return False, changed
                domains[var][0] = new_lo
                changed = True
        if changed:
            lo, hi = domains[var]
            new_term_min = coeff * lo if coeff > 0 else coeff * hi
            total_min += new_term_min - term_min[var]
            term_min[var] = new_term_min
    return True, changed


def _shave_disequality(domains, lin):
    """Use a ``lin != 0`` constraint to refute or shave endpoint values."""
    variables = list(lin.coeffs)
    if not variables:
        return lin.const != 0, False
    if len(variables) > 1:
        return True, False  # multi-variable: handled by search + verify
    var = variables[0]
    coeff = lin.coeffs[var]
    if (-lin.const) % coeff != 0:
        return True, False  # the excluded point is not an integer: vacuous
    excluded = (-lin.const) // coeff
    lo, hi = domains[var]
    if excluded < lo or excluded > hi:
        return True, False
    if lo == hi:
        return False, False  # the only remaining value is excluded
    changed = False
    if excluded == lo:
        domains[var][0] = lo + 1
        changed = True
    elif excluded == hi:
        domains[var][1] = hi - 1
        changed = True
    return True, changed
