"""The linear integer constraint solver (the paper's lp_solve substitute).

Path constraints produced by the directed search are conjunctions of
:class:`repro.symbolic.expr.CmpExpr` over bounded integer input variables.
The solver decides them with

1. normalization to ``= 0`` / ``<= 0`` / ``!= 0`` forms
   (:mod:`repro.solver.problem`);
2. exact integer Gaussian elimination of equalities with divisibility
   checks (:mod:`repro.solver.problem`);
3. interval (bounds) propagation over the inequalities
   (:mod:`repro.solver.propagate`);
4. bounded backtracking search with candidate seeding for the remainder
   (:mod:`repro.solver.core`).

Results are never trusted blind: every model is *verified* against the
original constraints and domains before being returned.  Incompleteness is
reported as UNKNOWN, which the DART driver treats exactly like the paper
treats theorem-prover failure (Section 2.5): fall back to the concrete
world and keep searching.
"""

from repro.solver.cache import SolverResultCache
from repro.solver.core import Solver, SolverResult, SAT, UNSAT, UNKNOWN

__all__ = ["SAT", "Solver", "SolverResult", "SolverResultCache",
           "UNKNOWN", "UNSAT"]
