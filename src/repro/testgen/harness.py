"""The fuzz campaign driver behind ``repro fuzz``.

A campaign generates ``budget`` seeded random programs, runs the oracle
battery (:mod:`repro.testgen.oracles`) on each, and — on a divergence —
delta-debugs the triggering program (and, when the oracle carries one,
its input vector) before serializing a standalone repro file.

Repro files are JSON, self-contained (they embed the reduced source, so
they replay without the generator), and live under ``tests/corpus/``.
Once the underlying bug is fixed, the checked-in repro becomes a
regression test: :func:`replay_repro` re-runs the recorded oracle family
and must come back clean.
"""

import json
import os
import random
import time

from repro.testgen.generator import GeneratorOptions, generate_program
from repro.testgen.oracles import OracleBattery
from repro.testgen.reduce import reduce_inputs, reduce_program

#: Format tag for corpus files; bump on incompatible layout changes.
CORPUS_FORMAT = "dart-repro-fuzz-corpus-v1"


class FoundDivergence:
    """One shrunk divergence, ready to serialize or inspect."""

    def __init__(self, seed, index, oracle, detail, program,
                 inputs=None, kinds=None, comment="", reduced=True):
        self.seed = seed          # generator seed of the original program
        self.index = index        # campaign iteration that found it
        self.oracle = oracle
        self.detail = detail
        self.program = program    # FuzzProgram (shrunk) or None
        self.inputs = inputs
        self.kinds = kinds
        self.comment = comment
        self.reduced = reduced

    def to_dict(self):
        return {
            "format": CORPUS_FORMAT,
            "seed": self.seed,
            "index": self.index,
            "oracle": self.oracle,
            "detail": self.detail,
            "comment": self.comment,
            "reduced": self.reduced,
            "toplevel": self.program.toplevel if self.program else None,
            "statements": (self.program.statement_count()
                           if self.program else None),
            "source": self.program.render() if self.program else None,
            "inputs": self.inputs,
            "kinds": self.kinds,
        }

    def describe(self):
        size = (", {} stmt(s)".format(self.program.statement_count())
                if self.program else "")
        return "seed {} [{}] {}{}".format(
            self.seed, self.oracle, self.detail, size)


class FuzzReport:
    """What a campaign did: throughput counters plus every divergence."""

    def __init__(self, seed, budget):
        self.seed = seed
        self.budget = budget
        self.programs = 0
        self.divergences = []     # FoundDivergence
        self.repro_paths = []
        self.elapsed = 0.0
        self.counters = {}

    @property
    def ok(self):
        return not self.divergences

    def describe(self):
        lines = [
            "fuzz: seed {} -> {} program(s) in {:.1f}s, "
            "{} divergence(s)".format(
                self.seed, self.programs, self.elapsed,
                len(self.divergences)),
        ]
        interesting = {key: value for key, value in self.counters.items()
                       if value}
        if interesting:
            lines.append("oracles: " + ", ".join(
                "{} {}".format(key, value)
                for key, value in sorted(interesting.items())))
        for found in self.divergences:
            lines.append(" - " + found.describe())
        for path in self.repro_paths:
            lines.append(" > repro written: " + path)
        return "\n".join(lines)


class _ReproProgram:
    """Duck-typed stand-in for a FuzzProgram when replaying from source."""

    def __init__(self, source, toplevel, seed=None):
        self.seed = seed
        self.toplevel = toplevel
        self._source = source

    def render(self):
        return self._source


def _shrink(battery, program, divergence, reduce_budget):
    """Delta-debug one divergence; returns a FoundDivergence."""
    oracle = divergence.oracle

    def still_diverges(candidate):
        return bool(battery.check_named(candidate, oracle))

    reduced, comment = program, "unreduced"
    if still_diverges(program.clone()):
        reduced, tests = reduce_program(program, still_diverges,
                                        max_tests=reduce_budget)
        comment = "reduced from {} to {} statement(s) in {} test(s)".format(
            program.statement_count(), reduced.statement_count(), tests)
    inputs, kinds = divergence.inputs, divergence.kinds
    # Re-find the divergence on the reduced program so the recorded input
    # vector matches *its* input signature, then shrink the vector too.
    if oracle in ("determinism", "transparency"):
        fresh = battery.check_named(reduced, oracle)
        if fresh and fresh[0].inputs is not None:
            inputs, kinds = fresh[0].inputs, fresh[0].kinds

            def vector_diverges(candidate_values):
                return any(
                    div.oracle == oracle
                    for div in battery.check_transparency_vector(
                        reduced, candidate_values, kinds))

            inputs, _ = reduce_inputs(inputs, vector_diverges)
    return FoundDivergence(
        program.seed, battery.counters["programs"], oracle,
        divergence.detail, reduced, inputs, kinds, comment,
        reduced=(comment != "unreduced"))


def _repro_filename(found):
    return "seed{}_{}.json".format(found.seed, found.oracle)


def save_repro(directory, found):
    """Write one shrunk divergence as a standalone corpus file."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, _repro_filename(found))
    with open(path, "w") as handle:
        json.dump(found.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path):
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != CORPUS_FORMAT:
        raise ValueError("{}: not a {} file".format(path, CORPUS_FORMAT))
    return payload


def replay_repro(payload, oracle_opts=None):
    """Re-run a corpus entry's oracle family; [] means the bug stays fixed.

    ``payload`` is a dict from :func:`load_repro` or a path to one.
    """
    if isinstance(payload, str):
        payload = load_repro(payload)
    battery = OracleBattery(oracle_opts)
    program = _ReproProgram(payload["source"], payload["toplevel"],
                            payload.get("seed"))
    divergences = list(battery.check_named(program, payload["oracle"]))
    if (payload.get("inputs") and payload.get("kinds")
            and payload["oracle"] in ("determinism", "transparency")):
        divergences.extend(battery.check_transparency_vector(
            program, payload["inputs"], payload["kinds"]))
    return divergences


def run_campaign(seed=0, budget=200, time_budget=None, out_dir=None,
                 gen_opts=None, oracle_opts=None, parallel_every=25,
                 chaos_every=25, solver_fuzz=True, reduce_budget=400,
                 progress=None, stop_on_first=False):
    """Run one fuzz campaign; returns a :class:`FuzzReport`.

    ``parallel_every`` samples the expensive ``--jobs`` vs. serial
    comparison every Nth program (0 disables it); ``chaos_every`` does
    the same for the fault-containment probe (a clean vs. seeded-fault
    session pair, :func:`repro.faults.chaos.chaos_probe`).  ``progress``
    is an optional callback ``(index, report)`` invoked after each
    program.  ``stop_on_first`` ends the campaign at the first
    divergence (used by the injected-bug acceptance test, which only
    needs one).
    """
    rng = random.Random(seed)
    battery = OracleBattery(oracle_opts)
    gen_opts = gen_opts or GeneratorOptions()
    report = FuzzReport(seed, budget)
    started = time.monotonic()
    for index in range(budget):
        if time_budget is not None \
                and time.monotonic() - started > time_budget:
            break
        program_seed = rng.randrange(1 << 30)
        program = generate_program(random.Random(program_seed), gen_opts,
                                   seed=program_seed)
        parallel = bool(parallel_every) and index % parallel_every == 0 \
            and index > 0
        chaos = bool(chaos_every) and index % chaos_every == 0 \
            and index > 0
        divergences = battery.check(
            program, parallel=parallel, chaos=chaos,
            solver_rng=rng if solver_fuzz else None)
        report.programs += 1
        for divergence in divergences:
            found = _shrink(battery, program, divergence, reduce_budget)
            report.divergences.append(found)
            if out_dir is not None:
                report.repro_paths.append(save_repro(out_dir, found))
        if progress is not None:
            progress(index, report)
        if divergences and stop_on_first:
            break
    report.elapsed = time.monotonic() - started
    report.counters = dict(battery.counters)
    return report
