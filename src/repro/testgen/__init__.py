"""Differential fuzzing of the DART pipeline against itself.

The reproduction's throughput layers (constraint slicing, solver result
caching, the parallel generational search) are all claimed to be
*verdict-preserving* — but hand-written tests only pin that claim on a
handful of programs.  This package closes the gap the way industrial
concolic testers do (Coyote C++'s randomized self-testing, CTGEN's
independent oracle): it generates random well-typed mini-C programs,
runs the whole pipeline on them under several independent oracles, and
delta-debugs any divergence down to a standalone repro file.

* :mod:`repro.testgen.generator` — seeded random program generator
  (typed construction over ints/arrays/pointers/structs, bounded loops,
  helper calls, external inputs);
* :mod:`repro.testgen.oracles` — the differential oracle battery
  (instrumentation transparency, configuration invariance, solver model
  substitution + small-domain brute force, forcing replay);
* :mod:`repro.testgen.reduce` — statement-level delta debugging plus
  input-vector shrinking;
* :mod:`repro.testgen.harness` — the fuzz campaign driver behind
  ``repro fuzz`` and the ``tests/corpus/`` repro file format.
"""

from repro.testgen.generator import GeneratorOptions, generate_program
from repro.testgen.harness import (
    FuzzReport,
    load_repro,
    replay_repro,
    run_campaign,
    save_repro,
)
from repro.testgen.oracles import Divergence, OracleBattery, OracleOptions
from repro.testgen.reduce import reduce_inputs, reduce_program

__all__ = [
    "Divergence",
    "FuzzReport",
    "GeneratorOptions",
    "OracleBattery",
    "OracleOptions",
    "generate_program",
    "load_repro",
    "reduce_inputs",
    "reduce_program",
    "replay_repro",
    "run_campaign",
    "save_repro",
]
