"""Delta debugging for fuzzer-found divergences.

Two reducers, both driven by an *interestingness predicate* (does the
shrunk candidate still exhibit the same oracle divergence?):

* :func:`reduce_program` — greedy statement-level shrinking of a
  :class:`~repro.testgen.generator.FuzzProgram`: delete statements
  (largest subtree first), unwrap ``if``/loop bodies into their parent
  block, drop ``else`` branches, collapse loop bounds, drop helper
  functions, parameters and toplevel declarations.  Candidates that no
  longer compile are rejected by the predicate itself (the oracle battery
  treats a non-compiling candidate as "not interesting"), so every
  transformation can be attempted blindly.
* :func:`reduce_inputs` — shrinks a divergence-triggering input vector
  pointwise toward zero (ddmin over magnitudes), preserving the kind
  signature so the replayed trajectory stays well-typed.

Both are deterministic given a deterministic predicate and both cap the
number of predicate evaluations, since each evaluation can cost several
full DART sessions.
"""

from repro.testgen.generator import IfStmt, LoopStmt


def _resolve_block(program, func_idx, path):
    block = program.functions[func_idx].body
    for stmt_idx, block_idx in path:
        block = block[stmt_idx].blocks()[block_idx]
    return block


def _apply(program, op):
    """Apply one reduction op (in place) to a cloned program."""
    kind = op[0]
    if kind == "drop_func":
        del program.functions[op[1]]
        return
    if kind == "drop_struct":
        del program.structs[op[1]]
        return
    if kind == "drop_extern":
        del program.externs[op[1]]
        return
    if kind == "drop_param":
        del program.functions[op[1]].params[op[2]]
        return
    if kind == "zero_return":
        program.functions[op[1]].return_expr = "0"
        return
    _, func_idx, path, stmt_idx = op[:4]
    block = _resolve_block(program, func_idx, path)
    stmt = block[stmt_idx]
    if kind == "delete":
        del block[stmt_idx]
    elif kind == "unwrap":
        replacement = []
        for child in stmt.blocks():
            replacement.extend(child)
        block[stmt_idx:stmt_idx + 1] = replacement
    elif kind == "drop_else":
        stmt.els = None
    elif kind == "shrink_bound":
        stmt.bound = 1


def _enumerate_ops(program):
    """All candidate reductions, heaviest (most statements removed) first."""
    ops = []
    toplevel_idx = len(program.functions) - 1
    for func_idx, func in enumerate(program.functions):
        if func_idx != toplevel_idx:
            ops.append((func.count() + 2, ("drop_func", func_idx)))
        if func.return_expr != "0":
            ops.append((0, ("zero_return", func_idx)))
        for param_idx in range(len(func.params)):
            ops.append((0, ("drop_param", func_idx, param_idx)))
        stack = [((), func.body)]
        while stack:
            path, block = stack.pop()
            for stmt_idx, stmt in enumerate(block):
                weight = stmt.count()
                ops.append((weight, ("delete", func_idx, path, stmt_idx)))
                children = stmt.blocks()
                if children:
                    ops.append(
                        (1, ("unwrap", func_idx, path, stmt_idx)))
                if isinstance(stmt, IfStmt) and stmt.els is not None:
                    els_size = sum(child.count() for child in stmt.els)
                    ops.append(
                        (els_size, ("drop_else", func_idx, path, stmt_idx)))
                if isinstance(stmt, LoopStmt) and stmt.bound > 1:
                    ops.append(
                        (0, ("shrink_bound", func_idx, path, stmt_idx)))
                for block_idx, child in enumerate(children):
                    stack.append((path + ((stmt_idx, block_idx),), child))
    for idx in range(len(program.structs)):
        ops.append((1, ("drop_struct", idx)))
    for idx in range(len(program.externs)):
        ops.append((1, ("drop_extern", idx)))
    ops.sort(key=lambda entry: -entry[0])
    return [op for _, op in ops]


def reduce_program(program, predicate, max_tests=400):
    """Greedily shrink ``program`` while ``predicate`` stays true.

    ``predicate(candidate)`` must return True when the candidate still
    shows the original divergence (and False for candidates that fail to
    compile).  Returns ``(reduced_program, tests_used)``; the input
    program is never mutated.
    """
    current = program
    tests = 0
    improved = True
    while improved and tests < max_tests:
        improved = False
        for op in _enumerate_ops(current):
            if tests >= max_tests:
                break
            candidate = current.clone()
            _apply(candidate, op)
            tests += 1
            if predicate(candidate):
                # Accept and restart the scan: every remaining op's
                # coordinates went stale the moment the tree changed.
                current = candidate
                improved = True
                break
    return current, tests


def _toward_zero(value):
    return value // 2 if value > 0 else -((-value) // 2)


def reduce_inputs(values, predicate, max_tests=200):
    """Shrink an input vector pointwise toward zero.

    ``predicate(candidate_values)`` replays the (fixed) program on the
    candidate vector and reports whether the divergence persists.  The
    kind signature is the caller's responsibility and never changes.
    Returns ``(reduced_values, tests_used)``.
    """
    current = list(values)
    tests = 0
    changed = True
    while changed and tests < max_tests:
        changed = False
        for index, value in enumerate(current):
            if value == 0 or tests >= max_tests:
                continue
            candidates = [0]
            if abs(value) > 1:
                candidates.append(_toward_zero(value))
            for replacement in candidates:
                candidate = list(current)
                candidate[index] = replacement
                tests += 1
                if predicate(candidate):
                    current = candidate
                    changed = True
                    break
                if tests >= max_tests:
                    break
    return current, tests
