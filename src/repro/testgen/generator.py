"""Seeded random mini-C program generator.

Programs are built as a small statement tree (typed construction: every
expression site knows which in-scope variables it may read and how reads
must be guarded), then rendered to source text and compiled through the
ordinary front end — so the fuzzer exercises the lexer, parser, semantic
analyzer and lowering exactly like a hand-written program would.

Design constraints that keep the differential oracles meaningful:

* **Deterministic**: the program's behaviour is a function of its DART
  inputs alone (no unbounded recursion, no uninitialized reads).
* **Bounded**: every loop has a constant trip count and call graphs are
  acyclic, so whole-program path exploration terminates.
* **Mostly safe**: divisions are guarded, array indices are masked into
  range, pointer dereferences sit under NULL guards — faults still occur
  (``assert`` statements, and a small quota of deliberately unguarded
  dereferences) but they are *deterministic* faults both sides of every
  differential comparison must agree on.
* **Mostly linear**: conditions are predominantly linear comparisons so
  the directed search has something to chew on; nonlinear operators are
  mixed in at low probability to exercise the concrete fallback.

The statement tree is kept (not just the rendered text) so the
delta-debugging reducer can remove and unwrap nodes structurally; invalid
candidates (a removed declaration whose uses survive) are filtered by
recompiling.
"""

import copy

#: (C type syntax, DART input kind) for scalar parameters and locals.
_SCALAR_KINDS = (
    ("int", "int"),
    ("int", "int"),
    ("unsigned", "uint"),
    ("char", "char"),
    ("short", "short"),
)

#: Interesting constants, weighted toward small values.
_BOUNDARY_CONSTANTS = (127, 128, 255, 256, 32767, 1000, 65536, 2147483647)

#: Constants that exercise the widening layer: negatives (an unsigned
#: compare reads them as huge values) and INT_MAX-scale offsets (sums
#: wrap at 2³¹).
_WRAP_CONSTANTS = (-1, -28, -100, -32768, 1000000000, 2000000000,
                   2147483647)


class GeneratorOptions:
    """Size/feature knobs for one generated program."""

    def __init__(self, max_statements=18, max_block_depth=2,
                 max_expr_depth=3, max_loop_bound=3, max_conditionals=9,
                 allow_pointers=True, allow_structs=True,
                 allow_externals=True, fault_bias=0.2,
                 unsigned_bias=0.0):
        self.max_statements = max_statements
        self.max_block_depth = max_block_depth
        self.max_expr_depth = max_expr_depth
        self.max_loop_bound = max_loop_bound
        #: Soft cap on generated branch points (keeps path counts small
        #: enough for whole-program exploration to finish).
        self.max_conditionals = max_conditionals
        self.allow_pointers = allow_pointers
        self.allow_structs = allow_structs
        self.allow_externals = allow_externals
        #: Probability of including an assert (a reachable, deterministic
        #: fault for the verdict comparisons to agree on).
        self.fault_bias = fault_bias
        #: Probability weight steering generation toward the machine-
        #: integer widening layer: unsigned parameters, wrap-prone
        #: constants (negative values read through unsigned compares,
        #: INT_MAX-scale offsets) and overflow-shaped conditions.  0
        #: keeps the historical distribution.
        self.unsigned_bias = unsigned_bias


# ---------------------------------------------------------------------------
# Statement tree
# ---------------------------------------------------------------------------


class SimpleStmt:
    """A single-line statement (declaration, assignment, call, ...)."""

    def __init__(self, text):
        self.text = text

    def blocks(self):
        return []

    def render(self, indent, out):
        out.append("    " * indent + self.text)

    def count(self):
        return 1


class IfStmt:
    def __init__(self, cond, then, els=None):
        self.cond = cond
        self.then = then
        self.els = els  # list of statements or None

    def blocks(self):
        return [self.then] + ([self.els] if self.els is not None else [])

    def render(self, indent, out):
        pad = "    " * indent
        out.append("{}if ({}) {{".format(pad, self.cond))
        for stmt in self.then:
            stmt.render(indent + 1, out)
        if self.els is not None:
            out.append(pad + "} else {")
            for stmt in self.els:
                stmt.render(indent + 1, out)
        out.append(pad + "}")

    def count(self):
        total = 1
        for block in self.blocks():
            for stmt in block:
                total += stmt.count()
        return total


class LoopStmt:
    """``for (int VAR = 0; VAR < BOUND; VAR++) { ... }`` — constant trip
    count, so generated programs always terminate."""

    def __init__(self, var, bound, body, kind="for"):
        self.var = var
        self.bound = bound
        self.body = body
        self.kind = kind  # "for" or "while"

    def blocks(self):
        return [self.body]

    def render(self, indent, out):
        pad = "    " * indent
        if self.kind == "while":
            out.append("{}int {} = 0;".format(pad, self.var))
            out.append("{}while ({} < {}) {{".format(
                pad, self.var, self.bound))
            for stmt in self.body:
                stmt.render(indent + 1, out)
            out.append("{}    {} = {} + 1;".format(pad, self.var, self.var))
            out.append(pad + "}")
            return
        out.append("{}for (int {} = 0; {} < {}; {}++) {{".format(
            pad, self.var, self.var, self.bound, self.var))
        for stmt in self.body:
            stmt.render(indent + 1, out)
        out.append(pad + "}")

    def count(self):
        return 1 + sum(stmt.count() for stmt in self.body)


class FuncDef:
    def __init__(self, name, params, body, return_expr):
        #: list of (type syntax, name) — e.g. ("int *", "p0").
        self.name = name
        self.params = params
        self.body = body
        self.return_expr = return_expr

    def render(self, out):
        rendered = []
        for type_text, name in self.params:
            if type_text.endswith("*"):
                rendered.append("{}{}".format(type_text, name))
            else:
                rendered.append("{} {}".format(type_text, name))
        out.append("int {}({}) {{".format(
            self.name, ", ".join(rendered) if rendered else "void"))
        for stmt in self.body:
            stmt.render(1, out)
        out.append("    return {};".format(self.return_expr))
        out.append("}")

    def count(self):
        return sum(stmt.count() for stmt in self.body)


class FuzzProgram:
    """A generated program: structure plus rendering and reduction hooks."""

    def __init__(self, seed):
        self.seed = seed
        self.structs = []  # rendered struct definition lines
        self.externs = []  # rendered extern declarations / prototypes
        self.functions = []  # FuncDef, toplevel last
        self.toplevel = "f"
        self.uses_pointers = False

    def render(self):
        out = []
        out.extend(self.structs)
        out.extend(self.externs)
        for func in self.functions:
            func.render(out)
            out.append("")
        return "\n".join(out)

    def statement_count(self):
        return sum(func.count() for func in self.functions)

    def clone(self):
        return copy.deepcopy(self)

    def __repr__(self):
        return "FuzzProgram(seed={}, {} stmt(s))".format(
            self.seed, self.statement_count())


# ---------------------------------------------------------------------------
# Scope bookkeeping for typed construction
# ---------------------------------------------------------------------------


class _Scope:
    """What an expression site may read, and under which guards."""

    def __init__(self, parent=None):
        self.parent = parent
        self.ints = []        # (name, is_signed)
        self.arrays = []      # (name, length) — int arrays, always in range
        self.pointers = []    # int* names (possibly NULL)
        self.guarded = set()  # int* names proven non-NULL here
        self.struct_vals = []  # names of struct S0 values
        self.struct_ptrs = []  # names of struct S0 pointers
        self.guarded_struct = set()  # struct S0* names proven non-NULL
        self.mutable_ints = []  # int scalars assignment may target

    def child(self):
        child = _Scope(self)
        child.ints = list(self.ints)
        child.arrays = list(self.arrays)
        child.pointers = list(self.pointers)
        child.guarded = set(self.guarded)
        child.struct_vals = list(self.struct_vals)
        child.struct_ptrs = list(self.struct_ptrs)
        child.guarded_struct = set(self.guarded_struct)
        child.mutable_ints = list(self.mutable_ints)
        return child


class _FunctionBuilder:
    """Generates one function body with bounded size and branch count."""

    def __init__(self, gen, scope, allow_calls):
        self.gen = gen
        self.rng = gen.rng
        self.opts = gen.opts
        self.scope = scope
        self.allow_calls = allow_calls
        self.decl_counter = 0

    # -- expressions --------------------------------------------------------

    def constant(self):
        rng = self.rng
        if self.opts.unsigned_bias and \
                rng.random() < self.opts.unsigned_bias:
            value = rng.choice(_WRAP_CONSTANTS)
            return "({})".format(value) if value < 0 else str(value)
        if rng.random() < 0.15:
            return str(rng.choice(_BOUNDARY_CONSTANTS))
        return str(rng.randint(-40, 99))

    def _leaf(self, scope):
        rng = self.rng
        choices = ["const"]
        if scope.ints:
            choices += ["var"] * 4
        if scope.arrays:
            choices.append("array")
        if scope.guarded:
            choices.append("deref")
        if scope.struct_vals:
            choices.append("member")
        if scope.guarded_struct:
            choices.append("arrow")
        pick = rng.choice(choices)
        if pick == "var":
            return rng.choice(scope.ints)[0]
        if pick == "array":
            name, length = rng.choice(scope.arrays)
            index = self.int_expr(scope, 1)
            return "{}[({}) & {}]".format(name, index, length - 1)
        if pick == "deref":
            return "*{}".format(rng.choice(sorted(scope.guarded)))
        if pick == "member":
            return "{}.{}".format(
                rng.choice(scope.struct_vals),
                rng.choice(self.gen.struct_fields))
        if pick == "arrow":
            return "{}->{}".format(
                rng.choice(sorted(scope.guarded_struct)),
                rng.choice(self.gen.struct_fields))
        return self.constant()

    def int_expr(self, scope, depth=None):
        rng = self.rng
        if depth is None:
            depth = self.opts.max_expr_depth
        if depth <= 0 or rng.random() < 0.35:
            return self._leaf(scope)
        form = rng.random()
        left = self.int_expr(scope, depth - 1)
        if form < 0.45:  # linear arithmetic dominates
            op = rng.choice(("+", "-", "+", "-", "*"))
            if op == "*":
                return "({} * {})".format(left, rng.randint(-6, 7) or 2)
            return "({} {} {})".format(left, op,
                                       self.int_expr(scope, depth - 1))
        if form < 0.55:  # guarded division / modulo
            op = rng.choice(("/", "%"))
            divisor = rng.choice((3, 5, 7, 16, 64))
            return "({} {} {})".format(left, op, divisor)
        if form < 0.65:  # bit operations (concrete fallback paths)
            op = rng.choice(("&", "|", "^", ">>", "<<"))
            if op in (">>", "<<"):
                return "({} {} {})".format(left, op, rng.randint(1, 4))
            return "({} {} {})".format(left, op, rng.randint(0, 255))
        if form < 0.75 and self.allow_calls and self.gen.callables:
            return self.gen.call_expr(self, scope)
        if form < 0.85:  # comparison as 0/1 value
            return "({} {} {})".format(
                left, rng.choice(("<", ">", "==", "!=", "<=", ">=")),
                self.int_expr(scope, depth - 1))
        if form < 0.93:
            return "({} ? {} : {})".format(
                self.condition(scope), left, self.int_expr(scope, depth - 1))
        return "(-({}))".format(left)

    def condition(self, scope):
        rng = self.rng
        if self.opts.unsigned_bias and scope.ints and \
                rng.random() < self.opts.unsigned_bias:
            # Overflow-shaped: a variable pushed toward a wrap boundary,
            # compared against a wrap-prone constant.  These conditions
            # are exactly the ones the ideal-integer reading misstates,
            # so a biased campaign measures the widening funnel.
            name = rng.choice(scope.ints)[0]
            offset = rng.choice((20, 1000, 1000000000, 2000000000,
                                 2147483647))
            return "{} + {} {} {}".format(
                name, offset, rng.choice(("<", ">", "<=", ">=")),
                self.constant())
        pick = rng.random()
        if pick < 0.6:  # linear comparison — the directed search's food
            left = self._leaf(scope)
            right = self.constant() if rng.random() < 0.5 \
                else self._leaf(scope)
            return "{} {} {}".format(
                left, rng.choice(("<", ">", "==", "!=", "<=", ">=")), right)
        if pick < 0.75:
            return "{} {} {}".format(
                self.int_expr(scope, 2),
                rng.choice(("<", ">", "==", "!=")),
                self.int_expr(scope, 2))
        if pick < 0.85:  # parity / mask tests (nonlinear fallback)
            return "({} & {}) {} 0".format(
                self._leaf(scope), rng.choice((1, 3, 7)),
                rng.choice(("==", "!=")))
        combiner = rng.choice(("&&", "||"))
        return "{} {} {}".format(
            self.condition(scope), combiner, self.condition(scope))

    # -- statements ---------------------------------------------------------

    def fresh_local(self):
        name = "v{}".format(self.gen.next_local())
        return name

    def block(self, scope, budget, depth):
        statements = []
        while budget > 0:
            stmt, cost = self.statement(scope, budget, depth)
            if stmt is None:
                break
            statements.append(stmt)
            budget -= max(cost, 1)
            if self.rng.random() < 0.12:
                break
        return statements

    def statement(self, scope, budget, depth):
        rng = self.rng
        choices = ["decl", "decl", "assign", "assign"]
        if depth < self.opts.max_block_depth and budget >= 2 \
                and self.gen.conditionals < self.opts.max_conditionals:
            choices += ["if", "if"]
            if rng.random() < 0.35:
                choices.append("loop")
            if scope.pointers and self.opts.allow_pointers:
                choices.append("guard")
        if scope.mutable_ints:
            choices.append("printf")
        if scope.guarded:
            choices.append("store")
        if rng.random() < self.opts.fault_bias \
                and self.gen.conditionals < self.opts.max_conditionals:
            choices.append("assert")
        pick = rng.choice(choices)
        if pick == "decl":
            name = self.fresh_local()
            if rng.random() < 0.15:
                length = rng.choice((2, 4, 8))
                fill = "i{}".format(self.gen.next_local())
                decl = SimpleStmt("int {}[{}];".format(name, length))
                # Fill every cell before the array is readable, so no
                # generated expression ever reads an unwritten cell.
                init = LoopStmt(fill, length, [SimpleStmt(
                    "{}[{}] = {};".format(name, fill,
                                          self.int_expr(scope, 1)))])
                scope.arrays.append((name, length))
                return _Seq([decl, init]), 2
            text = "int {} = {};".format(name, self.int_expr(scope))
            scope.ints.append((name, True))
            scope.mutable_ints.append(name)
            return SimpleStmt(text), 1
        if pick == "assign":
            if not scope.mutable_ints:
                return SimpleStmt(";"), 1
            target = rng.choice(scope.mutable_ints)
            op = rng.choice(("=", "=", "=", "+=", "-=", "^=", "*="))
            return SimpleStmt("{} {} {};".format(
                target, op, self.int_expr(scope))), 1
        if pick == "store":
            target = rng.choice(sorted(scope.guarded))
            return SimpleStmt("*{} = {};".format(
                target, self.int_expr(scope))), 1
        if pick == "printf":
            return SimpleStmt('printf("%d ", {});'.format(
                self.int_expr(scope, 2))), 1
        if pick == "assert":
            self.gen.conditionals += 1
            return SimpleStmt("assert({});".format(self.condition(scope))), 1
        if pick == "guard":
            # NULL guard: dereferences become legal inside the then-branch.
            candidates = scope.pointers + scope.struct_ptrs
            pointer = rng.choice(candidates)
            self.gen.conditionals += 1
            inner = scope.child()
            if pointer in scope.struct_ptrs:
                inner.guarded_struct.add(pointer)
                fallback = "{}->{} = {};".format(
                    pointer, rng.choice(self.gen.struct_fields),
                    self.int_expr(inner, 1))
            else:
                inner.guarded.add(pointer)
                fallback = "*{} = {};".format(
                    pointer, self.int_expr(inner, 1))
            then = self.block(inner, max(budget - 1, 1), depth + 1)
            if not then:
                then = [SimpleStmt(fallback)]
            return IfStmt("{} != 0".format(pointer), then), \
                1 + sum(s.count() for s in then)
        if pick == "if":
            self.gen.conditionals += 1
            cond = self.condition(scope)
            then = self.block(scope.child(), max(budget // 2, 1), depth + 1)
            if not then:
                then = [SimpleStmt(";")]
            els = None
            if rng.random() < 0.4:
                els = self.block(scope.child(), max(budget // 3, 1),
                                 depth + 1)
                if not els:
                    els = None
            node = IfStmt(cond, then, els)
            return node, node.count()
        if pick == "loop":
            var = "i{}".format(self.gen.next_local())
            bound = rng.randint(1, self.opts.max_loop_bound)
            inner = scope.child()
            inner.ints.append((var, True))
            body = self.block(inner, max(budget // 2, 1), depth + 1)
            if not body:
                body = [SimpleStmt(";")]
            kind = "while" if rng.random() < 0.25 else "for"
            node = LoopStmt(var, bound, body, kind)
            return node, node.count()
        return SimpleStmt(";"), 1


class _Seq:
    """A statement group that renders flat (array decl + fill loop)."""

    def __init__(self, statements):
        self.statements = statements

    def blocks(self):
        return [self.statements]

    def render(self, indent, out):
        for stmt in self.statements:
            stmt.render(indent, out)

    def count(self):
        return sum(stmt.count() for stmt in self.statements)


# ---------------------------------------------------------------------------
# Program generator
# ---------------------------------------------------------------------------


class _ProgramGenerator:
    struct_fields = ("a", "b")

    def __init__(self, rng, opts):
        self.rng = rng
        self.opts = opts
        self.local_counter = 0
        self.conditionals = 0
        self.callables = []  # (name, arity) of helpers + externals
        self.program = None

    def next_local(self):
        self.local_counter += 1
        return self.local_counter

    def call_expr(self, builder, scope):
        name, arity = self.rng.choice(self.callables)
        args = ", ".join(builder.int_expr(scope, 1) for _ in range(arity))
        return "{}({})".format(name, args)

    def generate(self, seed):
        rng = self.rng
        opts = self.opts
        program = FuzzProgram(seed)
        self.program = program
        use_struct = opts.allow_structs and rng.random() < 0.35
        if use_struct:
            program.structs.append(
                "struct S0 { int a; short b; };")
        if opts.allow_externals and rng.random() < 0.3:
            program.externs.append("int ext0(int x);")
            self.callables.append(("ext0", 1))
        if opts.allow_externals and rng.random() < 0.2:
            program.externs.append("extern int g0;")

        # Helper functions (acyclic: each may call only earlier ones).
        for index in range(rng.randint(0, 2)):
            name = "h{}".format(index)
            arity = rng.randint(1, 3)
            params = [("int", "a{}".format(i)) for i in range(arity)]
            scope = _Scope()
            for _, pname in params:
                scope.ints.append((pname, True))
                scope.mutable_ints.append(pname)
            builder = _FunctionBuilder(self, scope, allow_calls=True)
            body = builder.block(scope, rng.randint(1, 4), depth=1)
            ret = builder.int_expr(scope, 2)
            program.functions.append(FuncDef(name, params, body, ret))
            self.callables.append((name, arity))

        # Toplevel parameters: the program's external inputs.
        params = []
        scope = _Scope()
        for index in range(rng.randint(1, 4)):
            roll = rng.random()
            name = "p{}".format(index)
            if opts.allow_pointers and roll < 0.2:
                params.append(("int *", name))
                scope.pointers.append(name)
                program.uses_pointers = True
            elif use_struct and roll < 0.3:
                params.append(("struct S0", name))
                scope.struct_vals.append(name)
            elif use_struct and opts.allow_pointers and roll < 0.38:
                params.append(("struct S0 *", name))
                scope.struct_ptrs.append(name)
                program.uses_pointers = True
            else:
                if opts.unsigned_bias and rng.random() < opts.unsigned_bias:
                    type_text = "unsigned"
                else:
                    type_text, _ = rng.choice(_SCALAR_KINDS)
                params.append((type_text, name))
                scope.ints.append((name, type_text != "unsigned"))
        if "extern int g0;" in program.externs:
            scope.ints.append(("g0", True))

        builder = _FunctionBuilder(self, scope, allow_calls=True)
        body = builder.block(scope, opts.max_statements, depth=0)
        ret = builder.int_expr(scope, 2)
        program.functions.append(
            FuncDef(program.toplevel, params, body, ret))
        return program


def generate_program(rng, opts=None, seed=None):
    """Generate one random program; ``rng`` drives every choice.

    ``seed`` is recorded on the program for repro bookkeeping only.
    """
    opts = opts or GeneratorOptions()
    return _ProgramGenerator(rng, opts).generate(seed)
