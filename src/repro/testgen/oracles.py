"""The differential oracle battery.

Four independent ways the pipeline can contradict itself, each checked on
every generated program:

1. **Instrumentation transparency** — the same input vector is executed
   three times: concretely (no symbolic tracking), concretely again (VM
   determinism), and with full symbolic instrumentation.  All observable
   concrete state (fault, return value, printf output, step count, branch
   trace) must be identical: maintaining ``S`` beside ``M`` must never
   perturb ``M``.
2. **Configuration invariance** — the same program is searched with
   constraint slicing on/off, the solver result cache on/off, and
   (sampled) ``--jobs 4`` vs. serial.  Whenever two sessions both reach a
   *definitive* verdict (complete exploration), their verdict, error set
   and branch coverage must agree — the PR 2 layers are claimed
   verdict-preserving, and this is the claim's enforcement.  Any
   ``internal-error`` quarantine in any session is a harness bug and is
   reported regardless.
3. **Solver models** — every SAT model returned inside a session is
   re-checked by substitution into the original constraints (independent
   of the solver's own verification), and small-domain constraint systems
   are fuzzed directly against brute-force enumeration, with and without
   the result cache in front.
4. **Forcing replay** — a directed micro-loop replays every
   solver-suggested input vector and checks it satisfies the *full*
   non-concrete path-constraint prefix plus the negated conjunct (the
   slicing soundness invariant).  A runtime prediction mismatch falls
   back to the paper's ``forcing_ok`` restart semantics — mismatches are
   an expected consequence of the documented under-approximations (value
   casts, wrap-around), not divergences; an input vector that violates
   the very constraints the solver claimed to satisfy *is* one.
5. **Engine differential** — every transparency vector is additionally
   replayed under the compiled execution engine, both concretely and
   with full symbolic instrumentation, and must reproduce the
   interpreter's observation field-for-field (including the count of
   symbolically-tracked instructions on the instrumented side).  The
   configuration-invariance matrix also runs one whole session with
   ``compiled_execution=False``, so a lowering bug that only shows up
   across a full directed search (not a single vector) is caught as a
   verdict/coverage disagreement.

**Soundness.** Every oracle compares two independent derivations of the
same fact (two executions, two configurations, a model vs. its
constraints), so a report is a genuine contradiction in the pipeline,
never a property of the generator — and the shrinker re-checks the same
oracle after every reduction step, so a minimized repro still witnesses
the original divergence.
"""

import itertools
import random

from repro.dart.config import DartOptions
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import BUG_FOUND, COMPLETE, RunStats
from repro.dart.runner import Dart
from repro.dart.solve import solve_path_constraint, solve_with_retry
from repro.interp.compile import CompiledProgram
from repro.interp.faults import ExecutionFault
from repro.interp.machine import Machine, MachineOptions
from repro.minic.errors import MiniCError
from repro.solver import Solver, SolverResultCache
from repro.symbolic.expr import CmpExpr, EQ, GE, GT, LE, LT, LinExpr, NE
from repro.symbolic.flags import CompletenessFlags
from repro.symbolic.widen import WidenedCmp


class Divergence:
    """One oracle violation, with enough context to shrink and replay."""

    def __init__(self, oracle, detail, inputs=None, kinds=None):
        #: Which oracle fired: "determinism", "transparency", "engine",
        #: "config", "quarantine", "substitution", "solver" or "chaos".
        self.oracle = oracle
        self.detail = detail
        #: The triggering input vector, when the oracle has one.
        self.inputs = list(inputs) if inputs is not None else None
        self.kinds = list(kinds) if kinds is not None else None

    def describe(self):
        text = "[{}] {}".format(self.oracle, self.detail)
        if self.inputs is not None:
            text += " (inputs {})".format(self.inputs)
        return text

    def __repr__(self):
        return "Divergence({!r})".format(self.describe())


class OracleOptions:
    """Budgets for one program's oracle battery."""

    def __init__(self, vectors=3, dart_iterations=120, forcing_iterations=24,
                 max_steps=300_000, parallel_jobs=4, solver_systems=2):
        #: Random input vectors per program for the transparency oracle.
        self.vectors = vectors
        #: Run budget for each configuration-invariance session.
        self.dart_iterations = dart_iterations
        #: Directed runs of the forcing/substitution micro-loop.
        self.forcing_iterations = forcing_iterations
        self.max_steps = max_steps
        self.parallel_jobs = parallel_jobs
        #: Small-domain systems fed to the brute-force solver check.
        self.solver_systems = solver_systems


class _FixedHooks:
    """Concrete replay of a recorded input vector; symbolic stays dark."""

    def __init__(self, im):
        self.im = im
        self._next_ordinal = 0

    def acquire_input(self, kind):
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        value = self.im.value_or_none(ordinal, kind)
        return (value if value is not None else 0), None

    def on_branch(self, taken, constraint, location):
        pass


class _RecordingHooks:
    """Concrete execution that draws fresh random inputs and records them."""

    def __init__(self, im, rng):
        self.im = im
        self._rng = rng
        self._next_ordinal = 0

    def acquire_input(self, kind):
        from repro.dart.inputs import random_value

        ordinal = self._next_ordinal
        self._next_ordinal += 1
        value = self.im.value_or_none(ordinal, kind)
        if value is None:
            value = random_value(kind, self._rng)
            self.im.record(ordinal, kind, value)
        return value, None

    def on_branch(self, taken, constraint, location):
        pass


class _CheckingSolver:
    """Delegating solver proxy that re-verifies every SAT model by
    substitution — independently of the solver's internal ``_verify``."""

    def __init__(self, inner, violations):
        self._inner = inner
        self.violations = violations

    @property
    def node_budget(self):
        return self._inner.node_budget

    def solve(self, constraints, domains=None, node_budget=None):
        constraints = list(constraints)
        result = self._inner.solve(constraints, domains,
                                   node_budget=node_budget)
        if result.is_sat:
            problem = _substitution_error(constraints, domains or {},
                                          result.model)
            if problem is not None:
                self.violations.append(problem)
        return result

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _substitution_error(constraints, domains, model):
    """Why ``model`` fails ``constraints`` under ``domains``, or None."""
    for constraint in constraints:
        for var in constraint.variables():
            if var not in model:
                return "model omits x{} of {!r}".format(var, constraint)
            lo, hi = domains.get(var, (-(1 << 31), (1 << 31) - 1))
            if not lo <= model[var] <= hi:
                return "x{}={} outside [{}, {}]".format(
                    var, model[var], lo, hi)
        if not constraint.evaluate(model):
            return "model {} violates {!r}".format(model, constraint)
    return None


class _Observation:
    """Everything observable about one concrete execution.

    ``symbolic_steps`` rides along for the engine-differential oracle but
    is excluded from :meth:`diff`: the transparency oracle compares dark
    (0) against instrumented (>0) runs, where it differs by design.
    """

    _COMPARED = ("fault", "value", "output", "steps", "branches", "trace")
    __slots__ = _COMPARED + ("symbolic_steps",)

    def __init__(self, fault, value, output, steps, branches, trace,
                 symbolic_steps=0):
        self.fault = fault        # (kind, location text) or None
        self.value = value        # concrete return value (None on fault)
        self.output = output      # captured printf bytes
        self.steps = steps
        self.branches = branches  # branches_executed
        self.trace = trace        # frozenset of covered branch directions
        self.symbolic_steps = symbolic_steps

    def diff(self, other):
        """First observable difference against ``other``, or None."""
        for field in self._COMPARED:
            mine, theirs = getattr(self, field), getattr(other, field)
            if mine != theirs:
                return "{}: {!r} != {!r}".format(field, mine, theirs)
        return None


class OracleBattery:
    """Runs the oracle suite against one generated program at a time."""

    def __init__(self, opts=None):
        self.opts = opts or OracleOptions()
        self.counters = {
            "programs": 0, "vectors": 0, "dart_sessions": 0,
            "definitive_pairs": 0, "skipped_pairs": 0,
            "forcing_mismatches": 0, "plans_checked": 0,
            "solver_systems": 0, "solver_unknown": 0,
            "parallel_sessions": 0, "chaos_probes": 0,
            "engine_runs": 0,
            "conjuncts_widened": 0, "conjuncts_dropped_unfaithful": 0,
        }
        #: One compiled lowering per module (keyed by identity): every
        #: engine-differential run of the same program reuses it, which
        #: is itself part of the property — lowering is stateless.
        self._compiled_cache = None

    # -- shared plumbing ----------------------------------------------------

    def _machine_options(self):
        return MachineOptions(max_steps=self.opts.max_steps)

    def _dart_options(self, **overrides):
        base = dict(
            max_iterations=self.opts.dart_iterations,
            stop_on_first_error=False,
            max_steps=self.opts.max_steps,
            handle_signals=False,
            seed=0,
        )
        base.update(overrides)
        return DartOptions(**base)

    def _observe(self, module, hooks, compiled=None):
        machine = Machine(module, self._machine_options(), hooks,
                          CompletenessFlags(), compiled=compiled)
        fault = None
        value = None
        try:
            value = machine.run(DRIVER_ENTRY)
        except ExecutionFault as caught:
            fault = (caught.kind, str(caught.location))
        return _Observation(
            fault, value, b"".join(machine.output), machine.steps,
            machine.branches_executed, frozenset(machine.covered_branches),
            machine.symbolic_steps,
        )

    def _compiled(self, module):
        cached = self._compiled_cache
        if cached is None or cached.module is not module:
            self._compiled_cache = cached = CompiledProgram(module)
        return cached

    # -- oracle 1: instrumentation transparency -----------------------------

    def check_transparency(self, program, module=None):
        if module is None:
            module = build_test_program(program.render(), program.toplevel)
        divergences = []
        for vector in range(self.opts.vectors):
            rng = random.Random(
                (program.seed or 0) * 1_000_003 + 7919 * vector)
            im = InputVector()
            baseline = self._observe(module, _RecordingHooks(im, rng))
            self.counters["vectors"] += 1
            values = im.values()
            kinds = [slot.kind for slot in im]
            divergences.extend(self.check_transparency_vector(
                program, values, kinds, module=module, baseline=baseline))
            if divergences:
                break
        return divergences

    def check_transparency_vector(self, program, values, kinds,
                                  module=None, baseline=None):
        """Transparency + determinism oracles on one explicit vector."""
        if module is None:
            module = build_test_program(program.render(), program.toplevel)
        im = InputVector()
        for ordinal, value in enumerate(values):
            im.record(ordinal, kinds[ordinal], value)
        if baseline is None:
            baseline = self._observe(module, _FixedHooks(im.clone()))
        divergences = []
        again = self._observe(module, _FixedHooks(im.clone()))
        delta = baseline.diff(again)
        if delta is not None:
            divergences.append(Divergence(
                "determinism",
                "two concrete runs of one input vector differ: " + delta,
                values, kinds))
        instrumented = self._observe(module, DirectedHooks(
            im.clone(), [], CompletenessFlags(), random.Random(0),
            self._dart_options()))
        delta = baseline.diff(instrumented)
        if delta is not None:
            divergences.append(Divergence(
                "transparency",
                "symbolic instrumentation perturbed concrete state: "
                + delta, values, kinds))
        divergences.extend(self._check_engines(
            module, im, baseline, instrumented, values, kinds))
        return divergences

    # -- oracle 5: engine differential --------------------------------------

    def _check_engines(self, module, im, baseline, instrumented,
                       values, kinds):
        """Replay one vector under the compiled engine, dark and
        instrumented; both runs must reproduce the interpreter's
        observation exactly (the lowering's bit-identity invariant), and
        the instrumented replay doubles as the transparency oracle with
        the compiled engine as the instrumented side."""
        compiled = self._compiled(module)
        divergences = []
        self.counters["engine_runs"] += 2
        concrete = self._observe(module, _FixedHooks(im.clone()),
                                 compiled=compiled)
        delta = baseline.diff(concrete)
        if delta is not None:
            divergences.append(Divergence(
                "engine",
                "compiled concrete execution diverges from the "
                "interpreter: " + delta, values, kinds))
        replay = self._observe(module, DirectedHooks(
            im.clone(), [], CompletenessFlags(), random.Random(0),
            self._dart_options()), compiled=compiled)
        delta = baseline.diff(replay)
        if delta is None \
                and replay.symbolic_steps != instrumented.symbolic_steps:
            delta = "symbolic_steps: {!r} != {!r}".format(
                replay.symbolic_steps, instrumented.symbolic_steps)
        if delta is not None:
            divergences.append(Divergence(
                "engine",
                "compiled instrumented execution diverges from the "
                "interpreter: " + delta, values, kinds))
        return divergences

    # -- oracle 2: configuration invariance ---------------------------------

    def _session(self, program, check_models=True, **overrides):
        dart = Dart(program.render(), program.toplevel,
                    self._dart_options(**overrides))
        violations = []
        if check_models and overrides.get("jobs", 1) == 1:
            dart.solver = _CheckingSolver(dart.solver, violations)
        result = dart.run()
        self.counters["dart_sessions"] += 1
        self.counters["conjuncts_widened"] += \
            result.stats.conjuncts_widened
        self.counters["conjuncts_dropped_unfaithful"] += \
            result.stats.conjuncts_dropped_unfaithful
        return result, violations

    def _definitive(self, result):
        """True when the session finished its whole-program exploration
        (so its verdict and error set are semantic facts, not budget
        artifacts)."""
        if result.status == COMPLETE:
            return True
        return (result.status == BUG_FOUND and all(result.flags)
                and result.stats.iterations < self.opts.dart_iterations)

    @staticmethod
    def _error_keys(result):
        return sorted((error.kind, str(error.location))
                      for error in result.errors)

    def _compare_sessions(self, label_a, a, label_b, b):
        divergences = []
        if self._definitive(a) and self._definitive(b):
            self.counters["definitive_pairs"] += 1
            if a.status != b.status:
                divergences.append(Divergence("config", (
                    "verdict differs: {}={} vs {}={}"
                ).format(label_a, a.status, label_b, b.status)))
            if self._error_keys(a) != self._error_keys(b):
                divergences.append(Divergence("config", (
                    "error sets differ: {}={} vs {}={}"
                ).format(label_a, self._error_keys(a),
                         label_b, self._error_keys(b))))
            if a.stats.covered_branches != b.stats.covered_branches:
                missing = a.stats.covered_branches \
                    ^ b.stats.covered_branches
                divergences.append(Divergence("config", (
                    "branch coverage differs between {} and {} "
                    "(symmetric difference {})"
                ).format(label_a, label_b, sorted(missing)[:4])))
        else:
            self.counters["skipped_pairs"] += 1
        return divergences

    def _quarantine_divergences(self, label, result):
        divergences = []
        for record in result.stats.quarantined:
            if record.classification == "internal-error":
                divergences.append(Divergence(
                    "quarantine",
                    "{}: internal error escaped the machine: {}".format(
                        label, record.detail),
                    record.inputs, record.kinds))
        return divergences

    def check_config_invariance(self, program):
        sessions = {}
        divergences = []
        for label, overrides in (
            ("base", {}),
            ("noslice", {"constraint_slicing": False}),
            ("nocache", {"solver_cache": False}),
            ("nocompile", {"compiled_execution": False}),
            ("nosubsume", {"subsumption": False}),
        ):
            result, violations = self._session(program, **overrides)
            sessions[label] = result
            divergences.extend(self._quarantine_divergences(label, result))
            for violation in violations:
                divergences.append(Divergence(
                    "solver", "{}: {}".format(label, violation)))
        base = sessions["base"]
        for label in ("noslice", "nocache", "nocompile", "nosubsume"):
            divergences.extend(
                self._compare_sessions("base", base, label, sessions[label]))
        return divergences

    def check_parallel_invariance(self, program):
        """Serial vs. ``jobs=N`` generational search (sampled: process
        pools are expensive, and the property is config-independent)."""
        divergences = []
        serial, _ = self._session(program, strategy="bfs")
        parallel, _ = self._session(
            program, strategy="bfs", jobs=self.opts.parallel_jobs,
            check_models=False)
        self.counters["parallel_sessions"] += 1
        divergences.extend(self._quarantine_divergences("serial", serial))
        divergences.extend(
            self._quarantine_divergences("parallel", parallel))
        divergences.extend(
            self._compare_sessions("serial", serial, "jobs", parallel))
        return divergences

    # -- oracle 3: solver vs. brute force -----------------------------------

    _OPS = (EQ, NE, LT, LE, GT, GE)

    def check_constraint_fuzz(self, rng, systems=None):
        """Random small-domain systems: solver vs. exhaustive enumeration,
        then the same query through the result cache."""
        divergences = []
        solver = Solver(seed=rng.randrange(1 << 30))
        cache = SolverResultCache()
        for _ in range(systems or self.opts.solver_systems):
            self.counters["solver_systems"] += 1
            nvars = rng.randint(1, 3)
            domains = {}
            for var in range(nvars):
                a, b = rng.randint(-4, 4), rng.randint(-4, 4)
                domains[var] = (min(a, b), max(a, b))
            constraints = []
            for _ in range(rng.randint(1, 4)):
                coeffs = {var: rng.randint(-3, 3) for var in range(nvars)}
                constraints.append(CmpExpr(
                    rng.choice(self._OPS),
                    LinExpr(coeffs, rng.randint(-6, 6))))
            satisfiable = self._brute_force(constraints, domains)
            result = solver.solve(constraints, domains)
            divergences.extend(self._judge_solver_answer(
                "solver", constraints, domains, result, satisfiable))
            # The same query twice through the cache front end: the second
            # answer comes from the cache and must not change the verdict.
            stats = RunStats()
            solve_with_retry(solver, constraints, domains, stats,
                             cache=cache)
            cached = solve_with_retry(solver, constraints, domains, stats,
                                      cache=cache)
            divergences.extend(self._judge_solver_answer(
                "cache", constraints, domains, cached, satisfiable))
            if divergences:
                break
        return divergences

    @staticmethod
    def _brute_force(constraints, domains):
        spans = [range(lo, hi + 1) for _, (lo, hi) in sorted(domains.items())]
        names = sorted(domains)
        for values in itertools.product(*spans):
            model = dict(zip(names, values))
            if all(c.evaluate(model) for c in constraints):
                return True
        return False

    def _judge_solver_answer(self, label, constraints, domains, result,
                             satisfiable):
        if result.status == "unknown":
            self.counters["solver_unknown"] += 1
            return []
        if result.is_sat:
            problem = _substitution_error(constraints, domains, result.model)
            if problem is not None:
                return [Divergence("solver", "{}: {}".format(label, problem))]
            if not satisfiable:
                return [Divergence("solver", (
                    "{}: SAT with model {} but brute force proves UNSAT "
                    "over {}"
                ).format(label, result.model, domains))]
            return []
        if satisfiable:
            return [Divergence("solver", (
                "{}: UNSAT claimed but brute force finds a model "
                "for {!r} over {}"
            ).format(label, constraints, domains))]
        return []

    # -- oracle 4: forcing replay + full-prefix substitution ----------------

    def check_forcing(self, program, module=None):
        if module is None:
            module = build_test_program(program.render(), program.toplevel)
        options = self._dart_options()
        solver = Solver(seed=0)
        cache = SolverResultCache()
        flags = CompletenessFlags()
        stats = RunStats()
        rng = random.Random(program.seed if program.seed is not None else 0)
        im, stack = InputVector(), []
        for _ in range(self.opts.forcing_iterations):
            hooks = DirectedHooks(im, stack, flags, rng, options)
            machine = Machine(module, self._machine_options(), hooks, flags)
            mismatched = False
            try:
                machine.run(DRIVER_ENTRY)
            except ForcingMismatch:
                mismatched = True
            except ExecutionFault:
                pass
            if mismatched:
                # The paper's graceful degradation: restart the directed
                # search from a fresh random input vector.
                self.counters["forcing_mismatches"] += 1
                flags = CompletenessFlags()
                im, stack = InputVector(), []
                continue
            plan = solve_path_constraint(
                hooks.record, hooks.finished_stack(), im, solver, "dfs",
                rng, flags, stats, escalation=2, cache=cache, slicing=True)
            if plan is None:
                break
            problem = self._check_plan(hooks.record.constraints, plan)
            if problem is not None:
                return [Divergence(
                    "substitution", problem,
                    plan.im.values(), [slot.kind for slot in plan.im])]
            im, stack = plan.im, plan.stack
        return []

    def _check_plan(self, constraints, plan):
        """The slicing soundness invariant, checked by pure arithmetic:
        the next input vector must satisfy every non-concrete conjunct of
        the executed prefix *and* the negated target conjunct."""
        self.counters["plans_checked"] += 1
        flip = len(plan.stack) - 1
        assignment = dict(enumerate(plan.im.values()))
        for index in range(flip):
            conjunct = constraints[index]
            if conjunct is not None and not conjunct.evaluate(assignment):
                return ("planned inputs violate prefix conjunct {} "
                        "({!r})").format(index, conjunct)
            problem = self._wrapped_semantics_error(index, conjunct,
                                                    assignment)
            if problem is not None:
                return problem
        flip_target = constraints[flip]
        if isinstance(flip_target, WidenedCmp):
            # The flip may have been solved in any wrap window (see
            # repro.symbolic.widen.negation_candidates), so the anchored
            # negation need not hold over the ideal integers.  The
            # encoding-independent requirement is that the planned inputs
            # falsify the original conjunct under wrapped machine
            # semantics — then the machine takes the other branch.
            if flip_target.machine_verdict(assignment):
                return ("planned inputs do not flip widened conjunct {} "
                        "({!r}) under wrapped machine semantics"
                        ).format(flip, flip_target)
            return None
        negated = flip_target.negate()
        if not negated.evaluate(assignment):
            return ("planned inputs do not satisfy the negated conjunct "
                    "{} ({!r})").format(flip, negated)
        return None

    @staticmethod
    def _wrapped_semantics_error(index, conjunct, assignment):
        """Widened conjuncts claim bit-precision: whenever the rewritten
        comparison and its window guards hold ideally, re-evaluating the
        original lanes under mod-2^32 wrap-around must reach the same
        verdict.  A disagreement means the widening produced an input the
        machine will read differently than the solver did."""
        if not isinstance(conjunct, WidenedCmp):
            return None
        if not conjunct.evaluate(assignment):
            return None
        if not conjunct.machine_verdict(assignment):
            return ("widened conjunct {} ({!r}) holds over the ideal "
                    "integers but fails under wrapped machine semantics"
                    ).format(index, conjunct)
        return None

    # -- oracle 6: fault containment (chaos probe) ---------------------------

    def check_chaos(self, program):
        """Clean vs. seeded-fault DART session on a generated program.

        Delegates to :func:`repro.faults.chaos.chaos_probe`: in-process
        fault sites only, plan derived from the program seed so every
        violation is replayable.  The invariants are containment (no
        crash escapes the fault boundaries) and honesty (a faulted
        session never *invents* errors a clean exhaustive session did
        not find).
        """
        from repro.faults.chaos import chaos_probe

        self.counters["chaos_probes"] += 1
        self.counters["dart_sessions"] += 2
        violations = chaos_probe(
            program.render(), program.toplevel,
            dict(max_iterations=self.opts.dart_iterations,
                 stop_on_first_error=False, max_steps=self.opts.max_steps,
                 handle_signals=False, seed=0),
            (program.seed or 0) * 1_000_003 + 4242,
        )
        return [Divergence("chaos", violation) for violation in violations]

    # -- the full battery ---------------------------------------------------

    def check(self, program, parallel=False, solver_rng=None, chaos=False):
        """Run every oracle on ``program``; returns all divergences."""
        self.counters["programs"] += 1
        try:
            module = build_test_program(program.render(), program.toplevel)
        except MiniCError as error:
            return [Divergence(
                "generator", "generated program does not compile: {}"
                .format(error))]
        divergences = []
        divergences.extend(self.check_transparency(program, module))
        divergences.extend(self.check_forcing(program, module))
        divergences.extend(self.check_config_invariance(program))
        if parallel:
            divergences.extend(self.check_parallel_invariance(program))
        if chaos:
            divergences.extend(self.check_chaos(program))
        if solver_rng is not None:
            divergences.extend(self.check_constraint_fuzz(solver_rng))
        return divergences

    def check_named(self, program, oracle):
        """Re-run only the oracle family that produced ``oracle`` —
        the reducer's predicate."""
        try:
            module = build_test_program(program.render(), program.toplevel)
        except MiniCError:
            return []
        if oracle in ("determinism", "transparency", "engine"):
            return [d for d in self.check_transparency(program, module)
                    if d.oracle == oracle]
        if oracle == "substitution":
            return self.check_forcing(program, module)
        if oracle in ("config", "quarantine", "solver"):
            return [d for d in self.check_config_invariance(program)
                    if d.oracle == oracle]
        if oracle == "chaos":
            return self.check_chaos(program)
        return []
