"""DART: Directed Automated Random Testing — a full reproduction.

This library reproduces Godefroid, Klarlund and Sen's PLDI 2005 paper from
scratch in Python: a C-subset front end (:mod:`repro.minic`), a concrete
RAM-machine interpreter (:mod:`repro.interp`), symbolic state
(:mod:`repro.symbolic`), a linear integer constraint solver
(:mod:`repro.solver`), and the DART engine itself (:mod:`repro.dart`) —
interface extraction, automatic test-driver generation, and the
concolic directed search.

Quickstart::

    from repro import dart_check

    SOURCE = '''
    int f(int x) { return 2 * x; }
    int h(int x, int y) {
      if (x != y)
        if (f(x) == x + 10)
          abort();  /* error */
      return 0;
    }
    '''

    result = dart_check(SOURCE, "h")
    print(result.describe())   # Bug found after ... run(s)
    print(result.first_error().inputs)  # e.g. [10, <something != 10>]
"""

from repro.dart import (
    Dart,
    DartOptions,
    DartResult,
    ErrorReport,
    RandomTester,
    build_test_program,
    dart_check,
    extract_interface,
    generate_driver,
    random_check,
)
from repro.dart.coverage import BranchCoverage
from repro.interp import (
    AssertionViolation,
    ExecutionFault,
    Machine,
    MachineOptions,
    NonTermination,
    ProgramAbort,
    SegFault,
)
from repro.interp.faults import UninitializedRead
from repro.minic import compile_program
from repro.minic.disasm import disassemble
from repro.solver import Solver

__version__ = "1.0.0"

__all__ = [
    "AssertionViolation",
    "BranchCoverage",
    "Dart",
    "DartOptions",
    "DartResult",
    "ErrorReport",
    "ExecutionFault",
    "Machine",
    "MachineOptions",
    "NonTermination",
    "ProgramAbort",
    "RandomTester",
    "SegFault",
    "Solver",
    "UninitializedRead",
    "__version__",
    "build_test_program",
    "compile_program",
    "dart_check",
    "disassemble",
    "extract_interface",
    "generate_driver",
    "random_check",
]
