"""Observability: structured tracing, metrics, and phase profiling.

Three orthogonal instruments, all zero-overhead when unused:

* :mod:`repro.obs.trace` — the typed event bus (``TraceBus``) with JSONL,
  ring-buffer and in-memory sinks; the window into *why* a directed
  search behaved the way it did (per-query verdicts and latencies, cache
  tiers, forcing outcomes, flag degradations).
* :mod:`repro.obs.metrics` — the ``MetricsRegistry`` of counters, gauges
  and fixed-bucket histograms backing ``RunStats``, with deterministic
  cross-worker merging.
* :mod:`repro.obs.profile` — the ``PhaseTimer`` attributing session wall
  time to execute / solve / cache / checkpoint phases.

``python -m repro trace-summary TRACE.jsonl`` renders a trace file
(:mod:`repro.obs.summary`).  The full event schema and metrics catalog
live in ``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (
    PATH_LENGTH_BUCKETS,
    SOLVER_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import PhaseTimer
from repro.obs.summary import render_summary, summarize_trace
from repro.obs.trace import (
    JsonlTraceSink,
    ListSink,
    RingBufferSink,
    TraceBus,
    read_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTraceSink",
    "ListSink",
    "MetricsRegistry",
    "PATH_LENGTH_BUCKETS",
    "PhaseTimer",
    "RingBufferSink",
    "SOLVER_LATENCY_BUCKETS_S",
    "TraceBus",
    "read_trace",
    "render_summary",
    "summarize_trace",
]
