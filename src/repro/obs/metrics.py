"""Typed metrics: counters, gauges, and fixed-bucket histograms.

The registry replaces the ad-hoc "bag of ints" statistics style: every
session metric is a named instrument in a :class:`MetricsRegistry`
(``RunStats`` is now a thin attribute facade over one — see
`repro.dart.report`), so aggregation, serialization and cross-process
merging are defined once, per instrument *type*, instead of once per
call site.

Design constraints:

* **Deterministic merge.**  Parallel workers snapshot their registry and
  the parent folds snapshots in dispatch order; counter and histogram
  merges are commutative additions and gauge merges take the max, so the
  merged registry is identical for any worker scheduling — the same
  invariant the parallel engine already guarantees for search results.
* **Fixed buckets.**  Histograms use pre-agreed upper bounds (solver
  latency, path length), so merging never needs rebinning and two
  sessions' histograms are always comparable.
* **JSON-ready.**  ``to_dict``/``merge`` round-trip through plain dicts,
  which is also exactly what crosses the process boundary.
"""

from collections import OrderedDict

#: Upper bucket bounds for solver wall-clock latency, in seconds.
SOLVER_LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Upper bucket bounds for executed path length (conditionals per run).
PATH_LENGTH_BUCKETS = (1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128, 256)


class Counter:
    """A monotonically *intended* integer counter (checkpoint restore may
    set it directly)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, amount=1):
        self.value += amount

    def to_dict(self):
        return self.value

    def merge(self, payload):
        self.value += payload


class Gauge:
    """A last-value instrument that also tracks its high-water mark."""

    __slots__ = ("name", "value", "peak")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.peak = 0

    def set(self, value):
        self.value = value
        if value > self.peak:
            self.peak = value

    def to_dict(self):
        return {"value": self.value, "peak": self.peak}

    def merge(self, payload):
        # Merged gauges have no meaningful "last" across processes; keep
        # the max so the peak stays a true high-water mark.
        self.value = max(self.value, payload["value"])
        self.peak = max(self.peak, payload["peak"])


class Histogram:
    """Fixed-bucket histogram: counts per upper bound, plus an overflow
    bucket, a total count and a value sum."""

    __slots__ = ("name", "buckets", "counts", "count", "total")

    def __init__(self, name, buckets):
        self.name = name
        self.buckets = tuple(buckets)
        if any(b >= a for b, a in zip(self.buckets, self.buckets[1:])):
            raise ValueError("histogram buckets must strictly increase")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def quantile(self, q):
        """The upper bound of the bucket holding the q-quantile (a
        conservative estimate; the overflow bucket reports the mean)."""
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0
        for i, bound in enumerate(self.buckets):
            running += self.counts[i]
            if running >= target:
                return bound
        return self.mean if self.counts[-1] else self.buckets[-1]

    def to_dict(self):
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.total, 6),
        }

    def merge(self, payload):
        if list(payload["buckets"]) != list(self.buckets):
            raise ValueError(
                "cannot merge histogram {!r}: bucket bounds differ"
                .format(self.name)
            )
        for i, c in enumerate(payload["counts"]):
            self.counts[i] += c
        self.count += payload["count"]
        self.total += payload["sum"]


class MetricsRegistry:
    """Named instruments with create-or-get access and dict round-trips."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters = OrderedDict()
        self._gauges = OrderedDict()
        self._histograms = OrderedDict()

    def counter(self, name):
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name):
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name, buckets=None):
        instrument = self._histograms.get(name)
        if instrument is None:
            if buckets is None:
                raise ValueError(
                    "histogram {!r} does not exist; pass buckets".format(name)
                )
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    def to_dict(self):
        return {
            "counters": {n: c.to_dict() for n, c in self._counters.items()},
            "gauges": {n: g.to_dict() for n, g in self._gauges.items()},
            "histograms": {
                n: h.to_dict() for n, h in self._histograms.items()
            },
        }

    def merge(self, payload):
        """Fold a ``to_dict`` snapshot in (counters add, gauges max,
        histograms add elementwise).  Deterministic: merging snapshots in
        any order yields the same registry."""
        for name, value in payload.get("counters", {}).items():
            self.counter(name).merge(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).merge(value)
        for name, value in payload.get("histograms", {}).items():
            self.histogram(name, value["buckets"]).merge(value)
