"""``python -m repro trace-summary``: render a trace file as a report.

Reads a JSONL trace (written with ``--trace PATH``) and computes:

* a **per-phase time breakdown** — execute / solve / cache / checkpoint
  wall time summed from the durations the events carry, plus the
  unattributed remainder ("other") against the session's total wall
  time;
* the **branch-flip funnel** — attempted (conjuncts negated and handed
  to the solver or cache) → sat (feasible flips) → forced (planned runs
  that reached their predicted path) → new path (runs that discovered a
  previously unseen path), the end-to-end conversion rate of the
  directed search;
* per-event-type counts and solver/cache verdict tallies.

The funnel equals the session's reported statistics by construction:
``attempted == solver_calls + cache hits``, ``forced == runs_forced``,
``new path == runs_new_path`` (pinned by ``tests/test_trace_summary.py``).
"""

from repro.obs import trace as tr


def summarize_trace(events):
    """Aggregate an event stream into a JSON-ready summary dict."""
    counts = {}
    phases = {"execute": 0.0, "solve": 0.0, "cache": 0.0, "checkpoint": 0.0,
              "compile": 0.0}
    funnel = {"attempted": 0, "sat": 0, "forced": 0, "new_path": 0}
    instructions = 0
    verdicts = {"sat": 0, "unsat": 0, "unknown": 0}
    cache_tiers = {}
    subsumption = {"flips_subsumed": 0, "worklist_deduped": 0}
    runs = {"total": 0, "ok": 0, "fault": 0, "mismatch": 0,
            "quarantined": 0}
    plan_wall = 0.0
    solver_wall = 0.0
    total_wall = None
    status = None
    engine = None
    iterations = 0
    coverage = None
    for event in events:
        etype = event.get("type")
        counts[etype] = counts.get(etype, 0) + 1
        if etype == tr.RUN_FINISHED:
            phases["execute"] += event.get("wall_s", 0.0)
            instructions += event.get("steps", 0)
            runs["total"] += 1
            run_status = event.get("status")
            if run_status in runs:
                runs[run_status] += 1
            if event.get("planned") and run_status in ("ok", "fault"):
                funnel["forced"] += 1
            if event.get("new_path"):
                funnel["new_path"] += 1
        elif etype == tr.SOLVER_ANSWERED:
            solver_wall += event.get("wall_s", 0.0)
            verdict = event.get("verdict")
            if verdict in verdicts:
                verdicts[verdict] += 1
            if verdict == "sat":
                funnel["sat"] += 1
        elif etype in (tr.CACHE_LOOKUP, tr.CACHE_STORE):
            phases["cache"] += event.get("wall_s", 0.0)
            if etype == tr.CACHE_LOOKUP:
                tier = event.get("tier") or "miss"
                cache_tiers[tier] = cache_tiers.get(tier, 0) + 1
                verdict = event.get("verdict")
                if verdict in verdicts:
                    verdicts[verdict] += 1
                if verdict == "sat":
                    funnel["sat"] += 1
        elif etype == tr.CONJUNCT_NEGATED:
            funnel["attempted"] += 1
        elif etype == tr.FLIP_SUBSUMED:
            subsumption["flips_subsumed"] += 1
        elif etype == tr.WORKLIST_DEDUP:
            subsumption["worklist_deduped"] += 1
        elif etype == tr.PLAN:
            plan_wall += event.get("wall_s", 0.0)
        elif etype == tr.CHECKPOINT:
            phases["checkpoint"] += event.get("wall_s", 0.0)
        elif etype == tr.COMPILE:
            phases["compile"] += event.get("wall_s", 0.0)
        elif etype == tr.SESSION_FINISHED:
            total_wall = event.get("wall_s")
            status = event.get("status")
            engine = event.get("engine")
            iterations = event.get("iterations", 0)
            coverage = event.get("coverage")
    # "solve" covers the whole planning call (slicing, query building,
    # solver) minus the cache time recorded separately inside it; traces
    # without plan events (e.g. a bare worker stream) fall back to the
    # actual solver-call walls.
    if plan_wall:
        phases["solve"] = max(plan_wall - phases["cache"], solver_wall)
    else:
        phases["solve"] = solver_wall
    attributed = sum(phases.values())
    if total_wall is None:
        total_wall = attributed
    summary = {
        "events": sum(counts.values()),
        "event_counts": {k: counts[k] for k in sorted(counts)},
        "status": status,
        # "dfs" / "serial" / "pool" — which engine ran the search
        # (absent in traces written before the field existed).
        "engine": engine,
        "iterations": iterations,
        "wall_s": round(total_wall, 6),
        "phases": {name: round(seconds, 6)
                   for name, seconds in phases.items()},
        "phase_other_s": round(max(total_wall - attributed, 0.0), 6),
        "phase_coverage": round(attributed / total_wall, 4)
        if total_wall else 1.0,
        "instructions": instructions,
        "instructions_per_s": round(
            instructions / phases["execute"], 1
        ) if phases["execute"] else 0.0,
        "funnel": funnel,
        "verdicts": verdicts,
        "cache_tiers": {k: cache_tiers[k] for k in sorted(cache_tiers)},
        # The pruning layer: flips refuted by recorded UNSAT cores and
        # worklist children dropped as fingerprint-duplicates.
        "subsumption": subsumption,
        "runs": runs,
    }
    if coverage is not None:
        # Branch-coverage block emitted on session_finished: direction
        # coverage plus the C1 (both-arms) rollup — see
        # repro.dart.coverage.
        summary["coverage"] = coverage
    return summary


def _bar(fraction, width=24):
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_summary(summary):
    """Human-readable report (the non-``--json`` output)."""
    lines = []
    lines.append("trace summary: {} event(s), session status {}, "
                 "{} engine, {} run(s), {:.4f}s wall".format(
                     summary["events"], summary["status"] or "?",
                     summary.get("engine") or "?",
                     summary["runs"]["total"], summary["wall_s"]))
    lines.append("")
    lines.append("phase breakdown (attributed {:.1%} of wall time):".format(
        summary["phase_coverage"]))
    total = summary["wall_s"] or 1.0
    for name in ("execute", "compile", "solve", "cache", "checkpoint"):
        seconds = summary["phases"].get(name, 0.0)
        frac = seconds / total
        lines.append("  {:<10} {:>9.4f}s  {:>6.1%}  {}".format(
            name, seconds, frac, _bar(frac)))
    other = summary["phase_other_s"]
    lines.append("  {:<10} {:>9.4f}s  {:>6.1%}  {}".format(
        "other", other, other / total, _bar(other / total)))
    lines.append("")
    funnel = summary["funnel"]
    lines.append("branch-flip funnel:")
    lines.append("  attempted {attempted} -> sat {sat} -> forced {forced} "
                 "-> new path {new_path}".format(**funnel))
    if funnel["attempted"]:
        lines.append("  conversion: {:.1%} of negated conjuncts ended in a "
                     "new path".format(
                         funnel["new_path"] / funnel["attempted"]))
    verdicts = summary["verdicts"]
    lines.append("")
    lines.append("verdicts: sat {sat} / unsat {unsat} / unknown {unknown}"
                 .format(**verdicts))
    if summary["cache_tiers"]:
        lines.append("cache tiers: " + ", ".join(
            "{} {}".format(tier, count)
            for tier, count in summary["cache_tiers"].items()))
    subs = summary.get("subsumption") or {}
    if subs.get("flips_subsumed") or subs.get("worklist_deduped"):
        lines.append("subsumption: {flips_subsumed} flip(s) refuted by "
                     "recorded cores, {worklist_deduped} worklist "
                     "child(ren) deduped".format(**subs))
    runs = summary["runs"]
    lines.append("runs: {total} total, {ok} ok, {fault} fault, "
                 "{mismatch} mismatch, {quarantined} quarantined"
                 .format(**runs))
    lines.append("throughput: {} instruction(s), {}/s over the execute "
                 "phase".format(summary["instructions"],
                                summary["instructions_per_s"]))
    coverage = summary.get("coverage")
    if coverage is not None:
        lines.append(
            "coverage: {covered_directions}/{total_directions} branch "
            "directions ({percent}%), C1 {branches_both_arms}/"
            "{total_branches} branches both-arms ({c1_percent}%)".format(
                **coverage))
    lines.append("")
    lines.append("event counts:")
    for etype, count in summary["event_counts"].items():
        lines.append("  {:<18} {}".format(etype, count))
    return "\n".join(lines)
