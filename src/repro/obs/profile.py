"""Opt-in phase profiling: attribute wall time to engine phases.

A :class:`PhaseTimer` accumulates wall-clock seconds per named phase —
the run loop uses ``execute`` (the instrumented run), ``solve`` (actual
solver calls), ``cache`` (result-cache lookups/stores) and
``checkpoint`` (session persistence) — so the benchmark suite can answer
"where did the session's time go" without a sampling profiler.

Disabled timers cost one attribute check per section: ``section(name)``
returns a shared no-op context manager and never reads the clock.
Enable with ``DartOptions(profile_phases=True)``; parallel workers run
their own timer and the parent merges the snapshots (plain addition, so
the merge is deterministic).
"""

import time

#: Canonical phase names used by the DART run loop.
EXECUTE = "execute"
SOLVE = "solve"
CACHE = "cache"
CHECKPOINT = "checkpoint"
#: IR lowering by the compiled execution engine (repro.interp.compile);
#: carved out of the run window so ``execute`` stays honest.
COMPILE = "compile"

PHASES = (EXECUTE, SOLVE, CACHE, CHECKPOINT, COMPILE)


class _NullSection:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SECTION = _NullSection()


class _Section:
    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer, name):
        self._timer = timer
        self._name = name

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._timer.add(self._name, time.perf_counter() - self._start)
        return False


class PhaseTimer:
    """Accumulates (seconds, entry count) per phase name."""

    __slots__ = ("enabled", "seconds", "counts")

    def __init__(self, enabled=False):
        self.enabled = enabled
        self.seconds = {}
        self.counts = {}

    def section(self, name):
        """Context manager timing one phase entry (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, name)

    def add(self, name, seconds, count=1):
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + count

    def snapshot(self):
        return {
            name: {"seconds": round(self.seconds[name], 6),
                   "count": self.counts.get(name, 0)}
            for name in sorted(self.seconds)
        }

    def merge(self, payload):
        """Fold another timer's ``snapshot()`` in (plain addition)."""
        for name, entry in payload.items():
            self.add(name, entry["seconds"], entry["count"])
