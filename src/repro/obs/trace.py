"""The structured trace bus: typed events from every engine layer.

A :class:`TraceBus` carries a stream of small, flat, JSON-ready event
dicts from the run loop (`repro.dart.runner`), the constraint layer
(`repro.dart.solve`), the result cache (`repro.solver.cache`), the
parallel engine (`repro.dart.parallel`) and the interpreter
(`repro.interp.machine`) to any number of attached sinks.  The event
schema — every type and its fields — is documented in
``docs/OBSERVABILITY.md``.

**Zero overhead when disabled.**  Emission sites follow one idiom::

    if bus.enabled:
        bus.emit(trace.RUN_FINISHED, iteration=n, wall_s=dt, ...)

``enabled`` is a plain attribute kept in sync by attach/detach, so a
session without sinks pays one attribute read per *site*, and neither
the event dict nor any of its field values is ever constructed
(``tests/test_obs.py`` pins this).  Observability must never steer the
search: the trace options are excluded from the checkpoint fingerprint
(`DartOptions.digest`), and nothing downstream reads events back.

Three sinks cover the use cases:

* :class:`JsonlTraceSink` — one JSON object per line to a file
  (CLI ``--trace PATH``); read back with :func:`read_trace`.
* :class:`RingBufferSink` — keeps the last *N* events; the run loop
  snapshots it into quarantine reports so a contained failure carries
  the events leading up to it.
* :class:`ListSink` — collects everything in memory; used by tests and
  by parallel workers (whose events are shipped to the parent and
  re-emitted in dispatch order).
"""

import json
import time
from collections import deque

#: Event types (the ``"type"`` field of every event).
SESSION_STARTED = "session_started"
SESSION_FINISHED = "session_finished"
RUN_STARTED = "run_started"
RUN_FINISHED = "run_finished"
BRANCH = "branch"
CONJUNCT_NEGATED = "conjunct_negated"
SOLVER_ANSWERED = "solver_answered"
CACHE_LOOKUP = "cache_lookup"
CACHE_STORE = "cache_store"
FORCING_MISMATCH = "forcing_mismatch"
FLAG_DEGRADED = "flag_degraded"
CONJUNCT_WIDENED = "conjunct_widened"
CONJUNCT_DROPPED = "conjunct_dropped"
QUARANTINE = "quarantine"
CHECKPOINT = "checkpoint"
GENERATION = "generation"
PLAN = "plan"
FAULT_INJECTED = "fault_injected"
SOLVER_FAILED = "solver_failed"
CACHE_FAILED = "cache_failed"
CHECKPOINT_FAILED = "checkpoint_failed"
CHECKPOINT_REJECTED = "checkpoint_rejected"
POOL_RETRY = "pool_retry"
#: The persistent worker pool spun up (``jobs``, ``window``) or wound
#: down (``dispatched``, ``steals``, ``workers_lost``, ``utilization``).
POOL_STARTED = "pool_started"
POOL_STOPPED = "pool_stopped"
#: A queued item was claimed by a worker other than the one the
#: dispatcher nominated round-robin — the work-stealing path.
POOL_STEAL = "pool_steal"
#: A worker process died; its claimed items are re-dispatched once.
WORKER_LOST = "worker_lost"
#: IR lowering by the compiled execution engine (one event per run that
#: lowered at least one function; carries ``wall_s`` and ``functions``).
COMPILE = "compile"
#: A regression suite was written (repro.suite); carries ``dir``,
#: ``artifacts``, ``errors``, ``deduped``, ``pruned`` and the suite's
#: ``c1_percent``.
SUITE_EXPORTED = "suite_exported"
#: One witness was collapsed during export — ``reason`` is
#: ``"duplicate"`` (identical path fingerprint + error class) or
#: ``"subsumed"`` (covered-branch set adds nothing to the kept union).
ARTIFACT_DEDUPED = "artifact_deduped"
#: A flip query was refuted by a recorded UNSAT core it contains
#: (the cross-subtree cache tier; carries ``constraints``).
FLIP_SUBSUMED = "flip_subsumed"
#: A worklist child was dropped at insert time because an entry with
#: the same future fingerprint (and same recorded-error salt) was
#: already enqueued this drain; carries ``bound``.
WORKLIST_DEDUP = "worklist_dedup"

#: All event types, for schema-completeness checks.
EVENT_TYPES = (
    SESSION_STARTED, SESSION_FINISHED, RUN_STARTED, RUN_FINISHED,
    BRANCH, CONJUNCT_NEGATED, SOLVER_ANSWERED, CACHE_LOOKUP, CACHE_STORE,
    FORCING_MISMATCH, FLAG_DEGRADED, CONJUNCT_WIDENED, CONJUNCT_DROPPED,
    QUARANTINE, CHECKPOINT, GENERATION, PLAN,
    FAULT_INJECTED, SOLVER_FAILED, CACHE_FAILED,
    CHECKPOINT_FAILED, CHECKPOINT_REJECTED, POOL_RETRY,
    POOL_STARTED, POOL_STOPPED, POOL_STEAL, WORKER_LOST,
    COMPILE, SUITE_EXPORTED, ARTIFACT_DEDUPED,
    FLIP_SUBSUMED, WORKLIST_DEDUP,
)


class TraceBus:
    """Fan-out of trace events to attached sinks.

    ``enabled`` is True exactly while at least one sink is attached;
    emission sites must check it before constructing an event.
    """

    __slots__ = ("enabled", "_sinks", "_seq", "_epoch")

    def __init__(self):
        self.enabled = False
        self._sinks = []
        self._seq = 0
        self._epoch = time.time()

    def attach(self, sink):
        """Attach a sink (anything with ``write(event)``); returns it."""
        self._sinks.append(sink)
        self.enabled = True
        return sink

    def detach(self, sink):
        self._sinks.remove(sink)
        self.enabled = bool(self._sinks)

    def emit(self, event_type, **fields):
        """Build one event and hand it to every sink.

        Only call behind an ``enabled`` check — the whole point of the
        bus is that a disabled session never reaches this method.
        """
        self._seq += 1
        event = {"seq": self._seq, "type": event_type,
                 "ts": round(time.time() - self._epoch, 6)}
        event.update(fields)
        for sink in self._sinks:
            sink.write(event)
        return event

    def forward(self, event):
        """Re-emit an event built elsewhere (a parallel worker), re-stamped
        with this bus's sequence so the merged stream stays ordered."""
        self._seq += 1
        event = dict(event)
        event["seq"] = self._seq
        for sink in self._sinks:
            sink.write(event)
        return event

    def flush(self):
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self):
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
        self._sinks = []
        self.enabled = False


class ListSink:
    """Collects events in memory (tests; parallel-worker shipping)."""

    __slots__ = ("events",)

    def __init__(self):
        self.events = []

    def write(self, event):
        self.events.append(event)


class RingBufferSink:
    """Keeps the most recent ``capacity`` events.

    The run loop snapshots the ring into :class:`QuarantineRecord`s so a
    fault report carries the trace context that led up to it — the
    flight-recorder pattern.
    """

    __slots__ = ("_ring",)

    def __init__(self, capacity=32):
        self._ring = deque(maxlen=capacity)

    def write(self, event):
        self._ring.append(event)

    def tail(self):
        """The buffered events, oldest first."""
        return list(self._ring)


class JsonlTraceSink:
    """Writes one JSON object per line (the ``--trace PATH`` format)."""

    __slots__ = ("_handle", "_owns")

    def __init__(self, path_or_handle):
        if hasattr(path_or_handle, "write"):
            self._handle = path_or_handle
            self._owns = False
        else:
            self._handle = open(path_or_handle, "w")
            self._owns = True

    def write(self, event):
        # json.dumps hits the C-accelerated one-shot encoder; json.dump
        # streams through the pure-Python iterencode and is ~5x slower.
        self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")

    def flush(self):
        self._handle.flush()

    def close(self):
        self._handle.flush()
        if self._owns:
            self._handle.close()


def read_trace(source):
    """Iterate the events of a JSONL trace file (path or open handle)."""
    if hasattr(source, "read"):
        for line in source:
            line = line.strip()
            if line:
                yield json.loads(line)
        return
    with open(source) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
