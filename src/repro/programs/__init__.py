"""The paper's example programs and evaluation workloads, in mini-C.

* :mod:`repro.programs.samples` — the motivating programs of Section 2
  (``h``/``f``, the ``z = y`` example, the struct/char* cast, ``foobar``);
* :mod:`repro.programs.ac_controller` — the air-conditioning controller of
  Fig. 6 (Section 4.1);
* :mod:`repro.programs.needham_schroeder` — a C implementation of the
  Needham–Schroeder public-key protocol with possibilistic and Dolev–Yao
  intruder models and the Lowe's-fix variants (Section 4.2);
* :mod:`repro.programs.osip` — a generated oSIP-like SIP library exhibiting
  the unchecked-NULL-argument pattern and the ``alloca`` parser bug
  (Section 4.3).
"""

from repro.programs import samples
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE
from repro.programs.needham_schroeder import ns_source
from repro.programs.osip import OsipLibrary

__all__ = [
    "AC_CONTROLLER_SOURCE",
    "OsipLibrary",
    "ns_source",
    "samples",
]
