"""A C implementation of the Needham–Schroeder public-key protocol
(Section 4.2 of the paper).

The program simulates initiator A and responder B as interleaved state
machines inside a single process, like the ~400-line C implementation the
paper tested.  Encryption is modelled symbolically: a message is the tuple
``(mtype, key, d1, d2, d3)`` and only the owner of ``key`` can read the
payload — exactly the standard Dolev–Yao abstraction of public-key
encryption.

Two environment models are provided, mirroring the paper's two experiments:

* **possibilistic** (Fig. 9): the toplevel function accepts *any* raw
  message.  The environment is all-powerful — it can "guess" nonces, which
  is why DART finds only the projection of Lowe's attack from B's point of
  view (steps 2 and 6), at depth 2.

* **dolev_yao** (Fig. 10): the intruder model acts as an input filter.
  The intruder can instruct A to start a session, *compose* messages only
  from atoms it knows (its own key and nonce, agent identities, and nonces
  it has learned by decrypting traffic addressed to it), and *replay*
  messages it has recorded.  The shortest attack is then the full Lowe
  attack, of input length 4.

Lowe's fix (B includes its identity in message 2, A checks it) is
parameterized three ways: ``"none"`` (attackable), ``"buggy"`` — the fix as
implemented incompletely: A accepts any message whose responder field
equals B *even when talking to someone else*, reproducing the
previously-unknown bug DART found in the original code — and ``"correct"``
(A compares against the peer it actually targets; no attack exists).

The assertion is violated exactly when B commits a session it believes is
with A although A never initiated a session with B — the authentication
failure of Lowe's attack.
"""

_PRELUDE = """
/* Agents, keys, nonces and message types.  Keys and nonces are plain
 * integers: the Dolev-Yao abstraction, as in the implementation the
 * paper analyzed ("agent identifiers, keys, addresses and nonces are all
 * represented by integers"). */
enum { AGENT_A = 1, AGENT_B = 2, AGENT_I = 3 };
enum { KEY_NONE = 0, KEY_A = 11, KEY_B = 12, KEY_I = 13 };
enum { NONCE_A = 101, NONCE_B = 102, NONCE_I = 103 };
enum { MSG1 = 1, MSG2 = 2, MSG3 = 3 };
enum { IDLE = 0, WAITING = 1, DONE = 2 };

/* Protocol state of initiator A. */
int a_state = 0;
int a_peer = 0;
int a_started_with_b = 0;

/* Protocol state of responder B. */
int b_state = 0;
int b_peer = 0;
int b_nonce_peer = 0;

/* The network trace: every message sent by A or B (the intruder sees and
 * records all traffic). */
int seen_mtype[16];
int seen_key[16];
int seen_d1[16];
int seen_d2[16];
int seen_d3[16];
int seen_count = 0;

/* What the intruder has learned.  It always knows its own nonce; the
 * other two nonces become known once a message containing them is
 * encrypted with the intruder's key.  (Booleans instead of a knowledge
 * list keep the branch count — and hence DART's execution tree — small;
 * the paper reports the same kind of state-space engineering: "each
 * variant can have a significant impact on the size of the resulting
 * search space".) */
int knows_na = 0;
int knows_nb = 0;

int key_of(int agent) {
  if (agent == AGENT_A) return KEY_A;
  if (agent == AGENT_B) return KEY_B;
  if (agent == AGENT_I) return KEY_I;
  return KEY_NONE;
}

void intruder_learn(int v) {
  if (v == NONCE_A) knows_na = 1;
  if (v == NONCE_B) knows_nb = 1;
}

/* Can the intruder utter nonce v when composing a message? */
int sayable_nonce(int v) {
  if (v == NONCE_I) return 1;
  if (v == NONCE_A) return knows_na;
  if (v == NONCE_B) return knows_nb;
  return 0;
}

/* Every send goes onto the network, i.e. through the intruder: it records
 * the message and decrypts anything addressed to itself. */
void net_send(int mtype, int key, int d1, int d2, int d3) {
  if (seen_count < 16) {
    seen_mtype[seen_count] = mtype;
    seen_key[seen_count] = key;
    seen_d1[seen_count] = d1;
    seen_d2[seen_count] = d2;
    seen_d3[seen_count] = d3;
    seen_count = seen_count + 1;
  }
  if (key == KEY_I) {
    intruder_learn(d1);
    intruder_learn(d2);
    intruder_learn(d3);
  }
}
"""

_INITIATOR = """
/* A starts a session with `peer`: msg1 = {Na, A} encrypted for peer. */
void a_start(int peer) {
  if (a_state != IDLE) return;
  if (peer < AGENT_A) return;
  if (peer > AGENT_I) return;
  if (peer == AGENT_A) return;  /* no self-sessions */
  a_peer = peer;
  if (peer == AGENT_B) a_started_with_b = 1;
  a_state = WAITING;
  net_send(MSG1, key_of(peer), NONCE_A, AGENT_A, 0);
}

/* A receives msg2 = {Na, Nb [, resp]}Ka and answers msg3 = {Nb}Kpeer. */
void a_receive(int mtype, int key, int d1, int d2, int d3) {
  if (key != KEY_A) return;      /* A cannot decrypt it */
  if (mtype != MSG2) return;
  if (a_state != WAITING) return;
  if (d1 != NONCE_A) return;     /* must return A's challenge */
@A_FIX_CHECK@
  a_state = DONE;
  net_send(MSG3, key_of(a_peer), d2, 0, 0);
}
"""

_RESPONDER = """
/* B receives msg1 = {n, agent}Kb and answers msg2; on a valid msg3 it
 * commits the session and checks authentication. */
void b_receive(int mtype, int key, int d1, int d2, int d3) {
  if (key != KEY_B) return;      /* B cannot decrypt it */
  if (mtype == MSG1) {
    if (b_state != IDLE) return;
    if (d2 < AGENT_A) return;    /* claimed initiator must be an agent */
    if (d2 > AGENT_I) return;
    b_peer = d2;
    b_nonce_peer = d1;
    b_state = WAITING;
    net_send(MSG2, key_of(b_peer), d1, NONCE_B, @B_MSG2_ID@);
    return;
  }
  if (mtype == MSG3) {
    if (b_state != WAITING) return;
    if (d1 != NONCE_B) return;   /* must return B's challenge */
    b_state = DONE;
    /* B now believes it authenticated b_peer.  If it believes it talked
     * to A, then A must have actually started a session with B. */
    assert(!(b_peer == AGENT_A && !a_started_with_b));
  }
}
"""

_POSSIBILISTIC_TOPLEVEL = """
/* Possibilistic environment: the input IS the next network event.  A
 * target of 0 asks A to initiate a session with d1; otherwise the raw
 * message (mtype, key, d1, d2, d3) is delivered to the target agent. */
void ns_step(int target, int mtype, int key, int d1, int d2, int d3) {
  if (target == 0) {
    a_start(d1);
    return;
  }
  if (target == AGENT_A) {
    a_receive(mtype, key, d1, d2, d3);
    return;
  }
  if (target == AGENT_B) {
    b_receive(mtype, key, d1, d2, d3);
    return;
  }
}
"""

_DOLEV_YAO_TOPLEVEL = """
void deliver(int target, int mtype, int key, int d1, int d2, int d3) {
  if (target == AGENT_A) {
    a_receive(mtype, key, d1, d2, d3);
    return;
  }
  if (target == AGENT_B) {
    b_receive(mtype, key, d1, d2, d3);
    return;
  }
}

/* Dolev-Yao environment: the intruder filter.  One toplevel call is one
 * intruder action:
 *   op 1 - social engineering: get A to start a session with B
 *   op 2 - get A to start a session with the intruder itself
 *   op 3 - forward recorded message number x to its addressee
 *   op 4 - compose msg1 {nonce x, claimed identity y} for B
 *   op 5 - compose msg3 {nonce x} for B
 * Composition requires every uttered nonce to be known to the intruder;
 * forwarding works for any recorded message, decryptable or not.  As in
 * the paper, the action vocabulary was tuned for the smallest search
 * space that still contains Lowe's attack and its variants (composition
 * toward A is omitted: A only ever accepts a message containing its own
 * fresh nonce, which the intruder can anyway only return by forwarding).
 */
void ns_dy_step(int op, int x, int y) {
  if (op == 1) {
    a_start(AGENT_B);
    return;
  }
  if (op == 2) {
    a_start(AGENT_I);
    return;
  }
  if (op == 3) {
    int i;
    if (x < 0) return;
    if (x >= seen_count) return;
    /* Walk the trace with a concrete index and match it against the
     * requested message number; this keeps every memory access at a
     * definite location, so DART's directed search stays complete. */
    for (i = 0; i < seen_count; i++) {
      if (i == x) {
        int rcpt;
        rcpt = 0;
        if (seen_key[i] == KEY_A) rcpt = AGENT_A;
        if (seen_key[i] == KEY_B) rcpt = AGENT_B;
        if (rcpt == 0) return;  /* addressed to the intruder itself */
        deliver(rcpt, seen_mtype[i], seen_key[i], seen_d1[i],
                seen_d2[i], seen_d3[i]);
        return;
      }
    }
    return;
  }
  if (op == 4) {
    if (!sayable_nonce(x)) return;
    if (y < AGENT_A) return;
    if (y > AGENT_I) return;
    deliver(AGENT_B, MSG1, KEY_B, x, y, 0);
    return;
  }
  if (op == 5) {
    if (!sayable_nonce(x)) return;
    deliver(AGENT_B, MSG3, KEY_B, x, 0, 0);
    return;
  }
}
"""

#: A-side check of the responder-identity field for each fix variant.
_FIX_CHECKS = {
    # Original protocol: no identity in msg2, nothing to check.
    "none": "",
    # Lowe's fix as implemented incompletely: the programmer special-cased
    # the "usual" responder B, so a message claiming to come from B is
    # accepted even when A is talking to someone else.  This reproduces the
    # previously-unknown bug DART found in the original implementation.
    "buggy": (
        "  if (d3 != AGENT_B) {\n"
        "    if (d3 != a_peer) return;\n"
        "  }"
    ),
    # Lowe's fix, correct: the identity must be the peer A targeted.
    "correct": "  if (d3 != a_peer) return;",
}

#: What B puts in msg2's identity field for each fix variant.
_MSG2_IDS = {"none": "0", "buggy": "AGENT_B", "correct": "AGENT_B"}

TOPLEVELS = {"possibilistic": "ns_step", "dolev_yao": "ns_dy_step"}

#: Input length of the shortest attack in each model (paper, Figs. 9-10).
SHORTEST_ATTACK_DEPTH = {"possibilistic": 2, "dolev_yao": 4}


def ns_source(model="possibilistic", fix="none"):
    """The mini-C source for one (intruder model, fix) configuration."""
    if model not in TOPLEVELS:
        raise ValueError("model must be 'possibilistic' or 'dolev_yao'")
    if fix not in _FIX_CHECKS:
        raise ValueError("fix must be 'none', 'buggy' or 'correct'")
    toplevel_code = (
        _POSSIBILISTIC_TOPLEVEL
        if model == "possibilistic"
        else _DOLEV_YAO_TOPLEVEL
    )
    return (
        _PRELUDE
        + _INITIATOR.replace("@A_FIX_CHECK@", _FIX_CHECKS[fix])
        + _RESPONDER.replace("@B_MSG2_ID@", _MSG2_IDS[fix])
        + toplevel_code
    )


def ns_toplevel(model="possibilistic"):
    return TOPLEVELS[model]
