"""The motivating example programs of Section 2, verbatim in mini-C.

Each constant is the source text of one paper listing; the toplevel
function for DART is named in the companion ``*_TOPLEVEL`` constant.
"""

#: Section 2.1 — the introductory defective function: ``h`` aborts when
#: ``f(x) == x + 10`` with ``x != y``; random testing essentially never
#: finds it, the directed search needs two runs.
H_SOURCE = """
int f(int x) { return 2 * x; }

int h(int x, int y) {
  if (x != y)
    if (f(x) == x + 10)
      abort();  /* error */
  return 0;
}
"""
H_TOPLEVEL = "h"

#: Section 2.4 — the worked example whose second path constraint
#: ``(x == y, y == x + 10)`` is infeasible, so DART terminates and proves
#: all paths explored.
Z_SOURCE = """
int f(int x, int y) {
  int z;
  z = y;
  if (x == z)
    if (y == x + 10)
      abort();
  return 0;
}
"""
Z_TOPLEVEL = "f"

#: Section 2.5 — dynamic data: a struct field overwritten through a
#: ``char *`` alias.  Static alias analysis cannot prove the abort
#: reachable; DART reaches it by solving ``a->c == 0`` and executing.
STRUCT_CAST_SOURCE = """
struct foo { int i; char c; };

int bar(struct foo *a) {
  if (a->c == 0) {
    *((char *)a + sizeof(int)) = 1;
    if (a->c != 0)
      abort();
  }
  return 0;
}
"""
STRUCT_CAST_TOPLEVEL = "bar"

#: Section 2.5 — the non-linear guard: symbolic execution alone gets stuck
#: at ``x*x*x > 0``; DART falls back to the concrete value and still finds
#: the one reachable abort (line 4; the one under the else branch is
#: unreachable because the concrete execution keeps them consistent).
FOOBAR_SOURCE = """
int foobar(int x, int y) {
  if (x*x*x > 0) {
    if (x > 0 && y == 10)
      abort();
  } else {
    if (x > 0 && y == 20)
      abort();
  }
  return 0;
}
"""
FOOBAR_TOPLEVEL = "foobar"

#: A tiny input-filtering pipeline (Section 4.1's discussion: directed
#: search learns to pass sanity checks that random testing gets stuck on).
FILTER_SOURCE = """
int core(int cmd, int value) {
  if (cmd == 7)
    if (value * 4 == 2497940)
      abort();  /* the deep bug behind the filters */
  return value;
}

int entry(int magic, int cmd, int value) {
  if (magic != 42)
    return -1;          /* filter 1: magic number */
  if (cmd < 0)
    return -2;          /* filter 2: command range */
  if (cmd > 15)
    return -2;
  return core(cmd, value);
}
"""
FILTER_TOPLEVEL = "entry"

#: All samples, for table-driven tests: name -> (source, toplevel,
#: has_reachable_abort).
ALL_SAMPLES = {
    "h": (H_SOURCE, H_TOPLEVEL, True),
    "z": (Z_SOURCE, Z_TOPLEVEL, False),
    "struct_cast": (STRUCT_CAST_SOURCE, STRUCT_CAST_TOPLEVEL, True),
    "foobar": (FOOBAR_SOURCE, FOOBAR_TOPLEVEL, True),
    "filter": (FILTER_SOURCE, FILTER_TOPLEVEL, True),
}
