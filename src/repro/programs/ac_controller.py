"""The AC-controller benchmark of Fig. 6 / Section 4.1, verbatim.

At ``depth`` 1 no input violates the assertion; at ``depth`` 2 the message
sequence (3, 0) does: message 3 with a cold room closes the door without
starting the AC, then message 0 makes the room hot — hot, closed, AC off.
Only values 0–3 are meaningful inputs; everything else is filtered, which
is exactly why random testing (2 x 2^-32 per pair, i.e. one in 2^64) never
finds the sequence while the directed search enumerates the meaningful
equivalence classes.
"""

AC_CONTROLLER_SOURCE = """
/* initially, */
int is_room_hot = 0;    /* room is not hot */
int is_door_closed = 0; /* and door is open */
int ac = 0;             /* so, ac is off */

void ac_controller(int message) {
  if (message == 0) is_room_hot = 1;
  if (message == 1) is_room_hot = 0;
  if (message == 2) {
    is_door_closed = 0;
    ac = 0;
  }
  if (message == 3) {
    is_door_closed = 1;
    if (is_room_hot) ac = 1;
  }
  if (is_room_hot && is_door_closed && !ac)
    abort(); /* check correctness */
}
"""

AC_CONTROLLER_TOPLEVEL = "ac_controller"

#: The error-triggering message sequence at depth 2 (paper, Section 4.1).
DEPTH2_ERROR_SEQUENCE = (3, 0)
