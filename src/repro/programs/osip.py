"""A generated oSIP-like SIP library (Section 4.3 of the paper).

The paper applied DART to oSIP 2.0.9 — ~30,000 lines of C exposing ~600
externally visible functions — and found that 65 % of them could be crashed
within 1,000 runs, almost always by the same pattern: "an oSIP function
takes as argument a pointer to a data structure and then de-references
later that pointer without checking first whether the pointer is non-NULL";
some functions do guard their arguments, most do not, and the documentation
does not say which are which.  It also found a security bug: the parser
copies the incoming packet into stack space obtained from ``alloca`` and
never checks the result, so a large message makes ``alloca`` return NULL
and the parser crash.

The original oSIP sources are not shippable here, so this module
*generates* a library with the same externally visible shape: ~600 exported
functions across allocator/list/URI/via/contact/header/body/message
modules, built from the accessor/mutator/clone/compare/walk templates that
dominate the real oSIP API, with a seeded choice of which functions guard
their pointer arguments (calibrated so that ~65 % are crashable), plus a
hand-written parser module containing the ``alloca`` bug.  The per-function
DART sweep and the alloca attack therefore exercise exactly the code paths
the paper describes.
"""

import random

#: Struct definitions shared by every module (each generated translation
#: unit is prelude + one module, so per-function compiles stay small).
PRELUDE = """
struct osip_node { int value; struct osip_node *next; };
struct osip_list { int nb_elt; struct osip_node *head; };
struct osip_uri { int scheme; int port; char *host; char *username; };
struct osip_param { char *name; char *value; int flags; };
struct osip_via { int version; int protocol; char *host; int port; };
struct osip_contact { int displayname; struct osip_uri *url; int tag; };
struct osip_header { char *hname; char *hvalue; int hflags; };
struct osip_body { char *text; int length; int content_type; };
struct osip_message {
  int status_code;
  int method;
  struct osip_uri *req_uri;
  struct osip_list *headers;
  struct osip_body *body;
};
"""

#: module name -> (struct tag, list of (field name, kind)) where kind is
#: "int" (plain scalar field) or "ptr" (pointer field).
_MODULE_STRUCTS = {
    "list": ("osip_list", [("nb_elt", "int"), ("head", "ptr")]),
    "uri": (
        "osip_uri",
        [("scheme", "int"), ("port", "int"), ("host", "ptr"),
         ("username", "ptr")],
    ),
    "param": (
        "osip_param",
        [("flags", "int"), ("name", "ptr"), ("value", "ptr")],
    ),
    "via": (
        "osip_via",
        [("version", "int"), ("protocol", "int"), ("port", "int"),
         ("host", "ptr")],
    ),
    "contact": (
        "osip_contact",
        [("displayname", "int"), ("tag", "int"), ("url", "ptr")],
    ),
    "header": (
        "osip_header",
        [("hflags", "int"), ("hname", "ptr"), ("hvalue", "ptr")],
    ),
    "body": (
        "osip_body",
        [("length", "int"), ("content_type", "int"), ("text", "ptr")],
    ),
    "message": (
        "osip_message",
        [("status_code", "int"), ("method", "int"), ("req_uri", "ptr"),
         ("headers", "ptr"), ("body", "ptr")],
    ),
}

#: The hand-written parser module with the paper's alloca security bug.
PARSER_MODULE = """
/* Internal helper: copies the packet; crashes if dst is NULL
 * (the crash is interprocedural, as in the oSIP report). */
int osip_util_buffer_copy(char *dst, char *src, int len) {
  memcpy(dst, src, len);
  dst[len] = 0;
  return 0;
}

/* The vulnerable entry point: the result of alloca() is never checked.
 * A message larger than the remaining stack makes alloca return NULL and
 * the copy helper crash -- remotely triggerable in the real oSIP. */
int osip_message_parse(struct osip_message *sip, char *buf, int length) {
  char *copy;
  int i;
  int separators;
  if (buf == NULL) return -1;
  if (length < 0) return -1;
  copy = (char *) alloca(length + 1);
  osip_util_buffer_copy(copy, buf, length);
  separators = 0;
  for (i = 0; i < length && i < 64; i++) {
    if (copy[i] == '|') separators = separators + 1;
  }
  if (sip == NULL) return -2;
  sip->status_code = 0;
  sip->method = separators;
  return 0;
}

/* A well-behaved sibling for contrast: checks its allocation. */
int osip_message_parse_checked(struct osip_message *sip, char *buf,
                               int length) {
  char *copy;
  if (sip == NULL) return -1;
  if (buf == NULL) return -1;
  if (length < 0) return -1;
  copy = (char *) alloca(length + 1);
  if (copy == NULL) return -3;
  osip_util_buffer_copy(copy, buf, length);
  sip->status_code = 0;
  return 0;
}

/* Driver used by the attack benchmark: build a packet of `size` bytes
 * containing no NUL and no '|' characters and feed it to the parser
 * (the paper's attack recipe). */
int osip_attack_probe(int size) {
  char *msg;
  struct osip_message sip;
  int result;
  if (size < 0) return -1;
  msg = (char *) malloc(size + 1);
  if (msg == NULL) return -2;
  memset(msg, 'A', size);
  msg[size] = 0;
  result = osip_message_parse(&sip, msg, size);
  free(msg);
  return result;
}
"""

#: Parser-module functions and whether the per-function DART sweep is
#: expected to crash them.  osip_message_parse crashes through the
#: unchecked alloca (random 32-bit lengths readily exceed the stack) and
#: through out-of-bounds copies of the one-cell driver buffer;
#: osip_attack_probe feeds it well-formed but arbitrarily large packets.
PARSER_FUNCTIONS = [
    ("osip_util_buffer_copy", True),
    ("osip_message_parse", True),
    ("osip_message_parse_checked", False),
    ("osip_attack_probe", True),
]


class OsipFunction:
    """Metadata about one generated exported function."""

    __slots__ = ("name", "module", "guarded", "takes_pointer", "crashable")

    def __init__(self, name, module, guarded, takes_pointer, crashable):
        self.name = name
        self.module = module
        self.guarded = guarded
        self.takes_pointer = takes_pointer
        self.crashable = crashable

    def __repr__(self):
        return "OsipFunction({!r}, crashable={})".format(
            self.name, self.crashable
        )


class OsipLibrary:
    """Deterministically generated oSIP-like library.

    ``seed`` fixes every generation choice; ``functions_per_module``
    scales the library (default sizes yield ~600 exported functions, the
    paper's figure).
    """

    def __init__(self, seed=2005, functions_per_module=74,
                 guard_fraction=0.29, scalar_fraction=0.08):
        self._rng = random.Random(seed)
        self._guard_fraction = guard_fraction
        self._scalar_fraction = scalar_fraction
        self.functions = []
        self._module_sources = {}
        for module in sorted(_MODULE_STRUCTS):
            self._module_sources[module] = self._generate_module(
                module, functions_per_module
            )
        self._module_sources["parser"] = PARSER_MODULE
        for name, crashable in PARSER_FUNCTIONS:
            self.functions.append(
                OsipFunction(name, "parser", not crashable, True, crashable)
            )

    # -- public API ----------------------------------------------------------

    @property
    def module_names(self):
        return sorted(self._module_sources)

    def source_for_module(self, module):
        """Compilable source: shared structs + one module's functions."""
        return PRELUDE + self._module_sources[module]

    def source_for_function(self, name):
        return self.source_for_module(self.function(name).module)

    def function(self, name):
        for entry in self.functions:
            if entry.name == name:
                return entry
        raise KeyError("no generated function named {!r}".format(name))

    def function_names(self):
        return [entry.name for entry in self.functions]

    def expected_crash_rate(self):
        crashable = sum(1 for entry in self.functions if entry.crashable)
        return crashable / len(self.functions)

    def full_source(self):
        """The whole library as one translation unit (for line counting)."""
        return PRELUDE + "".join(
            self._module_sources[m] for m in self.module_names
            if m != "parser"
        ) + PARSER_MODULE

    # -- generation ------------------------------------------------------------

    def _generate_module(self, module, count):
        struct_tag, fields = _MODULE_STRUCTS[module]
        int_fields = [f for f, kind in fields if kind == "int"]
        ptr_fields = [f for f, kind in fields if kind == "ptr"]
        chunks = ["\n/* ---- module {} ---- */\n".format(module)]
        for index in range(count):
            roll = self._rng.random()
            if roll < self._scalar_fraction:
                chunks.append(self._scalar_function(module, index))
                continue
            guarded = self._rng.random() < self._guard_fraction
            template = self._rng.choice(
                ("getter", "setter", "ptr_setter", "clone", "compare",
                 "walk", "init", "reset")
            )
            chunks.append(
                self._pointer_function(
                    module, index, struct_tag, int_fields, ptr_fields,
                    template, guarded,
                )
            )
        return "".join(chunks)

    def _scalar_function(self, module, index):
        name = "osip_{}_calc_{}".format(module, index)
        variant = self._rng.randrange(3)
        if variant == 0:
            body = (
                "  if (a > b) return a;\n"
                "  return b;\n"
            )
        elif variant == 1:
            body = (
                "  if (b == 0) return 0;\n"
                "  if (a < 0) return -a;\n"
                "  return a;\n"
            )
        else:
            body = (
                "  int r;\n"
                "  r = a * 31 + b;\n"
                "  if (r < 0) r = -r;\n"
                "  return r;\n"
            )
        self.functions.append(
            OsipFunction(name, module, True, False, False)
        )
        return "int {}(int a, int b) {{\n{}}}\n".format(name, body)

    def _pointer_function(self, module, index, struct_tag, int_fields,
                          ptr_fields, template, guarded):
        name = "osip_{}_{}_{}".format(module, template, index)
        struct = "struct " + struct_tag
        int_field = int_fields[index % len(int_fields)]
        guard = "  if (p == NULL) return -1;\n" if guarded else ""
        crashable = not guarded
        if template == "walk" and struct_tag != "osip_list":
            template = "getter"  # only lists have walkable nodes
        if template == "ptr_setter" and not ptr_fields:
            template = "setter"
        if template == "getter":
            body = "{}  return p->{};\n".format(guard, int_field)
            text = "int {}({} *p) {{\n{}}}\n".format(name, struct, body)
        elif template == "setter":
            body = "{}  p->{} = v;\n  return 0;\n".format(guard, int_field)
            text = "int {}({} *p, int v) {{\n{}}}\n".format(
                name, struct, body
            )
        elif template == "ptr_setter":
            ptr_field = ptr_fields[index % len(ptr_fields)]
            body = "{}  p->{} = s;\n  return 0;\n".format(guard, ptr_field)
            text = "int {}({} *p, char *s) {{\n{}}}\n".format(
                name, struct, body
            )
        elif template == "clone":
            body = (
                "{guard}"
                "  q = ({struct} *) malloc(sizeof({struct}));\n"
                "  if (q == NULL) return -2;\n"
                "  q->{field} = p->{field};\n"
                "  return q->{field};\n"
            ).format(guard=guard, struct=struct, field=int_field)
            text = (
                "int {name}({struct} *p) {{\n  {struct} *q;\n{body}}}\n"
            ).format(name=name, struct=struct, body=body)
        elif template == "compare":
            guard2 = (
                "  if (p == NULL) return -1;\n"
                "  if (q == NULL) return -1;\n"
                if guarded else ""
            )
            body = (
                "{}  if (p->{field} == q->{field}) return 0;\n"
                "  if (p->{field} < q->{field}) return -1;\n"
                "  return 1;\n"
            ).format(guard2, field=int_field)
            text = "int {}({} *p, {} *q) {{\n{}}}\n".format(
                name, struct, struct, body
            )
        elif template == "walk":
            body = (
                "{}"
                "  n = 0;\n"
                "  node = p->head;\n"
                "  while (node != NULL && n < 1000) {{\n"
                "    n = n + 1;\n"
                "    node = node->next;\n"
                "  }}\n"
                "  return n;\n"
            ).format(guard)
            text = (
                "int {}({} *p) {{\n  int n;\n  struct osip_node *node;\n"
                "{}}}\n"
            ).format(name, struct, body)
        elif template == "init":
            # Interprocedural: the unguarded variant delegates the
            # dereference to a helper that does not check either.
            helper = "osip_{}_init_helper_{}".format(module, index)
            helper_text = (
                "int {helper}({struct} *q) {{\n"
                "  q->{field} = 0;\n"
                "  return 0;\n"
                "}}\n"
            ).format(helper=helper, struct=struct, field=int_field)
            body = "{}  return {}(p);\n".format(guard, helper)
            text = helper_text + "int {}({} *p) {{\n{}}}\n".format(
                name, struct, body
            )
        else:  # reset
            assigns = "".join(
                "  p->{} = 0;\n".format(field) for field in int_fields
            )
            body = guard + assigns + "  return 0;\n"
            text = "int {}({} *p) {{\n{}}}\n".format(name, struct, body)
        self.functions.append(
            OsipFunction(name, module, guarded, True, crashable)
        )
        return text
