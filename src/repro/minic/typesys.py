"""The mini-C type system.

Byte-accurate sizes and struct field offsets matter for this reproduction:
the paper's Section 2.5 example overwrites a struct field through a
``char *`` cast at offset ``sizeof(int)``, and the oSIP study depends on
pointer-sized reasoning.  Types therefore model a conventional 32-bit C
target: ``char`` is 1 byte, ``short`` 2, ``int``/``long``/pointers 4, with
natural alignment.
"""

from repro.minic.errors import SemanticError


class CType:
    """Base class for mini-C types.

    Types are structural value objects: equality compares shape (struct
    types compare by tag identity, as in C).
    """

    size = 0
    alignment = 1

    def is_integer(self):
        return isinstance(self, IntType)

    def is_pointer(self):
        return isinstance(self, PointerType)

    def is_array(self):
        return isinstance(self, ArrayType)

    def is_struct(self):
        return isinstance(self, StructType)

    def is_void(self):
        return isinstance(self, VoidType)

    def is_function(self):
        return isinstance(self, FunctionType)

    def is_scalar(self):
        return self.is_integer() or self.is_pointer()

    def is_complete(self):
        return True

    def decay(self):
        """Array-to-pointer decay; other types are returned unchanged."""
        if isinstance(self, ArrayType):
            return PointerType(self.element)
        return self

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result


class VoidType(CType):
    size = 0
    alignment = 1

    def is_complete(self):
        return False

    def __eq__(self, other):
        return isinstance(other, VoidType)

    def __hash__(self):
        return hash("void")

    def __str__(self):
        return "void"


class IntType(CType):
    """A (possibly unsigned) integer type of 1, 2 or 4 bytes."""

    def __init__(self, size, signed=True, name=None):
        if size not in (1, 2, 4):
            raise ValueError("unsupported integer size {}".format(size))
        self.size = size
        self.alignment = size
        self.signed = signed
        self._name = name

    @property
    def min_value(self):
        if self.signed:
            return -(1 << (8 * self.size - 1))
        return 0

    @property
    def max_value(self):
        if self.signed:
            return (1 << (8 * self.size - 1)) - 1
        return (1 << (8 * self.size)) - 1

    def __eq__(self, other):
        return (
            isinstance(other, IntType)
            and other.size == self.size
            and other.signed == self.signed
        )

    def __hash__(self):
        return hash(("int", self.size, self.signed))

    def __str__(self):
        if self._name:
            return self._name
        base = {1: "char", 2: "short", 4: "int"}[self.size]
        return base if self.signed else "unsigned " + base


#: The canonical built-in integer types.
CHAR = IntType(1, signed=True, name="char")
UCHAR = IntType(1, signed=False, name="unsigned char")
SHORT = IntType(2, signed=True, name="short")
USHORT = IntType(2, signed=False, name="unsigned short")
INT = IntType(4, signed=True, name="int")
UINT = IntType(4, signed=False, name="unsigned int")
VOID = VoidType()


class PointerType(CType):
    size = 4
    alignment = 4

    def __init__(self, pointee):
        self.pointee = pointee

    def __eq__(self, other):
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(("ptr", self.pointee))

    def __str__(self):
        return "{}*".format(self.pointee)


class ArrayType(CType):
    def __init__(self, element, length):
        if length is not None and length < 0:
            raise SemanticError("negative array length")
        self.element = element
        self.length = length

    @property
    def size(self):
        if self.length is None:
            return 0
        return self.element.size * self.length

    @property
    def alignment(self):
        return self.element.alignment

    def is_complete(self):
        return self.length is not None

    def __eq__(self, other):
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.length == self.length
        )

    def __hash__(self):
        return hash(("array", self.element, self.length))

    def __str__(self):
        return "{}[{}]".format(self.element, self.length if self.length else "")


class StructField:
    """A named member of a struct, with its byte offset once laid out."""

    __slots__ = ("name", "ctype", "offset")

    def __init__(self, name, ctype, offset=0):
        self.name = name
        self.ctype = ctype
        self.offset = offset

    def __repr__(self):
        return "StructField({!r}, {}, offset={})".format(
            self.name, self.ctype, self.offset
        )


def _round_up(value, alignment):
    return (value + alignment - 1) // alignment * alignment


class StructType(CType):
    """A struct (or union) with natural-alignment layout.

    Structs may be declared before being defined (``struct foo;``); they
    become complete once :meth:`define` assigns fields.  Identity (the tag)
    determines equality, exactly as in C.  A union lays every field at
    offset 0 and is as large as its widest member.
    """

    def __init__(self, tag, is_union=False):
        self.tag = tag
        self.is_union = is_union
        self.fields = None
        self._size = 0
        self._alignment = 1

    def define(self, fields):
        if self.fields is not None:
            raise SemanticError("redefinition of {} {}".format(
                "union" if self.is_union else "struct", self.tag
            ))
        offset = 0
        alignment = 1
        size = 0
        laid_out = []
        for field in fields:
            if not field.ctype.is_complete():
                raise SemanticError(
                    "field {!r} has incomplete type".format(field.name)
                )
            if self.is_union:
                laid_out.append(StructField(field.name, field.ctype, 0))
                size = max(size, field.ctype.size)
            else:
                offset = _round_up(offset, field.ctype.alignment)
                laid_out.append(
                    StructField(field.name, field.ctype, offset)
                )
                offset += field.ctype.size
                size = offset
            alignment = max(alignment, field.ctype.alignment)
        self.fields = laid_out
        self._alignment = alignment
        self._size = _round_up(size, alignment)

    @property
    def size(self):
        return self._size

    @property
    def alignment(self):
        return self._alignment

    def is_complete(self):
        return self.fields is not None

    def field(self, name):
        if self.fields is None:
            raise SemanticError(
                "use of incomplete struct {}".format(self.tag)
            )
        for field in self.fields:
            if field.name == name:
                return field
        raise SemanticError(
            "struct {} has no field {!r}".format(self.tag, name)
        )

    def has_field(self, name):
        return self.fields is not None and any(
            f.name == name for f in self.fields
        )

    def __eq__(self, other):
        return self is other

    def __hash__(self):
        return id(self)

    def __str__(self):
        return "{} {}".format(
            "union" if self.is_union else "struct", self.tag
        )


class FunctionType(CType):
    """A function signature: return type plus ordered parameter types."""

    size = 0
    alignment = 1

    def __init__(self, return_type, param_types, variadic=False):
        self.return_type = return_type
        self.param_types = tuple(param_types)
        self.variadic = variadic

    def __eq__(self, other):
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
            and other.variadic == self.variadic
        )

    def __hash__(self):
        return hash(("fn", self.return_type, self.param_types, self.variadic))

    def __str__(self):
        params = ", ".join(str(p) for p in self.param_types) or "void"
        return "{}({})".format(self.return_type, params)


def integer_promote(ctype):
    """C integer promotion: anything narrower than int becomes int."""
    if isinstance(ctype, IntType) and ctype.size < 4:
        return INT
    return ctype


def usual_arithmetic_conversion(left, right):
    """The usual arithmetic conversions for two integer operands."""
    left = integer_promote(left)
    right = integer_promote(right)
    if not left.signed or not right.signed:
        return UINT
    return INT


def is_null_pointer_constant(expr_ctype, expr_value):
    """True for a literal 0 (or NULL, which parses to literal 0)."""
    return expr_ctype is not None and expr_ctype.is_integer() and expr_value == 0
