"""A hand-written lexer for mini-C.

Supports line (``//``) and block (``/* */``) comments, decimal / hex / octal
integer literals (with optional ``u``/``l`` suffixes, which are accepted and
ignored), character literals with the usual escape sequences, and string
literals (decoded to ``bytes``, NUL-terminated by the lowering pass when
interned).
"""

from repro.minic.errors import LexError, SourceLocation
from repro.minic.tokens import (
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATORS,
    STRING_LIT,
    Token,
)

_SIMPLE_ESCAPES = {
    "n": 10,
    "t": 9,
    "r": 13,
    "0": 0,
    "\\": 92,
    "'": 39,
    '"': 34,
    "a": 7,
    "b": 8,
    "f": 12,
    "v": 11,
}


class Lexer:
    """Turns mini-C source text into a list of :class:`Token` objects."""

    def __init__(self, source, filename="<source>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self):
        """Scan the whole input and return tokens, ending with an EOF token."""
        tokens = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= len(self._source):
                tokens.append(Token(EOF, "", None, self._location()))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _location(self):
        return SourceLocation(self._filename, self._line, self._column)

    def _peek(self, offset=0):
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self, count=1):
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self):
        while self._pos < len(self._source):
            ch = self._peek()
            if ch in " \t\r\n\f\v":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines (e.g. ``#include``) are tolerated and
                # skipped so that paper-style listings lex unchanged.
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self):
        location = self._location()
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            return self._lex_identifier(location)
        if ch.isdigit():
            return self._lex_number(location)
        if ch == "'":
            return self._lex_char(location)
        if ch == '"':
            return self._lex_string(location)
        for punct in PUNCTUATORS:
            if self._source.startswith(punct, self._pos):
                self._advance(len(punct))
                return Token(PUNCT, punct, punct, location)
        raise LexError("unexpected character {!r}".format(ch), location)

    def _lex_identifier(self, location):
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        kind = KEYWORD if text in KEYWORDS else IDENT
        return Token(kind, text, text, location)

    def _lex_number(self, location):
        start = self._pos
        # NB: membership tests against string constants must exclude the
        # empty string _peek() yields at EOF ("" is a substring of
        # everything), or a number at end-of-input mislexes/loops.
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex_digit(self._peek()):
                raise LexError("malformed hex literal", location)
            while self._is_hex_digit(self._peek()):
                self._advance()
            value = int(self._source[start : self._pos], 16)
        else:
            while self._peek().isdigit():
                self._advance()
            text = self._source[start : self._pos]
            if text.startswith("0") and len(text) > 1:
                try:
                    value = int(text, 8)
                except ValueError:
                    raise LexError("malformed octal literal", location)
            else:
                value = int(text, 10)
        # Accept and discard integer suffixes: all our ints are 32-bit.
        while self._peek() in ("u", "U", "l", "L"):
            self._advance()
        if self._peek().isalpha():
            raise LexError("malformed integer literal", location)
        return Token(INT_LIT, self._source[start : self._pos], value, location)

    @staticmethod
    def _is_hex_digit(ch):
        return bool(ch) and ch in "0123456789abcdefABCDEF"

    def _lex_escape(self, location):
        """Decode one escape sequence after the backslash; returns its byte."""
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated escape sequence", location)
        if ch == "x":
            self._advance()
            digits = ""
            while self._is_hex_digit(self._peek()):
                digits += self._peek()
                self._advance()
            if not digits:
                raise LexError("malformed hex escape", location)
            return int(digits, 16) & 0xFF
        if ch in _SIMPLE_ESCAPES:
            self._advance()
            return _SIMPLE_ESCAPES[ch]
        raise LexError("unknown escape sequence \\{}".format(ch), location)

    def _lex_char(self, location):
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "":
            raise LexError("unterminated character literal", location)
        if ch == "\\":
            self._advance()
            value = self._lex_escape(location)
        elif ch == "'":
            raise LexError("empty character literal", location)
        else:
            value = ord(ch)
            self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", location)
        self._advance()
        return Token(CHAR_LIT, "'{}'".format(chr(value)), value, location)

    def _lex_string(self, location):
        self._advance()  # opening quote
        data = bytearray()
        while True:
            ch = self._peek()
            if ch == "" or ch == "\n":
                raise LexError("unterminated string literal", location)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                data.append(self._lex_escape(location))
            else:
                data.append(ord(ch) & 0xFF)
                self._advance()
        return Token(STRING_LIT, repr(bytes(data)), bytes(data), location)


def tokenize(source, filename="<source>"):
    """Convenience wrapper: lex ``source`` and return the token list."""
    return Lexer(source, filename=filename).tokenize()
