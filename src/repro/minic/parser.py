"""Recursive-descent parser for mini-C.

The accepted language is the C subset exercised by the paper: scalar and
aggregate types (``char``/``short``/``int``/``long``, signed and unsigned,
pointers, arrays, structs, enums, typedefs), the full expression grammar with
C precedence (including casts, ``sizeof``, short-circuit logic and the
ternary operator), and the statement forms ``if``/``else``, ``while``,
``do``/``while``, ``for``, ``return``, ``break``, ``continue``, blocks,
declarations, ``assert(e);`` and ``abort();``.

Typedef names are tracked during parsing so that casts such as
``(osip_list_t *) p`` and declaration statements are disambiguated exactly
as a C compiler would.
"""

from repro.minic import ast_nodes as ast
from repro.minic.errors import ParseError
from repro.minic.lexer import tokenize
from repro.minic.tokens import (
    CHAR_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    PUNCT,
    STRING_LIT,
)

#: Keywords that may begin a type.
_TYPE_KEYWORDS = frozenset(
    ["int", "char", "long", "short", "unsigned", "signed", "void",
     "struct", "union", "enum", "const"]
)

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                         "<<=", ">>="])

#: Binary operator precedence table (larger binds tighter).  ``&&``/``||``
#: are parsed here but lowered to control flow later.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class Parser:
    """Parses a token stream into a :class:`repro.minic.ast_nodes.Program`."""

    def __init__(self, tokens, filename="<source>"):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._typedefs = set()
        self._struct_tags = set()

    # -- token helpers -------------------------------------------------

    def _peek(self, offset=0):
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self):
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def _check_punct(self, *names):
        return self._peek().is_punct(*names)

    def _check_keyword(self, *names):
        return self._peek().is_keyword(*names)

    def _accept_punct(self, *names):
        if self._check_punct(*names):
            return self._advance()
        return None

    def _accept_keyword(self, *names):
        if self._check_keyword(*names):
            return self._advance()
        return None

    def _expect_punct(self, name):
        token = self._peek()
        if not token.is_punct(name):
            raise ParseError(
                "expected {!r}, found {!r}".format(name, token.text or "<eof>"),
                token.location,
            )
        return self._advance()

    def _expect_keyword(self, name):
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(
                "expected {!r}, found {!r}".format(name, token.text or "<eof>"),
                token.location,
            )
        return self._advance()

    def _expect_ident(self):
        token = self._peek()
        if token.kind != IDENT:
            raise ParseError(
                "expected identifier, found {!r}".format(token.text or "<eof>"),
                token.location,
            )
        return self._advance()

    # -- entry point -----------------------------------------------------

    def parse_program(self):
        declarations = []
        start = self._peek().location
        while self._peek().kind != EOF:
            declarations.extend(self._parse_toplevel())
        return ast.Program(declarations, start)

    # -- top-level declarations -------------------------------------------

    def _parse_toplevel(self):
        token = self._peek()
        if token.is_keyword("typedef"):
            return [self._parse_typedef()]
        if token.is_keyword("struct", "union"):
            # Could be a bare struct definition/forward declaration or the
            # start of a variable/function declaration.
            saved = self._pos
            decl = self._try_parse_bare_struct()
            if decl is not None:
                return [decl]
            self._pos = saved
        if token.is_keyword("enum"):
            saved = self._pos
            decl = self._try_parse_bare_enum()
            if decl is not None:
                return [decl]
            self._pos = saved
        return self._parse_declaration(toplevel=True)

    def _parse_typedef(self):
        location = self._expect_keyword("typedef").location
        base = self._parse_type_specifier()
        name_token, type_expr = self._parse_declarator(base)
        self._expect_punct(";")
        self._typedefs.add(name_token.text)
        return ast.TypedefDecl(name_token.text, type_expr, location)

    def _try_parse_bare_struct(self):
        """Parse ``struct tag { ... };`` or ``struct tag;``; None otherwise."""
        keyword = self._advance()  # struct / union
        location = keyword.location
        is_union = keyword.text == "union"
        if self._peek().kind != IDENT:
            return None
        tag = self._advance().text
        if self._accept_punct("{"):
            fields = self._parse_struct_fields()
            if self._accept_punct(";"):
                self._struct_tags.add(tag)
                return ast.StructDecl(tag, fields, location,
                                      is_union=is_union)
            return None
        if self._accept_punct(";"):
            self._struct_tags.add(tag)
            return ast.StructDecl(tag, None, location, is_union=is_union)
        return None

    def _try_parse_bare_enum(self):
        location = self._advance().location  # enum
        tag = None
        if self._peek().kind == IDENT:
            tag = self._advance().text
        if not self._check_punct("{"):
            return None
        enumerators = self._parse_enumerators()
        if self._accept_punct(";"):
            return ast.EnumDecl(tag, enumerators, location)
        return None

    def _parse_struct_fields(self):
        fields = []
        while not self._accept_punct("}"):
            base = self._parse_type_specifier()
            while True:
                name_token, type_expr = self._parse_declarator(base)
                fields.append((name_token.text, type_expr))
                if not self._accept_punct(","):
                    break
            self._expect_punct(";")
        return fields

    def _parse_enumerators(self):
        self._expect_punct("{")
        enumerators = []
        while not self._accept_punct("}"):
            name_token = self._expect_ident()
            value = None
            if self._accept_punct("="):
                value = self._parse_conditional()
            enumerators.append((name_token.text, value))
            if not self._accept_punct(","):
                self._expect_punct("}")
                break
        return enumerators

    def _parse_declaration(self, toplevel):
        """A function definition/prototype or one or more variable decls."""
        is_extern = bool(self._accept_keyword("extern"))
        self._accept_keyword("static")  # accepted, same semantics here
        base = self._parse_type_specifier()
        first_token = self._peek()
        name_token, type_expr = self._parse_declarator(base)
        if self._check_punct("(") and toplevel:
            return [self._parse_function(name_token, type_expr, is_extern)]
        decls = []
        decl = self._finish_var_decl(name_token, type_expr, is_extern)
        decls.append(decl)
        while self._accept_punct(","):
            name_token, type_expr = self._parse_declarator(base)
            if self._check_punct("("):
                raise ParseError(
                    "function declarator not allowed here", name_token.location
                )
            decls.append(self._finish_var_decl(name_token, type_expr, is_extern))
        self._expect_punct(";")
        if not decls:
            raise ParseError("empty declaration", first_token.location)
        return decls

    def _finish_var_decl(self, name_token, type_expr, is_extern):
        init = None
        if self._accept_punct("="):
            init = self._parse_assignment()
        return ast.VarDecl(
            name_token.text, type_expr, init, name_token.location,
            is_extern=is_extern,
        )

    def _parse_function(self, name_token, return_type_expr, is_extern):
        self._expect_punct("(")
        params = []
        variadic = False
        if not self._check_punct(")"):
            if self._check_keyword("void") and self._peek(1).is_punct(")"):
                self._advance()
            else:
                while True:
                    if self._accept_punct("..."):
                        variadic = True
                        break
                    base = self._parse_type_specifier()
                    pname = None
                    location = self._peek().location
                    if self._check_punct("*") or self._peek().kind == IDENT:
                        tok, ptype = self._parse_declarator(
                            base, allow_abstract=True
                        )
                        pname = tok.text if tok is not None else None
                        params.append(ast.ParamDecl(pname, ptype, location))
                    else:
                        params.append(ast.ParamDecl(None, base, location))
                    if not self._accept_punct(","):
                        break
        self._expect_punct(")")
        if variadic:
            raise ParseError("variadic functions are not supported",
                             name_token.location)
        if self._accept_punct(";"):
            return ast.FunctionDecl(
                name_token.text, return_type_expr, params, name_token.location
            )
        if is_extern:
            raise ParseError(
                "extern function with a body", name_token.location
            )
        body = self._parse_block()
        return ast.FunctionDef(
            name_token.text, return_type_expr, params, body,
            name_token.location,
        )

    # -- types ----------------------------------------------------------

    def _starts_type(self, token=None):
        token = token or self._peek()
        if token.kind == KEYWORD and token.text in _TYPE_KEYWORDS:
            return True
        return token.kind == IDENT and token.text in self._typedefs

    def _parse_type_specifier(self):
        """Parse the base type (no pointers/arrays, which declarators add)."""
        while self._accept_keyword("const"):
            pass
        token = self._peek()
        if token.is_keyword("struct", "union"):
            self._advance()
            if self._peek().kind != IDENT:
                raise ParseError("anonymous structs are not supported",
                                 token.location)
            tag = self._advance().text
            self._struct_tags.add(tag)
            # Inline definition in a type position is not supported; struct
            # bodies must appear as their own top-level declaration.
            result = ast.StructTypeExpr(tag, is_union=token.text == "union")
        elif token.is_keyword("enum"):
            self._advance()
            if self._peek().kind == IDENT:
                self._advance()
            result = ast.BaseTypeExpr("int")
        elif token.is_keyword("void"):
            self._advance()
            result = ast.BaseTypeExpr("void")
        elif token.kind == KEYWORD and token.text in (
            "int", "char", "long", "short", "unsigned", "signed"
        ):
            words = []
            while self._peek().kind == KEYWORD and self._peek().text in (
                "int", "char", "long", "short", "unsigned", "signed", "const"
            ):
                word = self._advance().text
                if word != "const":
                    words.append(word)
            result = ast.BaseTypeExpr(" ".join(words))
        elif token.kind == IDENT and token.text in self._typedefs:
            self._advance()
            result = ast.NamedTypeExpr(token.text)
        else:
            raise ParseError(
                "expected a type, found {!r}".format(token.text or "<eof>"),
                token.location,
            )
        while self._accept_keyword("const"):
            pass
        return result

    def _parse_declarator(self, base, allow_abstract=False):
        """Parse ``* ... name [N]...`` and return (name token, TypeExpr)."""
        type_expr = base
        while self._accept_punct("*"):
            while self._accept_keyword("const"):
                pass
            type_expr = ast.PointerTypeExpr(type_expr)
        name_token = None
        if self._peek().kind == IDENT:
            name_token = self._advance()
        elif not allow_abstract:
            token = self._peek()
            raise ParseError(
                "expected identifier in declarator, found {!r}".format(
                    token.text or "<eof>"
                ),
                token.location,
            )
        # Array suffixes apply outside-in: ``int a[2][3]`` is array 2 of
        # array 3 of int.
        suffixes = []
        while self._accept_punct("["):
            if self._check_punct("]"):
                suffixes.append(None)
            else:
                suffixes.append(self._parse_conditional())
            self._expect_punct("]")
        for length in reversed(suffixes):
            type_expr = ast.ArrayTypeExpr(type_expr, length)
        return name_token, type_expr

    def _parse_abstract_type(self):
        """A type name as used in casts and ``sizeof(type)``."""
        base = self._parse_type_specifier()
        type_expr = base
        while self._accept_punct("*"):
            while self._accept_keyword("const"):
                pass
            type_expr = ast.PointerTypeExpr(type_expr)
        suffixes = []
        while self._accept_punct("["):
            if self._check_punct("]"):
                suffixes.append(None)
            else:
                suffixes.append(self._parse_conditional())
            self._expect_punct("]")
        for length in reversed(suffixes):
            type_expr = ast.ArrayTypeExpr(type_expr, length)
        return type_expr

    # -- statements --------------------------------------------------------

    def _parse_block(self):
        location = self._expect_punct("{").location
        statements = []
        while not self._accept_punct("}"):
            statements.append(self._parse_statement())
        return ast.Block(statements, location)

    def _parse_statement(self):
        token = self._peek()
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("return"):
            self._advance()
            value = None
            if not self._check_punct(";"):
                value = self._parse_expression()
            self._expect_punct(";")
            return ast.Return(value, token.location)
        if token.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return ast.Break(token.location)
        if token.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return ast.Continue(token.location)
        if token.is_keyword("assert"):
            self._advance()
            self._expect_punct("(")
            expr = self._parse_expression()
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.AssertStmt(expr, token.location)
        if token.is_keyword("abort"):
            self._advance()
            self._expect_punct("(")
            self._expect_punct(")")
            self._expect_punct(";")
            return ast.AbortStmt(token.location)
        if token.is_keyword("switch"):
            return self._parse_switch()
        if token.is_keyword("goto", "case", "default"):
            raise ParseError(
                "{!r} is not supported here by mini-C".format(token.text),
                token.location,
            )
        if token.is_punct(";"):
            self._advance()
            return ast.ExprStmt(None, token.location)
        if self._starts_type(token) and not self._is_expression_start():
            return self._parse_decl_statement()
        expr = self._parse_expression()
        self._expect_punct(";")
        return ast.ExprStmt(expr, token.location)

    def _is_expression_start(self):
        """Disambiguate ``name * x;`` style cases: a typedef name followed by
        anything other than a declarator shape is an expression."""
        token = self._peek()
        if token.kind != IDENT:
            return False
        if token.text not in self._typedefs:
            return True
        following = self._peek(1)
        return not (
            following.is_punct("*") or following.kind == IDENT
        )

    def _parse_decl_statement(self):
        location = self._peek().location
        self._accept_keyword("static")
        base = self._parse_type_specifier()
        decls = []
        while True:
            name_token, type_expr = self._parse_declarator(base)
            decls.append(self._finish_var_decl(name_token, type_expr, False))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return ast.DeclStmt(decls, location)

    def _parse_switch(self):
        location = self._expect_keyword("switch").location
        self._expect_punct("(")
        expr = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        entries = []
        while not self._accept_punct("}"):
            if self._accept_keyword("case"):
                value = self._parse_conditional()
                self._expect_punct(":")
                entries.append(("case", value))
            elif self._accept_keyword("default"):
                self._expect_punct(":")
                entries.append(("default", None))
            else:
                entries.append(("stmt", self._parse_statement()))
        return ast.Switch(expr, entries, location)

    def _parse_if(self):
        location = self._expect_keyword("if").location
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        then = self._parse_statement()
        otherwise = None
        if self._accept_keyword("else"):
            otherwise = self._parse_statement()
        return ast.If(cond, then, otherwise, location)

    def _parse_while(self):
        location = self._expect_keyword("while").location
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.While(cond, body, location)

    def _parse_do_while(self):
        location = self._expect_keyword("do").location
        body = self._parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expression()
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.DoWhile(body, cond, location)

    def _parse_for(self):
        location = self._expect_keyword("for").location
        self._expect_punct("(")
        init = None
        if not self._check_punct(";"):
            if self._starts_type() and not self._is_expression_start():
                init = self._parse_decl_statement()
            else:
                init = ast.ExprStmt(self._parse_expression(), location)
                self._expect_punct(";")
        else:
            self._advance()
        if init is None and not isinstance(init, ast.Stmt):
            pass
        cond = None
        if not self._check_punct(";"):
            cond = self._parse_expression()
        self._expect_punct(";")
        step = None
        if not self._check_punct(")"):
            step = self._parse_expression()
        self._expect_punct(")")
        body = self._parse_statement()
        return ast.For(init, cond, step, body, location)

    # -- expressions -------------------------------------------------------

    def _parse_expression(self):
        expr = self._parse_assignment()
        while self._check_punct(","):
            location = self._advance().location
            right = self._parse_assignment()
            expr = ast.Comma(expr, right, location)
        return expr

    def _parse_assignment(self):
        left = self._parse_conditional()
        token = self._peek()
        if token.kind == PUNCT and token.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(token.text, left, value, token.location)
        return left

    def _parse_conditional(self):
        cond = self._parse_binary(1)
        if self._check_punct("?"):
            location = self._advance().location
            then = self._parse_expression()
            self._expect_punct(":")
            otherwise = self._parse_conditional()
            return ast.Conditional(cond, then, otherwise, location)
        return cond

    def _parse_binary(self, min_precedence):
        left = self._parse_unary()
        while True:
            token = self._peek()
            precedence = _BINARY_PRECEDENCE.get(token.text) \
                if token.kind == PUNCT else None
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.text, left, right, token.location)

    def _parse_unary(self):
        token = self._peek()
        if token.kind == PUNCT and token.text in ("-", "!", "~", "*", "&",
                                                  "+", "++", "--"):
            self._advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(token.text, operand, token.location)
        if token.is_keyword("sizeof"):
            self._advance()
            if self._check_punct("(") and self._starts_type(self._peek(1)):
                self._expect_punct("(")
                type_expr = self._parse_abstract_type()
                self._expect_punct(")")
                return ast.SizeofType(type_expr, token.location)
            operand = self._parse_unary()
            return ast.SizeofExpr(operand, token.location)
        if token.is_punct("(") and self._starts_type(self._peek(1)):
            # A cast, unless the typedef-looking identifier is actually used
            # as a value; ``(name)`` followed by a binary operator would be
            # ambiguous but mini-C resolves it as a cast like C does.
            self._advance()
            type_expr = self._parse_abstract_type()
            self._expect_punct(")")
            operand = self._parse_unary()
            return ast.Cast(type_expr, operand, token.location)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.is_punct("["):
                self._advance()
                index = self._parse_expression()
                self._expect_punct("]")
                expr = ast.Index(expr, index, token.location)
            elif token.is_punct("."):
                self._advance()
                name = self._expect_ident()
                expr = ast.Member(expr, name.text, False, token.location)
            elif token.is_punct("->"):
                self._advance()
                name = self._expect_ident()
                expr = ast.Member(expr, name.text, True, token.location)
            elif token.is_punct("++", "--"):
                self._advance()
                expr = ast.Postfix(token.text, expr, token.location)
            else:
                return expr

    def _parse_primary(self):
        token = self._peek()
        if token.kind == INT_LIT or token.kind == CHAR_LIT:
            self._advance()
            return ast.IntLit(token.value, token.location)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.IntLit(0, token.location)
        if token.kind == STRING_LIT:
            self._advance()
            return ast.StringLit(token.value, token.location)
        if token.kind == IDENT:
            self._advance()
            if self._check_punct("("):
                return self._parse_call(token)
            return ast.Ident(token.text, token.location)
        if token.is_keyword("abort"):
            # ``abort()`` in expression position (e.g. ``x ? abort() : 0``)
            # is not supported; keep it a statement as in the paper listings.
            raise ParseError("abort() must be used as a statement",
                             token.location)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        raise ParseError(
            "expected an expression, found {!r}".format(token.text or "<eof>"),
            token.location,
        )

    def _parse_call(self, name_token):
        self._expect_punct("(")
        args = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_assignment())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return ast.Call(name_token.text, args, name_token.location)


def parse_program(source, filename="<source>"):
    """Lex and parse mini-C source text into a Program AST."""
    tokens = tokenize(source, filename=filename)
    return Parser(tokens, filename=filename).parse_program()
