"""Lowering: checked AST -> RAM-machine IR.

Control flow is flattened into conditional branches and jumps.  The
short-circuit operators ``&&``/``||``, the ternary operator and ``assert``
are compiled into explicit branches, so each primitive predicate becomes one
:class:`repro.minic.ir.Branch` instruction that the directed search can
target individually (see the paper's ``foobar`` discussion in Section 2.5).

Side-effect ordering note: when a short-circuit or ternary expression is
used in value position its evaluation is hoisted in front of the enclosing
full expression.  C leaves the relative order of such side effects
unspecified, so this is a legal evaluation order.
"""

from repro.minic import ast_nodes as ast
from repro.minic import typesys as ts
from repro.minic.errors import LoweringError
from repro.minic.ir import (
    AbortInstr,
    Branch,
    Eval,
    FrameSlot,
    GlobalVar,
    IRFunction,
    Jump,
    Label,
    Module,
    Ret,
    StringRef,
)
from repro.minic.symbols import ENUM_CONST, LOCAL, Symbol


def _round_up(value, alignment):
    return (value + alignment - 1) // alignment * alignment




class FunctionLowerer:
    """Lowers one function definition to an :class:`IRFunction`."""

    def __init__(self, func_def, string_indexes):
        self._def = func_def
        self._string_indexes = string_indexes
        self._instrs = []
        self._frame_offset = 0
        self._param_slots = []
        self._break_targets = []     # loops and switches
        self._continue_targets = []  # loops only
        self._temp_counter = 0

    def lower(self):
        for param in self._def.params:
            slot = self._allocate(param.symbol)
            self._param_slots.append(slot)
        self._lower_stmt(self._def.body)
        self._emit(Ret(None, self._def.location))
        self._resolve_labels()
        return IRFunction(
            self._def.name,
            self._def.ftype,
            self._param_slots,
            _round_up(self._frame_offset, 4),
            self._instrs,
            self._def.location,
        )

    # -- frame management ---------------------------------------------------

    def _allocate(self, symbol):
        ctype = symbol.ctype
        size = max(ctype.size, 1)
        self._frame_offset = _round_up(self._frame_offset, ctype.alignment)
        symbol.frame_offset = self._frame_offset
        slot = FrameSlot(symbol.name, ctype, self._frame_offset)
        self._frame_offset += size
        return slot

    def _new_temp(self, ctype, location):
        self._temp_counter += 1
        symbol = Symbol("$t{}".format(self._temp_counter), LOCAL, ctype)
        self._allocate(symbol)
        return symbol, location

    def _temp_ident(self, symbol, ctype, location):
        ident = ast.Ident(symbol.name, location)
        ident.symbol = symbol
        ident.ctype = ctype
        ident.is_lvalue = True
        return ident

    # -- instruction emission ----------------------------------------------

    def _emit(self, instr):
        self._instrs.append(instr)

    def _new_label(self):
        return Label()

    def _mark(self, label):
        if label.index is not None:
            raise LoweringError("label marked twice")
        label.index = len(self._instrs)

    def _resolve_labels(self):
        for instr in self._instrs:
            if isinstance(instr, (Branch, Jump)):
                label = instr.target
                if isinstance(label, Label):
                    if label.index is None:
                        raise LoweringError("unresolved label")
                    instr.target = label.index

    # -- statements ----------------------------------------------------------

    def _lower_stmt(self, stmt):
        handler = getattr(self, "_lower_" + type(stmt).__name__.lower())
        handler(stmt)

    def _lower_block(self, stmt):
        for inner in stmt.statements:
            self._lower_stmt(inner)

    def _lower_exprstmt(self, stmt):
        if stmt.expr is not None:
            expr = self._flatten(stmt.expr)
            self._emit(Eval(expr, stmt.location))

    def _lower_declstmt(self, stmt):
        for decl in stmt.decls:
            self._allocate(decl.symbol)
            if decl.init is not None:
                target = self._temp_ident(
                    decl.symbol, decl.ctype, decl.location
                )
                value = self._flatten(decl.init)
                assign = ast.Assign("=", target, value, decl.location)
                assign.ctype = decl.ctype
                self._emit(Eval(assign, decl.location))

    def _lower_if(self, stmt):
        then_label = self._new_label()
        else_label = self._new_label()
        end_label = self._new_label() if stmt.otherwise else else_label
        self._lower_condition(stmt.cond, then_label, else_label)
        self._mark(then_label)
        self._lower_stmt(stmt.then)
        if stmt.otherwise is not None:
            self._emit(Jump(end_label, stmt.location))
            self._mark(else_label)
            self._lower_stmt(stmt.otherwise)
            self._mark(end_label)
        else:
            self._mark(else_label)

    def _lower_while(self, stmt):
        cond_label = self._new_label()
        body_label = self._new_label()
        end_label = self._new_label()
        self._mark(cond_label)
        self._lower_condition(stmt.cond, body_label, end_label)
        self._mark(body_label)
        self._in_loop(stmt.body, end_label, cond_label)
        self._emit(Jump(cond_label, stmt.location))
        self._mark(end_label)

    def _in_loop(self, body, break_label, continue_label):
        self._break_targets.append(break_label)
        self._continue_targets.append(continue_label)
        try:
            self._lower_stmt(body)
        finally:
            self._break_targets.pop()
            self._continue_targets.pop()

    def _lower_dowhile(self, stmt):
        body_label = self._new_label()
        cond_label = self._new_label()
        end_label = self._new_label()
        self._mark(body_label)
        self._in_loop(stmt.body, end_label, cond_label)
        self._mark(cond_label)
        self._lower_condition(stmt.cond, body_label, end_label)
        self._mark(end_label)

    def _lower_for(self, stmt):
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        cond_label = self._new_label()
        body_label = self._new_label()
        step_label = self._new_label()
        end_label = self._new_label()
        self._mark(cond_label)
        if stmt.cond is not None:
            self._lower_condition(stmt.cond, body_label, end_label)
        self._mark(body_label)
        self._in_loop(stmt.body, end_label, step_label)
        self._mark(step_label)
        if stmt.step is not None:
            self._emit(Eval(self._flatten(stmt.step), stmt.location))
        self._emit(Jump(cond_label, stmt.location))
        self._mark(end_label)

    def _lower_return(self, stmt):
        value = None
        if stmt.value is not None:
            value = self._flatten(stmt.value)
        self._emit(Ret(value, stmt.location))

    def _lower_break(self, stmt):
        if not self._break_targets:
            raise LoweringError("break outside of loop/switch",
                                stmt.location)
        self._emit(Jump(self._break_targets[-1], stmt.location))

    def _lower_continue(self, stmt):
        if not self._continue_targets:
            raise LoweringError("continue outside of loop", stmt.location)
        self._emit(Jump(self._continue_targets[-1], stmt.location))

    def _lower_switch(self, stmt):
        """C switch with fall-through.

        The subject is evaluated once into a temp; each ``case`` label
        becomes one equality Branch (so the directed search can steer to
        any arm), followed by a jump to the ``default`` arm or past the
        switch; the body is then lowered linearly, which preserves
        fall-through.
        """
        subject_type = ts.integer_promote(stmt.expr.ctype.decay())
        symbol, location = self._new_temp(subject_type, stmt.location)
        self._emit_temp_assign(
            symbol, subject_type, self._flatten(stmt.expr), location
        )
        end_label = self._new_label()
        entry_labels = {}
        default_index = None
        for index, (kind, payload) in enumerate(stmt.entries):
            if kind in ("case", "default"):
                entry_labels[index] = self._new_label()
            if kind == "default":
                default_index = index
        for index, (kind, payload) in enumerate(stmt.entries):
            if kind != "case":
                continue
            lit = ast.IntLit(payload.case_value, location)
            lit.ctype = ts.INT
            comparison = ast.Binary(
                "==", self._temp_ident(symbol, subject_type, location),
                lit, location,
            )
            comparison.ctype = ts.INT
            self._emit(Branch(comparison, entry_labels[index], location))
        fallback = entry_labels.get(default_index, end_label)
        self._emit(Jump(fallback, location))
        self._break_targets.append(end_label)
        try:
            for index, (kind, payload) in enumerate(stmt.entries):
                if kind in ("case", "default"):
                    self._mark(entry_labels[index])
                else:
                    self._lower_stmt(payload)
        finally:
            self._break_targets.pop()
        self._mark(end_label)

    def _lower_assertstmt(self, stmt):
        """``assert(e);`` becomes ``if (e) goto ok; abort; ok:`` so that the
        directed search can negate the predicate and aim at the violation."""
        ok_label = self._new_label()
        fail_label = self._new_label()
        self._lower_condition(stmt.expr, ok_label, fail_label)
        self._mark(fail_label)
        self._emit(AbortInstr("assertion violation", stmt.location))
        self._mark(ok_label)

    def _lower_abortstmt(self, stmt):
        self._emit(AbortInstr("abort", stmt.location))

    # -- conditions ------------------------------------------------------------

    def _lower_condition(self, expr, true_label, false_label):
        """Emit branches so control reaches ``true_label`` iff expr != 0."""
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self._new_label()
            self._lower_condition(expr.left, mid, false_label)
            self._mark(mid)
            self._lower_condition(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self._new_label()
            self._lower_condition(expr.left, true_label, mid)
            self._mark(mid)
            self._lower_condition(expr.right, true_label, false_label)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._lower_condition(expr.operand, false_label, true_label)
            return
        if isinstance(expr, ast.Conditional):
            then_label = self._new_label()
            else_label = self._new_label()
            self._lower_condition(expr.cond, then_label, else_label)
            self._mark(then_label)
            self._lower_condition(expr.then, true_label, false_label)
            self._mark(else_label)
            self._lower_condition(expr.otherwise, true_label, false_label)
            return
        if isinstance(expr, ast.Comma):
            self._emit(Eval(self._flatten(expr.left), expr.location))
            self._lower_condition(expr.right, true_label, false_label)
            return
        cond = self._flatten(expr)
        self._emit(Branch(cond, true_label, expr.location))
        self._emit(Jump(false_label, expr.location))

    # -- expression flattening -------------------------------------------------

    def _flatten(self, expr):
        """Rewrite ``expr`` so it contains no control flow, emitting the
        extracted branches in front; returns the rewritten expression."""
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            return self._flatten_boolean(expr)
        if isinstance(expr, ast.Conditional):
            return self._flatten_ternary(expr)
        if isinstance(expr, ast.Comma):
            self._emit(Eval(self._flatten(expr.left), expr.location))
            return self._flatten(expr.right)
        if isinstance(expr, ast.SizeofExpr) or isinstance(expr,
                                                          ast.SizeofType):
            lit = ast.IntLit(expr.size, expr.location)
            lit.ctype = ts.UINT
            return lit
        if isinstance(expr, ast.StringLit):
            expr.intern_index = self._string_indexes[id(expr)]
            return expr
        if isinstance(expr, ast.Unary):
            expr.operand = self._flatten(expr.operand)
            return _fold_unary(expr)
        elif isinstance(expr, ast.Postfix):
            expr.operand = self._flatten(expr.operand)
        elif isinstance(expr, ast.Binary):
            expr.left = self._flatten(expr.left)
            expr.right = self._flatten(expr.right)
            return _fold_binary(expr)
        elif isinstance(expr, ast.Assign):
            expr.target = self._flatten(expr.target)
            expr.value = self._flatten(expr.value)
        elif isinstance(expr, ast.Call):
            expr.args = [self._flatten(arg) for arg in expr.args]
        elif isinstance(expr, ast.Index):
            expr.base = self._flatten(expr.base)
            expr.index = self._flatten(expr.index)
        elif isinstance(expr, ast.Member):
            expr.base = self._flatten(expr.base)
        elif isinstance(expr, ast.Cast):
            expr.operand = self._flatten(expr.operand)
        return expr

    def _flatten_boolean(self, expr):
        """``a && b`` / ``a || b`` in value position -> branches + 0/1 temp."""
        symbol, location = self._new_temp(ts.INT, expr.location)
        true_label = self._new_label()
        false_label = self._new_label()
        end_label = self._new_label()
        self._lower_condition(expr, true_label, false_label)
        self._mark(true_label)
        self._emit_temp_store(symbol, ts.INT, 1, location)
        self._emit(Jump(end_label, location))
        self._mark(false_label)
        self._emit_temp_store(symbol, ts.INT, 0, location)
        self._mark(end_label)
        return self._temp_ident(symbol, ts.INT, location)

    def _flatten_ternary(self, expr):
        result_type = expr.ctype
        symbol, location = self._new_temp(result_type, expr.location)
        then_label = self._new_label()
        else_label = self._new_label()
        end_label = self._new_label()
        self._lower_condition(expr.cond, then_label, else_label)
        self._mark(then_label)
        self._emit_temp_assign(symbol, result_type,
                               self._flatten(expr.then), location)
        self._emit(Jump(end_label, location))
        self._mark(else_label)
        self._emit_temp_assign(symbol, result_type,
                               self._flatten(expr.otherwise), location)
        self._mark(end_label)
        return self._temp_ident(symbol, result_type, location)

    def _emit_temp_store(self, symbol, ctype, value, location):
        lit = ast.IntLit(value, location)
        lit.ctype = ts.INT
        self._emit_temp_assign(symbol, ctype, lit, location)

    def _emit_temp_assign(self, symbol, ctype, value_expr, location):
        target = self._temp_ident(symbol, ctype, location)
        assign = ast.Assign("=", target, value_expr, location)
        assign.ctype = ctype
        self._emit(Eval(assign, location))


def _wrap_to(value, ctype):
    """Wrap a folded value into the expression's integer type."""
    if not isinstance(ctype, ts.IntType):
        return None
    bits = 8 * ctype.size
    value &= (1 << bits) - 1
    if ctype.signed and value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def _make_lit(value, template):
    lit = ast.IntLit(value, template.location)
    lit.ctype = template.ctype
    return lit


def _fold_unary(expr):
    """Fold ``-lit``/``~lit``/``!lit`` at compile time (C semantics)."""
    operand = expr.operand
    if not isinstance(operand, ast.IntLit):
        return expr
    if expr.op == "-":
        value = -operand.value
    elif expr.op == "~":
        value = ~operand.value
    elif expr.op == "!":
        value = 0 if operand.value else 1
    else:
        return expr
    wrapped = _wrap_to(value, expr.ctype)
    if wrapped is None:
        return expr
    return _make_lit(wrapped, expr)


def _fold_binary(expr):
    """Fold ``lit op lit`` — except faulting operations (``/ 0``, ``% 0``
    must still raise at runtime) and non-integer results."""
    left, right = expr.left, expr.right
    if not (isinstance(left, ast.IntLit) and isinstance(right, ast.IntLit)):
        return expr
    a, b = left.value, right.value
    op = expr.op
    if op in ("/", "%") and b == 0:
        return expr  # keep the runtime division-by-zero fault
    if op in ("==", "!=", "<", ">", "<=", ">="):
        value = 1 if {
            "==": a == b, "!=": a != b, "<": a < b,
            ">": a > b, "<=": a <= b, ">=": a >= b,
        }[op] else 0
    elif op == "+":
        value = a + b
    elif op == "-":
        value = a - b
    elif op == "*":
        value = a * b
    elif op == "/":
        value = abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)
    elif op == "%":
        value = a - (abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1)) * b
    elif op == "&":
        value = a & b
    elif op == "|":
        value = a | b
    elif op == "^":
        value = a ^ b
    elif op == "<<":
        value = a << (b & 31)
    elif op == ">>":
        value = a >> (b & 31)
    else:
        return expr
    wrapped = _wrap_to(value, expr.ctype)
    if wrapped is None:
        return expr
    return _make_lit(wrapped, expr)


class _ConstInitEvaluator:
    """Evaluates global initializers, which must be link-time constants."""

    def __init__(self, string_indexes):
        self._string_indexes = string_indexes

    def evaluate(self, expr):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.StringLit):
            return StringRef(self._string_indexes[id(expr)])
        if isinstance(expr, ast.Ident) and expr.symbol is not None \
                and expr.symbol.kind == ENUM_CONST:
            return expr.symbol.value
        if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
            return expr.size
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self._int(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "~":
            return ~self._int(expr.operand)
        if isinstance(expr, ast.Cast):
            return self.evaluate(expr.operand)
        if isinstance(expr, ast.Binary):
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "|": lambda a, b: a | b,
                "&": lambda a, b: a & b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](self._int(expr.left),
                                    self._int(expr.right))
        raise LoweringError(
            "global initializer is not a link-time constant", expr.location
        )

    def _int(self, expr):
        value = self.evaluate(expr)
        if not isinstance(value, int):
            raise LoweringError("non-integer constant", expr.location)
        return value


def lower_program(program, info):
    """Lower an analyzed Program to an executable :class:`Module`."""
    strings = []
    string_indexes = {}
    for literal in info.string_literals:
        string_indexes[id(literal)] = len(strings)
        strings.append(literal.data)

    functions = {}
    global_vars = []
    const_eval = _ConstInitEvaluator(string_indexes)
    seen_globals = set()
    for decl in program.declarations:
        if isinstance(decl, ast.FunctionDef):
            functions[decl.name] = FunctionLowerer(
                decl, string_indexes
            ).lower()
        elif isinstance(decl, ast.VarDecl):
            symbol = decl.symbol
            if symbol is None or symbol.name in seen_globals:
                continue
            seen_globals.add(symbol.name)
            if symbol.is_extern:
                # External variables are inputs; the driver initializes them.
                global_vars.append(GlobalVar(symbol, None))
                continue
            # The defining declaration (semantic analysis points the symbol
            # at it, even when an extern declaration came first).
            defining = symbol.decl if isinstance(symbol.decl, ast.VarDecl) \
                else decl
            init = None
            if defining.init is not None:
                init = const_eval.evaluate(defining.init)
            global_vars.append(GlobalVar(symbol, init))
    return Module(functions, global_vars, strings, info)
