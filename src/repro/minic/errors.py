"""Diagnostics for the mini-C front end.

All front-end errors carry a :class:`SourceLocation` so that messages point
at the offending token, in the familiar ``file:line:col`` format.
"""


class SourceLocation:
    """A position in a source file (1-based line and column)."""

    __slots__ = ("filename", "line", "column")

    def __init__(self, filename="<source>", line=1, column=1):
        self.filename = filename
        self.line = line
        self.column = column

    def __repr__(self):
        return "SourceLocation({!r}, {}, {})".format(
            self.filename, self.line, self.column
        )

    def __str__(self):
        return "{}:{}:{}".format(self.filename, self.line, self.column)

    def __eq__(self, other):
        if not isinstance(other, SourceLocation):
            return NotImplemented
        return (
            self.filename == other.filename
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self):
        return hash((self.filename, self.line, self.column))


#: Location used when no better position is known.
UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


class MiniCError(Exception):
    """Base class for every error raised by the mini-C front end."""

    def __init__(self, message, location=None):
        self.location = location or UNKNOWN_LOCATION
        super().__init__("{}: {}".format(self.location, message))
        self.message = message


class LexError(MiniCError):
    """A malformed token (bad character, unterminated literal, ...)."""


class ParseError(MiniCError):
    """A syntax error detected by the recursive-descent parser."""


class SemanticError(MiniCError):
    """A type error or other static-semantics violation."""


class LoweringError(MiniCError):
    """An internal inconsistency discovered while lowering to IR."""
