"""Mini-C: the C-subset language substrate used by the DART reproduction.

The paper instruments real C programs through CIL; this package provides the
equivalent substrate built from scratch: a lexer, a recursive-descent parser,
a C type system with byte-accurate sizes and field offsets, a semantic
analyzer that also discovers the program's external interface, and a lowering
pass that compiles the checked AST down to the RAM-machine IR of Section 2.2
of the paper (assignments plus conditional gotos).

Typical use::

    from repro.minic import compile_program

    module = compile_program(source_text)

The resulting :class:`repro.minic.ir.Module` is what the concrete interpreter
(:mod:`repro.interp`) executes and the DART engine (:mod:`repro.dart`)
instruments.
"""

from repro.minic.errors import (
    LexError,
    MiniCError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from repro.minic.lexer import Lexer, tokenize
from repro.minic.parser import Parser, parse_program
from repro.minic.semantic import SemanticAnalyzer, analyze
from repro.minic.lower import lower_program
from repro.minic.ir import Module


def compile_program(source, filename="<source>"):
    """Compile mini-C source text all the way to an executable IR module.

    Runs the full front-end pipeline: lexing, parsing, semantic analysis
    (type checking plus interface discovery) and lowering to RAM-machine IR.

    Raises :class:`MiniCError` subclasses on malformed input.
    """
    ast = parse_program(source, filename=filename)
    info = analyze(ast)
    return lower_program(ast, info)


__all__ = [
    "LexError",
    "Lexer",
    "MiniCError",
    "Module",
    "ParseError",
    "Parser",
    "SemanticAnalyzer",
    "SemanticError",
    "SourceLocation",
    "analyze",
    "compile_program",
    "lower_program",
    "parse_program",
    "tokenize",
]
