"""Symbol tables for mini-C semantic analysis."""

from repro.minic.errors import SemanticError

# Symbol kinds.
GLOBAL = "global"
LOCAL = "local"
PARAM = "param"
FUNCTION = "function"
ENUM_CONST = "enum_const"
BUILTIN = "builtin"
EXTERNAL_FUNCTION = "external_function"


class Symbol:
    """A named entity: variable, parameter, function or enum constant.

    ``address``/``frame_offset`` are filled in by lowering and the runtime:
    globals get absolute addresses at link time, locals and params get
    frame-relative offsets.
    """

    __slots__ = (
        "name",
        "kind",
        "ctype",
        "value",
        "decl",
        "address",
        "frame_offset",
        "is_extern",
    )

    def __init__(self, name, kind, ctype, value=None, decl=None,
                 is_extern=False):
        self.name = name
        self.kind = kind
        self.ctype = ctype
        self.value = value  # enum constants only
        self.decl = decl
        self.address = None
        self.frame_offset = None
        self.is_extern = is_extern

    def __repr__(self):
        return "Symbol({!r}, {}, {})".format(self.name, self.kind, self.ctype)


class Scope:
    """One lexical scope; chains to its parent for lookups."""

    def __init__(self, parent=None):
        self.parent = parent
        self._entries = {}

    def define(self, symbol, location=None):
        if symbol.name in self._entries:
            raise SemanticError(
                "redefinition of {!r}".format(symbol.name), location
            )
        self._entries[symbol.name] = symbol
        return symbol

    def lookup(self, name):
        scope = self
        while scope is not None:
            symbol = scope._entries.get(name)
            if symbol is not None:
                return symbol
            scope = scope.parent
        return None

    def lookup_local(self, name):
        return self._entries.get(name)

    def symbols(self):
        return list(self._entries.values())
