"""AST node classes for mini-C.

Nodes are deliberately plain: the parser builds them, the semantic analyzer
annotates expressions with a resolved ``ctype`` (and lvalue-ness), and the
lowering pass consumes them.  Type *syntax* is represented by the small
``TypeExpr`` hierarchy at the bottom of this module; it is resolved to
:mod:`repro.minic.typesys` types during semantic analysis, when struct tags
and typedefs are known.
"""


class Node:
    """Base class: every node records its source location."""

    def __init__(self, location):
        self.location = location


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    """Base class for expressions.

    Semantic analysis fills in ``ctype`` (the expression's C type) and
    ``is_lvalue``.
    """

    def __init__(self, location):
        super().__init__(location)
        self.ctype = None
        self.is_lvalue = False


class IntLit(Expr):
    def __init__(self, value, location):
        super().__init__(location)
        self.value = value

    def __repr__(self):
        return "IntLit({})".format(self.value)


class StringLit(Expr):
    """A string literal; ``data`` excludes the implicit NUL terminator."""

    def __init__(self, data, location):
        super().__init__(location)
        self.data = data

    def __repr__(self):
        return "StringLit({!r})".format(self.data)


class Ident(Expr):
    def __init__(self, name, location):
        super().__init__(location)
        self.name = name
        self.symbol = None  # filled by semantic analysis

    def __repr__(self):
        return "Ident({!r})".format(self.name)


class Unary(Expr):
    """Prefix operators: ``- ! ~ * & ++ --`` (``op`` is the lexeme)."""

    def __init__(self, op, operand, location):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def __repr__(self):
        return "Unary({!r}, {!r})".format(self.op, self.operand)


class Postfix(Expr):
    """Postfix ``++``/``--``."""

    def __init__(self, op, operand, location):
        super().__init__(location)
        self.op = op
        self.operand = operand

    def __repr__(self):
        return "Postfix({!r}, {!r})".format(self.op, self.operand)


class Binary(Expr):
    """All binary operators, including ``&&``/``||`` (lowered to branches)."""

    def __init__(self, op, left, right, location):
        super().__init__(location)
        self.op = op
        self.left = left
        self.right = right

    def __repr__(self):
        return "Binary({!r}, {!r}, {!r})".format(self.op, self.left, self.right)


class Assign(Expr):
    """Assignment; ``op`` is ``=`` or a compound form like ``+=``."""

    def __init__(self, op, target, value, location):
        super().__init__(location)
        self.op = op
        self.target = target
        self.value = value

    def __repr__(self):
        return "Assign({!r}, {!r}, {!r})".format(self.op, self.target, self.value)


class Conditional(Expr):
    """The ternary ``cond ? then : otherwise`` operator."""

    def __init__(self, cond, then, otherwise, location):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Comma(Expr):
    def __init__(self, left, right, location):
        super().__init__(location)
        self.left = left
        self.right = right


class Call(Expr):
    """A direct call ``name(args...)`` (no function pointers in mini-C)."""

    def __init__(self, name, args, location):
        super().__init__(location)
        self.name = name
        self.args = args
        self.symbol = None  # filled by semantic analysis

    def __repr__(self):
        return "Call({!r}, {} args)".format(self.name, len(self.args))


class Index(Expr):
    def __init__(self, base, index, location):
        super().__init__(location)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.name`` (``arrow`` False) or ``base->name`` (``arrow`` True)."""

    def __init__(self, base, name, arrow, location):
        super().__init__(location)
        self.base = base
        self.name = name
        self.arrow = arrow
        self.field = None  # filled by semantic analysis


class Cast(Expr):
    def __init__(self, type_expr, operand, location):
        super().__init__(location)
        self.type_expr = type_expr
        self.operand = operand


class SizeofType(Expr):
    def __init__(self, type_expr, location):
        super().__init__(location)
        self.type_expr = type_expr


class SizeofExpr(Expr):
    def __init__(self, operand, location):
        super().__init__(location)
        self.operand = operand


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, statements, location):
        super().__init__(location)
        self.statements = statements


class ExprStmt(Stmt):
    def __init__(self, expr, location):
        super().__init__(location)
        self.expr = expr  # may be None for the empty statement ``;``


class If(Stmt):
    def __init__(self, cond, then, otherwise, location):
        super().__init__(location)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise  # may be None


class While(Stmt):
    def __init__(self, cond, body, location):
        super().__init__(location)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, body, cond, location):
        super().__init__(location)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(self, init, cond, step, body, location):
        super().__init__(location)
        self.init = init  # DeclStmt, Expr or None
        self.cond = cond  # Expr or None
        self.step = step  # Expr or None
        self.body = body


class Return(Stmt):
    def __init__(self, value, location):
        super().__init__(location)
        self.value = value  # may be None


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


class AssertStmt(Stmt):
    """``assert(e);`` — lowered to ``if (!e) abort()`` so the directed
    search can steer execution toward the violation (Section 4.2 note 8)."""

    def __init__(self, expr, location):
        super().__init__(location)
        self.expr = expr


class AbortStmt(Stmt):
    """``abort();`` — the RAM machine's error statement."""


class Switch(Stmt):
    """``switch`` with C fall-through semantics.

    ``entries`` is the flattened body: a list of ``("case", Expr)``,
    ``("default", None)`` and ``("stmt", Stmt)`` items in source order,
    which preserves arbitrary interleavings of labels and statements.
    """

    def __init__(self, expr, entries, location):
        super().__init__(location)
        self.expr = expr
        self.entries = entries

    def case_values(self):
        return [e for kind, e in self.entries if kind == "case"]

    def has_default(self):
        return any(kind == "default" for kind, _ in self.entries)


class DeclStmt(Stmt):
    """A local declaration statement; may declare several variables."""

    def __init__(self, decls, location):
        super().__init__(location)
        self.decls = decls  # list of VarDecl


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


class VarDecl(Node):
    def __init__(self, name, type_expr, init, location, is_extern=False):
        super().__init__(location)
        self.name = name
        self.type_expr = type_expr
        self.init = init  # Expr or None
        self.is_extern = is_extern
        self.ctype = None  # filled by semantic analysis
        self.symbol = None


class ParamDecl(Node):
    def __init__(self, name, type_expr, location):
        super().__init__(location)
        self.name = name  # may be None in prototypes
        self.type_expr = type_expr
        self.ctype = None
        self.symbol = None  # filled by semantic analysis (definitions only)


class FunctionDef(Node):
    def __init__(self, name, return_type_expr, params, body, location):
        super().__init__(location)
        self.name = name
        self.return_type_expr = return_type_expr
        self.params = params  # list of ParamDecl
        self.body = body  # Block
        self.ftype = None  # FunctionType, filled by semantic analysis


class FunctionDecl(Node):
    """A prototype.  Prototypes without a matching definition are the
    program's *external functions* (Section 3.1)."""

    def __init__(self, name, return_type_expr, params, location):
        super().__init__(location)
        self.name = name
        self.return_type_expr = return_type_expr
        self.params = params
        self.ftype = None


class StructDecl(Node):
    """A struct/union definition (forward declaration when ``fields`` is
    None)."""

    def __init__(self, tag, fields, location, is_union=False):
        super().__init__(location)
        self.tag = tag
        self.fields = fields  # list of (name, TypeExpr) or None
        self.is_union = is_union


class TypedefDecl(Node):
    def __init__(self, name, type_expr, location):
        super().__init__(location)
        self.name = name
        self.type_expr = type_expr


class EnumDecl(Node):
    def __init__(self, tag, enumerators, location):
        super().__init__(location)
        self.tag = tag
        self.enumerators = enumerators  # list of (name, Expr or None)


class Program(Node):
    """The translation unit: an ordered list of top-level declarations."""

    def __init__(self, declarations, location):
        super().__init__(location)
        self.declarations = declarations


# ---------------------------------------------------------------------------
# Type syntax (resolved during semantic analysis)
# ---------------------------------------------------------------------------


class TypeExpr:
    """Base class for unresolved type syntax."""


class BaseTypeExpr(TypeExpr):
    """A builtin type name such as ``int`` or ``unsigned char``."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "BaseTypeExpr({!r})".format(self.name)


class NamedTypeExpr(TypeExpr):
    """A typedef name, resolved against the typedef table."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "NamedTypeExpr({!r})".format(self.name)


class StructTypeExpr(TypeExpr):
    def __init__(self, tag, is_union=False):
        self.tag = tag
        self.is_union = is_union

    def __repr__(self):
        return "StructTypeExpr({!r})".format(self.tag)


class PointerTypeExpr(TypeExpr):
    def __init__(self, pointee):
        self.pointee = pointee

    def __repr__(self):
        return "PointerTypeExpr({!r})".format(self.pointee)


class ArrayTypeExpr(TypeExpr):
    def __init__(self, element, length_expr):
        self.element = element
        self.length_expr = length_expr  # Expr (constant) or None

    def __repr__(self):
        return "ArrayTypeExpr({!r})".format(self.element)
