"""Token definitions for the mini-C lexer."""

# Token kinds.  Simple string constants keep the lexer and parser readable
# and make failed-expectation messages self-describing.
IDENT = "IDENT"
INT_LIT = "INT_LIT"
CHAR_LIT = "CHAR_LIT"
STRING_LIT = "STRING_LIT"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"
EOF = "EOF"

#: Reserved words of the language.  ``assert`` is included because the paper
#: treats assertion violations as first-class errors that the directed search
#: aims at; making it a keyword lets the lowering pass turn it into a branch.
KEYWORDS = frozenset(
    [
        "int",
        "char",
        "long",
        "short",
        "unsigned",
        "signed",
        "void",
        "struct",
        "union",
        "enum",
        "typedef",
        "extern",
        "static",
        "const",
        "if",
        "else",
        "while",
        "do",
        "for",
        "return",
        "break",
        "continue",
        "sizeof",
        "assert",
        "abort",
        "switch",
        "case",
        "default",
        "goto",
        "NULL",
    ]
)

#: Multi-character punctuators, longest first so the lexer can use greedy
#: maximal-munch matching.
PUNCTUATORS = (
    "<<=",
    ">>=",
    "...",
    "->",
    "++",
    "--",
    "<<",
    ">>",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


class Token:
    """A single lexical token with its source location.

    ``value`` is the decoded payload: an ``int`` for integer and character
    literals, a ``bytes`` for string literals, and the lexeme itself for
    identifiers, keywords and punctuators.
    """

    __slots__ = ("kind", "text", "value", "location")

    def __init__(self, kind, text, value, location):
        self.kind = kind
        self.text = text
        self.value = value
        self.location = location

    def is_keyword(self, *names):
        return self.kind == KEYWORD and self.text in names

    def is_punct(self, *names):
        return self.kind == PUNCT and self.text in names

    def __repr__(self):
        return "Token({}, {!r})".format(self.kind, self.text)
