"""Semantic analysis for mini-C: type checking and interface discovery.

Besides ordinary C type checking (with the usual implicit conversions),
this pass computes the information DART's interface extraction (Section 3.1
of the paper) needs:

* *program functions* — functions defined in the translation unit;
* *external functions* — prototypes with no definition (the environment);
* *external variables* — ``extern`` declarations with no defining
  declaration;
* *library functions* — the built-in functions of :mod:`repro.interp.builtins`
  (``malloc``, ``strlen``, ...), treated as deterministic black boxes.
"""

from repro.minic import ast_nodes as ast
from repro.minic import typesys as ts
from repro.minic.errors import SemanticError
from repro.minic.symbols import (
    BUILTIN,
    ENUM_CONST,
    EXTERNAL_FUNCTION,
    FUNCTION,
    GLOBAL,
    LOCAL,
    PARAM,
    Scope,
    Symbol,
)

_BASE_TYPES = {
    "void": ts.VOID,
    "char": ts.CHAR,
    "signed char": ts.CHAR,
    "unsigned char": ts.UCHAR,
    "short": ts.SHORT,
    "short int": ts.SHORT,
    "signed short": ts.SHORT,
    "unsigned short": ts.USHORT,
    "int": ts.INT,
    "signed": ts.INT,
    "signed int": ts.INT,
    "long": ts.INT,
    "long int": ts.INT,
    "signed long": ts.INT,
    "unsigned": ts.UINT,
    "unsigned int": ts.UINT,
    "unsigned long": ts.UINT,
}

#: Library functions (Section 3.1: "functions not defined in the program but
#: controlled by the program"), with lenient C signatures.  ``None`` in a
#: parameter list means "any scalar/pointer accepted".
BUILTIN_SIGNATURES = {
    "malloc": (ts.PointerType(ts.VOID), [ts.INT]),
    "calloc": (ts.PointerType(ts.VOID), [ts.INT, ts.INT]),
    "free": (ts.VOID, [ts.PointerType(ts.VOID)]),
    "alloca": (ts.PointerType(ts.VOID), [ts.INT]),
    "memcpy": (
        ts.PointerType(ts.VOID),
        [ts.PointerType(ts.VOID), ts.PointerType(ts.VOID), ts.INT],
    ),
    "memset": (
        ts.PointerType(ts.VOID),
        [ts.PointerType(ts.VOID), ts.INT, ts.INT],
    ),
    "strlen": (ts.INT, [ts.PointerType(ts.CHAR)]),
    "strcpy": (
        ts.PointerType(ts.CHAR),
        [ts.PointerType(ts.CHAR), ts.PointerType(ts.CHAR)],
    ),
    "strncpy": (
        ts.PointerType(ts.CHAR),
        [ts.PointerType(ts.CHAR), ts.PointerType(ts.CHAR), ts.INT],
    ),
    "strcmp": (ts.INT, [ts.PointerType(ts.CHAR), ts.PointerType(ts.CHAR)]),
    "strchr": (ts.PointerType(ts.CHAR), [ts.PointerType(ts.CHAR), ts.INT]),
    "printf": (ts.INT, None),  # lenient: any arguments, output ignored
    "exit": (ts.VOID, [ts.INT]),
    # DART input intrinsics, emitted by the generated test driver
    # (Section 3.2).  Each call consumes the next slot of the input vector.
    "__dart_int": (ts.INT, []),
    "__dart_uint": (ts.UINT, []),
    "__dart_char": (ts.CHAR, []),
    "__dart_uchar": (ts.UCHAR, []),
    "__dart_short": (ts.SHORT, []),
    "__dart_ushort": (ts.USHORT, []),
    "__dart_ptr_choice": (ts.INT, []),
}


class Interface:
    """The external interface of a program (Section 3.1)."""

    def __init__(self):
        self.external_functions = {}  # name -> FunctionType
        self.external_variables = {}  # name -> CType
        self.defined_functions = {}  # name -> FunctionType

    def __repr__(self):
        return "Interface(ext_funcs={}, ext_vars={})".format(
            sorted(self.external_functions), sorted(self.external_variables)
        )


class ProgramInfo:
    """Everything later passes need: symbols, types and the interface."""

    def __init__(self):
        self.globals_scope = Scope()
        self.struct_types = {}  # tag -> StructType
        self.typedefs = {}  # name -> CType
        self.functions = {}  # name -> FunctionDef (defined only)
        self.function_types = {}  # name -> FunctionType (defined + declared)
        self.interface = Interface()
        self.string_literals = []  # collected in order of appearance


class SemanticAnalyzer:
    """Checks a parsed Program and produces a :class:`ProgramInfo`."""

    def __init__(self, program):
        self._program = program
        self.info = ProgramInfo()
        self._current_function = None
        self._loop_depth = 0
        self._break_depth = 0  # loops + switches

    # -- type resolution --------------------------------------------------

    def resolve_type(self, type_expr, location=None):
        if isinstance(type_expr, ast.BaseTypeExpr):
            try:
                return _BASE_TYPES[type_expr.name]
            except KeyError:
                raise SemanticError(
                    "unknown type {!r}".format(type_expr.name), location
                )
        if isinstance(type_expr, ast.NamedTypeExpr):
            try:
                return self.info.typedefs[type_expr.name]
            except KeyError:
                raise SemanticError(
                    "unknown typedef {!r}".format(type_expr.name), location
                )
        if isinstance(type_expr, ast.StructTypeExpr):
            struct = self.info.struct_types.get(type_expr.tag)
            if struct is None:
                struct = ts.StructType(type_expr.tag,
                                       is_union=type_expr.is_union)
                self.info.struct_types[type_expr.tag] = struct
            elif struct.is_union != type_expr.is_union:
                raise SemanticError(
                    "{!r} used as both struct and union".format(
                        type_expr.tag
                    ),
                    location,
                )
            return struct
        if isinstance(type_expr, ast.PointerTypeExpr):
            return ts.PointerType(
                self.resolve_type(type_expr.pointee, location)
            )
        if isinstance(type_expr, ast.ArrayTypeExpr):
            element = self.resolve_type(type_expr.element, location)
            length = None
            if type_expr.length_expr is not None:
                length = self.eval_const(type_expr.length_expr)
                if length < 0:
                    raise SemanticError("negative array length", location)
            return ts.ArrayType(element, length)
        raise SemanticError("unresolvable type syntax", location)

    def eval_const(self, expr):
        """Evaluate a compile-time constant integer expression."""
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            symbol = self.info.globals_scope.lookup(expr.name)
            if symbol is not None and symbol.kind == ENUM_CONST:
                return symbol.value
            raise SemanticError(
                "{!r} is not a constant".format(expr.name), expr.location
            )
        if isinstance(expr, ast.Unary) and expr.op == "-":
            return -self.eval_const(expr.operand)
        if isinstance(expr, ast.Unary) and expr.op == "~":
            return ~self.eval_const(expr.operand)
        if isinstance(expr, ast.SizeofType):
            return self.resolve_type(expr.type_expr, expr.location).size
        if isinstance(expr, ast.Binary):
            left = self.eval_const(expr.left)
            right = self.eval_const(expr.right)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: _const_div(a, b, expr.location),
                "%": lambda a, b: _const_mod(a, b, expr.location),
                "<<": lambda a, b: a << b,
                ">>": lambda a, b: a >> b,
                "|": lambda a, b: a | b,
                "&": lambda a, b: a & b,
                "^": lambda a, b: a ^ b,
            }
            if expr.op in ops:
                return ops[expr.op](left, right)
        raise SemanticError("expression is not a compile-time constant",
                            expr.location)

    # -- top-level pass ---------------------------------------------------

    def analyze(self):
        for decl in self._program.declarations:
            if isinstance(decl, ast.StructDecl):
                self._declare_struct(decl)
            elif isinstance(decl, ast.TypedefDecl):
                self.info.typedefs[decl.name] = self.resolve_type(
                    decl.type_expr, decl.location
                )
            elif isinstance(decl, ast.EnumDecl):
                self._declare_enum(decl)
            elif isinstance(decl, ast.FunctionDecl):
                self._declare_function(decl, defined=False)
            elif isinstance(decl, ast.FunctionDef):
                self._declare_function(decl, defined=True)
            elif isinstance(decl, ast.VarDecl):
                self._declare_global(decl)
            else:
                raise SemanticError("unexpected top-level declaration",
                                    decl.location)
        self._compute_interface()
        for decl in self._program.declarations:
            if isinstance(decl, ast.FunctionDef):
                self._check_function(decl)
        return self.info

    def _declare_struct(self, decl):
        struct = self.info.struct_types.get(decl.tag)
        if struct is None:
            struct = ts.StructType(decl.tag, is_union=decl.is_union)
            self.info.struct_types[decl.tag] = struct
        elif struct.is_union != decl.is_union:
            raise SemanticError(
                "{!r} declared as both struct and union".format(decl.tag),
                decl.location,
            )
        if decl.fields is not None:
            fields = [
                ts.StructField(
                    name, self.resolve_type(texpr, decl.location)
                )
                for name, texpr in decl.fields
            ]
            struct.define(fields)

    def _declare_enum(self, decl):
        next_value = 0
        for name, value_expr in decl.enumerators:
            if value_expr is not None:
                next_value = self.eval_const(value_expr)
            symbol = Symbol(name, ENUM_CONST, ts.INT, value=next_value)
            self.info.globals_scope.define(symbol, decl.location)
            next_value += 1

    def _function_type(self, decl):
        return_type = self.resolve_type(decl.return_type_expr, decl.location)
        param_types = []
        for param in decl.params:
            ptype = self.resolve_type(param.type_expr, param.location)
            ptype = ptype.decay()
            if ptype.is_void():
                raise SemanticError("parameter of type void", param.location)
            param.ctype = ptype
            param_types.append(ptype)
        return ts.FunctionType(return_type, param_types)

    def _declare_function(self, decl, defined):
        if decl.name in BUILTIN_SIGNATURES:
            if defined:
                raise SemanticError(
                    "cannot redefine library function {!r}".format(decl.name),
                    decl.location,
                )
            # A prototype for a builtin is harmless; accept and ignore it.
            decl.ftype = self._function_type(decl)
            return
        ftype = self._function_type(decl)
        decl.ftype = ftype
        existing = self.info.function_types.get(decl.name)
        if existing is not None and existing != ftype:
            raise SemanticError(
                "conflicting declarations for {!r}".format(decl.name),
                decl.location,
            )
        self.info.function_types[decl.name] = ftype
        if defined:
            if decl.name in self.info.functions:
                raise SemanticError(
                    "redefinition of function {!r}".format(decl.name),
                    decl.location,
                )
            self.info.functions[decl.name] = decl
            existing_symbol = self.info.globals_scope.lookup_local(decl.name)
            if existing_symbol is None:
                self.info.globals_scope.define(
                    Symbol(decl.name, FUNCTION, ftype, decl=decl),
                    decl.location,
                )
            else:
                existing_symbol.kind = FUNCTION
                existing_symbol.decl = decl
        else:
            if self.info.globals_scope.lookup_local(decl.name) is None:
                self.info.globals_scope.define(
                    Symbol(decl.name, EXTERNAL_FUNCTION, ftype, decl=decl),
                    decl.location,
                )

    def _declare_global(self, decl):
        ctype = self.resolve_type(decl.type_expr, decl.location)
        if ctype.is_void():
            raise SemanticError("variable of type void", decl.location)
        if not ctype.is_complete():
            raise SemanticError(
                "global {!r} has incomplete type".format(decl.name),
                decl.location,
            )
        decl.ctype = ctype
        existing = self.info.globals_scope.lookup_local(decl.name)
        if existing is not None:
            if existing.ctype != ctype:
                raise SemanticError(
                    "conflicting declarations for {!r}".format(decl.name),
                    decl.location,
                )
            if not decl.is_extern:
                existing.is_extern = False
                existing.decl = decl
            decl.symbol = existing
            return
        symbol = Symbol(
            decl.name, GLOBAL, ctype, decl=decl, is_extern=decl.is_extern
        )
        decl.symbol = symbol
        self.info.globals_scope.define(symbol, decl.location)
        if decl.init is not None:
            self._check_expr(decl.init, self.info.globals_scope)
            self._check_assignable(ctype, decl.init, decl.location)

    def _compute_interface(self):
        interface = self.info.interface
        for name, ftype in self.info.function_types.items():
            if name in self.info.functions:
                interface.defined_functions[name] = ftype
            else:
                interface.external_functions[name] = ftype
        for symbol in self.info.globals_scope.symbols():
            if symbol.kind == GLOBAL and symbol.is_extern:
                interface.external_variables[symbol.name] = symbol.ctype

    # -- function bodies ---------------------------------------------------

    def _check_function(self, decl):
        self._current_function = decl
        scope = Scope(self.info.globals_scope)
        for param in decl.params:
            if param.name is None:
                raise SemanticError("unnamed parameter in definition",
                                    param.location)
            symbol = Symbol(param.name, PARAM, param.ctype, decl=param)
            param.symbol = symbol
            scope.define(symbol, param.location)
        self._check_block(decl.body, scope)
        self._current_function = None

    def _check_block(self, block, parent_scope):
        scope = Scope(parent_scope)
        for stmt in block.statements:
            self._check_stmt(stmt, scope)

    def _check_stmt(self, stmt, scope):
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            self._check_condition(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, ast.While):
            self._check_condition(stmt.cond, scope)
            self._in_loop(stmt.body, scope)
        elif isinstance(stmt, ast.DoWhile):
            self._in_loop(stmt.body, scope)
            self._check_condition(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_condition(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._in_loop(stmt.body, inner)
        elif isinstance(stmt, ast.Return):
            self._check_return(stmt, scope)
        elif isinstance(stmt, ast.Break):
            if self._break_depth == 0:
                raise SemanticError(
                    "break outside of a loop or switch", stmt.location
                )
        elif isinstance(stmt, ast.Continue):
            if self._loop_depth == 0:
                raise SemanticError(
                    "continue outside of a loop", stmt.location
                )
        elif isinstance(stmt, ast.Switch):
            self._check_switch(stmt, scope)
        elif isinstance(stmt, ast.AssertStmt):
            self._check_condition(stmt.expr, scope)
        elif isinstance(stmt, ast.AbortStmt):
            pass
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._check_local_decl(decl, scope)
        else:
            raise SemanticError("unexpected statement", stmt.location)

    def _in_loop(self, body, scope):
        self._loop_depth += 1
        self._break_depth += 1
        try:
            self._check_stmt(body, scope)
        finally:
            self._loop_depth -= 1
            self._break_depth -= 1

    def _check_switch(self, stmt, scope):
        ctype = self._check_expr(stmt.expr, scope).decay()
        if not ctype.is_integer():
            raise SemanticError(
                "switch expression must be an integer", stmt.location
            )
        seen_values = set()
        default_count = 0
        inner = Scope(scope)
        self._break_depth += 1
        try:
            for kind, payload in stmt.entries:
                if kind == "case":
                    value = self.eval_const(payload)
                    if value in seen_values:
                        raise SemanticError(
                            "duplicate case value {}".format(value),
                            stmt.location,
                        )
                    seen_values.add(value)
                    payload.case_value = value
                elif kind == "default":
                    default_count += 1
                    if default_count > 1:
                        raise SemanticError(
                            "multiple default labels", stmt.location
                        )
                else:
                    self._check_stmt(payload, inner)
        finally:
            self._break_depth -= 1

    def _check_local_decl(self, decl, scope):
        ctype = self.resolve_type(decl.type_expr, decl.location)
        if ctype.is_void():
            raise SemanticError("variable of type void", decl.location)
        if not ctype.is_complete():
            raise SemanticError(
                "local {!r} has incomplete type".format(decl.name),
                decl.location,
            )
        decl.ctype = ctype
        symbol = Symbol(decl.name, LOCAL, ctype, decl=decl)
        decl.symbol = symbol
        scope.define(symbol, decl.location)
        if decl.init is not None:
            self._check_expr(decl.init, scope)
            self._check_assignable(ctype, decl.init, decl.location)

    def _check_return(self, stmt, scope):
        return_type = self._current_function.ftype.return_type
        if stmt.value is None:
            if not return_type.is_void():
                raise SemanticError(
                    "non-void function must return a value", stmt.location
                )
            return
        if return_type.is_void():
            raise SemanticError("void function returns a value",
                                stmt.location)
        self._check_expr(stmt.value, scope)
        self._check_assignable(return_type, stmt.value, stmt.location)

    # -- expressions --------------------------------------------------------

    def _check_condition(self, expr, scope):
        ctype = self._check_expr(expr, scope)
        if not ctype.decay().is_scalar():
            raise SemanticError("condition must be scalar", expr.location)
        return ctype

    def _check_assignable(self, target, value_expr, location):
        source = value_expr.ctype.decay()
        if target.is_integer() and source.is_integer():
            return
        if target.is_pointer() and source.is_pointer():
            return  # C would warn on incompatible pointees; mini-C is lenient
        if target.is_pointer() and isinstance(value_expr, ast.IntLit) \
                and value_expr.value == 0:
            return
        if target.is_struct() and source == target:
            return
        raise SemanticError(
            "cannot assign {} to {}".format(source, target), location
        )

    def _check_expr(self, expr, scope):
        """Type-check ``expr``, annotate it, and return its C type."""
        method = getattr(self, "_check_" + type(expr).__name__.lower())
        ctype = method(expr, scope)
        expr.ctype = ctype
        return ctype

    def _check_intlit(self, expr, scope):
        expr.is_lvalue = False
        if -(1 << 31) <= expr.value <= (1 << 32) - 1:
            return ts.INT if expr.value <= (1 << 31) - 1 else ts.UINT
        raise SemanticError("integer literal out of range", expr.location)

    def _check_stringlit(self, expr, scope):
        expr.is_lvalue = False
        self.info.string_literals.append(expr)
        return ts.ArrayType(ts.CHAR, len(expr.data) + 1)

    def _check_ident(self, expr, scope):
        symbol = scope.lookup(expr.name)
        if symbol is None:
            raise SemanticError(
                "use of undeclared identifier {!r}".format(expr.name),
                expr.location,
            )
        if symbol.kind in (FUNCTION, EXTERNAL_FUNCTION):
            raise SemanticError(
                "function {!r} used as a value (function pointers are not "
                "supported)".format(expr.name),
                expr.location,
            )
        expr.symbol = symbol
        expr.is_lvalue = symbol.kind != ENUM_CONST
        return symbol.ctype

    def _check_unary(self, expr, scope):
        op = expr.op
        operand_type = self._check_expr(expr.operand, scope)
        if op == "&":
            if not expr.operand.is_lvalue:
                raise SemanticError("cannot take the address of an rvalue",
                                    expr.location)
            expr.is_lvalue = False
            return ts.PointerType(operand_type)
        decayed = operand_type.decay()
        if op == "*":
            if not decayed.is_pointer():
                raise SemanticError("cannot dereference non-pointer",
                                    expr.location)
            pointee = decayed.pointee
            if pointee.is_void():
                raise SemanticError("cannot dereference void pointer",
                                    expr.location)
            expr.is_lvalue = True
            return pointee
        if op == "!":
            if not decayed.is_scalar():
                raise SemanticError("operand of ! must be scalar",
                                    expr.location)
            return ts.INT
        if op in ("-", "~"):
            if not decayed.is_integer():
                raise SemanticError(
                    "operand of {!r} must be an integer".format(op),
                    expr.location,
                )
            return ts.integer_promote(decayed)
        if op in ("++", "--"):
            if not expr.operand.is_lvalue:
                raise SemanticError("operand of {!r} must be an lvalue"
                                    .format(op), expr.location)
            if not decayed.is_scalar():
                raise SemanticError("operand of {!r} must be scalar"
                                    .format(op), expr.location)
            return decayed
        raise SemanticError("unknown unary operator {!r}".format(op),
                            expr.location)

    def _check_postfix(self, expr, scope):
        operand_type = self._check_expr(expr.operand, scope).decay()
        if not expr.operand.is_lvalue:
            raise SemanticError("operand of {!r} must be an lvalue"
                                .format(expr.op), expr.location)
        if not operand_type.is_scalar():
            raise SemanticError("operand of {!r} must be scalar"
                                .format(expr.op), expr.location)
        return operand_type

    def _check_binary(self, expr, scope):
        op = expr.op
        left = self._check_expr(expr.left, scope).decay()
        right = self._check_expr(expr.right, scope).decay()
        if op in ("&&", "||"):
            if not (left.is_scalar() and right.is_scalar()):
                raise SemanticError("operands of {!r} must be scalar"
                                    .format(op), expr.location)
            return ts.INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if left.is_pointer() or right.is_pointer():
                ok = (
                    (left.is_pointer() and right.is_pointer())
                    or (left.is_pointer() and _is_zero(expr.right))
                    or (right.is_pointer() and _is_zero(expr.left))
                )
                if not ok:
                    raise SemanticError(
                        "invalid pointer comparison", expr.location
                    )
                return ts.INT
            if left.is_integer() and right.is_integer():
                return ts.INT
            raise SemanticError("invalid comparison operands", expr.location)
        if op in ("+", "-"):
            if left.is_pointer() and right.is_integer():
                self._check_pointer_arith(left, expr)
                return left
            if op == "+" and left.is_integer() and right.is_pointer():
                self._check_pointer_arith(right, expr)
                return right
            if op == "-" and left.is_pointer() and right.is_pointer():
                return ts.INT
        if left.is_integer() and right.is_integer():
            return ts.usual_arithmetic_conversion(left, right)
        raise SemanticError(
            "invalid operands to binary {!r} ({} and {})".format(
                op, left, right
            ),
            expr.location,
        )

    @staticmethod
    def _check_pointer_arith(pointer_type, expr):
        if not pointer_type.pointee.is_complete() \
                and not pointer_type.pointee.is_void():
            raise SemanticError("pointer arithmetic on incomplete type",
                                expr.location)

    def _check_assign(self, expr, scope):
        target_type = self._check_expr(expr.target, scope)
        if not expr.target.is_lvalue:
            raise SemanticError("assignment target is not an lvalue",
                                expr.location)
        if target_type.is_array():
            raise SemanticError("cannot assign to an array", expr.location)
        value_type = self._check_expr(expr.value, scope)
        if expr.op == "=":
            self._check_assignable(target_type, expr.value, expr.location)
        else:
            # Compound assignment: target OP= value desugars to
            # target = target OP value; validate the arithmetic shape.
            base_op = expr.op[:-1]
            decayed = target_type.decay()
            if base_op in ("+", "-") and decayed.is_pointer():
                if not value_type.decay().is_integer():
                    raise SemanticError("invalid pointer arithmetic",
                                        expr.location)
            elif not (decayed.is_integer()
                      and value_type.decay().is_integer()):
                raise SemanticError(
                    "invalid operands to {!r}".format(expr.op), expr.location
                )
        return target_type

    def _check_conditional(self, expr, scope):
        self._check_condition(expr.cond, scope)
        then_type = self._check_expr(expr.then, scope).decay()
        else_type = self._check_expr(expr.otherwise, scope).decay()
        if then_type.is_integer() and else_type.is_integer():
            return ts.usual_arithmetic_conversion(then_type, else_type)
        if then_type.is_pointer() and else_type.is_pointer():
            return then_type
        if then_type.is_pointer() and _is_zero(expr.otherwise):
            return then_type
        if else_type.is_pointer() and _is_zero(expr.then):
            return else_type
        if then_type == else_type:
            return then_type
        raise SemanticError("incompatible conditional branches",
                            expr.location)

    def _check_comma(self, expr, scope):
        self._check_expr(expr.left, scope)
        return self._check_expr(expr.right, scope)

    def _check_call(self, expr, scope):
        name = expr.name
        arg_types = [self._check_expr(arg, scope).decay()
                     for arg in expr.args]
        if name in BUILTIN_SIGNATURES:
            return_type, param_types = BUILTIN_SIGNATURES[name]
            expr.symbol = Symbol(name, BUILTIN,
                                 ts.FunctionType(return_type,
                                                 param_types or []))
            if param_types is not None:
                if len(arg_types) != len(param_types):
                    raise SemanticError(
                        "{!r} expects {} argument(s), got {}".format(
                            name, len(param_types), len(arg_types)
                        ),
                        expr.location,
                    )
                for arg, ptype in zip(expr.args, param_types):
                    self._check_call_arg(arg, ptype, expr.location)
            return return_type
        ftype = self.info.function_types.get(name)
        if ftype is None:
            raise SemanticError(
                "call to undeclared function {!r}".format(name),
                expr.location,
            )
        symbol = self.info.globals_scope.lookup(name)
        expr.symbol = symbol
        if len(arg_types) != len(ftype.param_types):
            raise SemanticError(
                "{!r} expects {} argument(s), got {}".format(
                    name, len(ftype.param_types), len(arg_types)
                ),
                expr.location,
            )
        for arg, ptype in zip(expr.args, ftype.param_types):
            self._check_call_arg(arg, ptype, expr.location)
        return ftype.return_type

    def _check_call_arg(self, arg, param_type, location):
        source = arg.ctype.decay()
        if param_type.is_integer() and source.is_integer():
            return
        if param_type.is_pointer() and source.is_pointer():
            return
        if param_type.is_pointer() and _is_zero(arg):
            return
        if param_type == source:
            return
        raise SemanticError(
            "cannot pass {} for parameter of type {}".format(
                source, param_type
            ),
            location,
        )

    def _check_index(self, expr, scope):
        base = self._check_expr(expr.base, scope).decay()
        index = self._check_expr(expr.index, scope).decay()
        if base.is_integer() and index.is_pointer():
            base, index = index, base
        if not base.is_pointer() or not index.is_integer():
            raise SemanticError("invalid array subscript", expr.location)
        if not base.pointee.is_complete():
            raise SemanticError("subscript of incomplete type", expr.location)
        expr.is_lvalue = True
        return base.pointee

    def _check_member(self, expr, scope):
        base = self._check_expr(expr.base, scope)
        if expr.arrow:
            decayed = base.decay()
            if not decayed.is_pointer() or not decayed.pointee.is_struct():
                raise SemanticError(
                    "-> applied to non-struct-pointer", expr.location
                )
            struct = decayed.pointee
            expr.is_lvalue = True
        else:
            if not base.is_struct():
                raise SemanticError(". applied to non-struct", expr.location)
            struct = base
            expr.is_lvalue = expr.base.is_lvalue
        field = struct.field(expr.name)
        expr.field = field
        return field.ctype

    def _check_cast(self, expr, scope):
        target = self.resolve_type(expr.type_expr, expr.location)
        source = self._check_expr(expr.operand, scope).decay()
        if target.is_void():
            return target
        if not target.is_scalar():
            raise SemanticError("cast target must be scalar or void",
                                expr.location)
        if not source.is_scalar():
            raise SemanticError("cast source must be scalar", expr.location)
        return target

    def _check_sizeoftype(self, expr, scope):
        ctype = self.resolve_type(expr.type_expr, expr.location)
        if not ctype.is_complete() and not ctype.is_void():
            raise SemanticError("sizeof incomplete type", expr.location)
        expr.size = ctype.size
        return ts.UINT

    def _check_sizeofexpr(self, expr, scope):
        operand_type = self._check_expr(expr.operand, scope)
        expr.size = operand_type.size
        return ts.UINT


def _is_zero(expr):
    return isinstance(expr, ast.IntLit) and expr.value == 0


def _const_div(a, b, location):
    if b == 0:
        raise SemanticError("division by zero in constant expression",
                            location)
    return int(a / b) if (a < 0) != (b < 0) else a // b


def _const_mod(a, b, location):
    if b == 0:
        raise SemanticError("modulo by zero in constant expression", location)
    return a - _const_div(a, b, location) * b


def analyze(program):
    """Run semantic analysis; returns the :class:`ProgramInfo`."""
    return SemanticAnalyzer(program).analyze()
