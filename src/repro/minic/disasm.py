"""A human-readable disassembler for the RAM-machine IR.

Useful for debugging lowered programs, for documentation, and for tests
that assert structural properties of the IR.  The output format is one
instruction per line, label-addressed, e.g.::

    int h(int, int):
        0: branch (x != y) -> 2
        1: jump -> 6
        2: branch (f(x) == (x + 10)) -> 4
        ...
"""

from repro.minic import ast_nodes as ast
from repro.minic import ir


def format_expr(expr):
    """Render an (annotated) expression back to C-ish text."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.StringLit):
        return repr(expr.data.decode("latin-1"))
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Unary):
        if expr.op in ("++", "--"):
            return "{}{}".format(expr.op, format_expr(expr.operand))
        return "{}{}".format(expr.op, _wrap(expr.operand))
    if isinstance(expr, ast.Postfix):
        return "{}{}".format(_wrap(expr.operand), expr.op)
    if isinstance(expr, ast.Binary):
        return "({} {} {})".format(
            format_expr(expr.left), expr.op, format_expr(expr.right)
        )
    if isinstance(expr, ast.Assign):
        return "{} {} {}".format(
            format_expr(expr.target), expr.op, format_expr(expr.value)
        )
    if isinstance(expr, ast.Call):
        return "{}({})".format(
            expr.name, ", ".join(format_expr(a) for a in expr.args)
        )
    if isinstance(expr, ast.Index):
        return "{}[{}]".format(_wrap(expr.base), format_expr(expr.index))
    if isinstance(expr, ast.Member):
        return "{}{}{}".format(
            _wrap(expr.base), "->" if expr.arrow else ".", expr.name
        )
    if isinstance(expr, ast.Cast):
        return "({}) {}".format(
            expr.ctype if expr.ctype is not None else "?",
            _wrap(expr.operand),
        )
    if isinstance(expr, (ast.SizeofExpr, ast.SizeofType)):
        return "sizeof(...)"
    if isinstance(expr, ast.Conditional):
        return "({} ? {} : {})".format(
            format_expr(expr.cond), format_expr(expr.then),
            format_expr(expr.otherwise),
        )
    if isinstance(expr, ast.Comma):
        return "({}, {})".format(
            format_expr(expr.left), format_expr(expr.right)
        )
    return "<{}>".format(type(expr).__name__)


def _wrap(expr):
    text = format_expr(expr)
    if isinstance(expr, (ast.Ident, ast.IntLit, ast.Call, ast.Index,
                         ast.Member)):
        return text
    return "({})".format(text) if not text.startswith("(") else text


def format_instr(instr):
    if isinstance(instr, ir.Eval):
        return "eval {}".format(format_expr(instr.expr))
    if isinstance(instr, ir.Branch):
        return "branch {} -> {}".format(
            format_expr(instr.cond), instr.target
        )
    if isinstance(instr, ir.Jump):
        return "jump -> {}".format(instr.target)
    if isinstance(instr, ir.Ret):
        if instr.value is None:
            return "ret"
        return "ret {}".format(format_expr(instr.value))
    if isinstance(instr, ir.AbortInstr):
        return "abort  ; {}".format(instr.reason)
    return "<{}>".format(type(instr).__name__)


def disassemble_function(function):
    """The listing for one IRFunction."""
    params = ", ".join(str(t) for t in function.ftype.param_types) or "void"
    lines = ["{} {}({}):  ; frame {} bytes".format(
        function.ftype.return_type, function.name, params,
        function.frame_size,
    )]
    for index, instr in enumerate(function.instrs):
        lines.append("    {:>3}: {}".format(index, format_instr(instr)))
    return "\n".join(lines)


def disassemble(module, include_driver=False):
    """The listing for a whole module.

    Driver-generated functions (``__dart_*``) are skipped unless
    ``include_driver`` is set.
    """
    chunks = []
    for name in sorted(module.functions):
        if not include_driver and name.startswith("__dart_"):
            continue
        chunks.append(disassemble_function(module.functions[name]))
    return "\n\n".join(chunks)
