"""The RAM-machine IR of Section 2.2 of the paper.

A program is lowered to, per function, a flat list of label-addressed
instructions: expression evaluations (which subsume assignment statements),
conditional branches ``if (e) then goto e'`` (fall through otherwise),
unconditional jumps, returns, and ``abort``.  Every *conditional statement*
the directed search reasons about is exactly one :class:`Branch` instruction;
short-circuit operators, the ternary operator and ``assert`` are compiled
into branches so that each primitive predicate is independently negatable —
this is what gives DART its per-branch 0.5 "probability" discussed in the
paper's introduction.
"""


class Instr:
    """Base class for IR instructions."""

    __slots__ = ("location",)

    def __init__(self, location):
        self.location = location


class Eval(Instr):
    """Evaluate an expression for its side effects (assignments, calls)."""

    __slots__ = ("expr",)

    def __init__(self, expr, location):
        super().__init__(location)
        self.expr = expr

    def __repr__(self):
        return "Eval({!r})".format(self.expr)


class Branch(Instr):
    """``if (cond) goto target`` — the RAM machine's conditional statement.

    ``target`` is an instruction index after label resolution.  Taking the
    jump corresponds to the paper's *then* branch (branch value 1); falling
    through is the *else* branch (branch value 0).
    """

    __slots__ = ("cond", "target")

    def __init__(self, cond, target, location):
        super().__init__(location)
        self.cond = cond
        self.target = target

    def __repr__(self):
        return "Branch(-> {})".format(self.target)


class Jump(Instr):
    __slots__ = ("target",)

    def __init__(self, target, location):
        super().__init__(location)
        self.target = target

    def __repr__(self):
        return "Jump(-> {})".format(self.target)


class Ret(Instr):
    """Return from the current function (value may be None for void)."""

    __slots__ = ("value",)

    def __init__(self, value, location):
        super().__init__(location)
        self.value = value

    def __repr__(self):
        return "Ret({!r})".format(self.value)


class AbortInstr(Instr):
    """The RAM machine's ``abort`` statement — a program error.

    ``reason`` distinguishes a literal ``abort()`` call from a failed
    ``assert`` (both are errors per Section 4.2's footnote 8).
    """

    __slots__ = ("reason",)

    def __init__(self, reason, location):
        super().__init__(location)
        self.reason = reason

    def __repr__(self):
        return "Abort({!r})".format(self.reason)


class Label:
    """A patchable jump target used during lowering."""

    __slots__ = ("index",)

    def __init__(self):
        self.index = None

    def __repr__(self):
        return "Label({})".format(self.index)


class FrameSlot:
    """Frame-relative storage for a parameter, local or compiler temp."""

    __slots__ = ("name", "ctype", "offset")

    def __init__(self, name, ctype, offset):
        self.name = name
        self.ctype = ctype
        self.offset = offset

    def __repr__(self):
        return "FrameSlot({!r}, {}, +{})".format(
            self.name, self.ctype, self.offset
        )


class IRFunction:
    """A lowered function: instructions plus its frame layout."""

    def __init__(self, name, ftype, param_slots, frame_size, instrs,
                 location):
        self.name = name
        self.ftype = ftype
        self.param_slots = param_slots  # list of FrameSlot, call order
        self.frame_size = frame_size
        self.instrs = instrs
        self.location = location

    def __repr__(self):
        return "IRFunction({!r}, {} instrs, frame={})".format(
            self.name, len(self.instrs), self.frame_size
        )


class GlobalVar:
    """A global variable awaiting placement by the memory loader.

    ``init`` is either None (zero-initialized), an int (constant value for a
    scalar), a bytes object (flattened constant contents), or a
    :class:`StringRef` for ``char *s = "...";`` style initializers.
    """

    def __init__(self, symbol, init):
        self.symbol = symbol
        self.init = init

    @property
    def name(self):
        return self.symbol.name

    @property
    def ctype(self):
        return self.symbol.ctype

    def __repr__(self):
        return "GlobalVar({!r})".format(self.name)


class StringRef:
    """A reference to an interned string literal, by intern index."""

    __slots__ = ("index",)

    def __init__(self, index):
        self.index = index


class Module:
    """A fully lowered translation unit, ready to execute.

    Attributes:
        functions: name -> IRFunction for every defined function.
        globals: list of GlobalVar in declaration order.
        strings: list of bytes, the interned string literals (NUL added
            by the loader).
        info: the front end's ProgramInfo (types, interface, symbols).
    """

    def __init__(self, functions, global_vars, strings, info):
        self.functions = functions
        self.globals = global_vars
        self.strings = strings
        self.info = info

    @property
    def interface(self):
        return self.info.interface

    def function(self, name):
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError("no function named {!r} in module".format(name))

    def __repr__(self):
        return "Module({} functions, {} globals)".format(
            len(self.functions), len(self.globals)
        )
