"""The instrumented RAM machine (Fig. 3 of the paper).

One :class:`Machine` performs one execution of the program: it runs the
concrete semantics over the byte-addressable memory ``M`` while maintaining
the symbolic memory ``S`` side by side.  Every expression evaluates to a
pair ``(concrete value, symbolic expression or None)``.

Two extension points connect the machine to the testing layers:

* ``hooks.acquire_input(kind)`` is called by the ``__dart_*`` intrinsics the
  generated test driver uses; it returns the concrete value (from the input
  vector ``IM``, or freshly randomized) and the :class:`InputVar` naming it
  (or None, which makes the value invisible to the symbolic execution).
* ``hooks.on_branch(taken, constraint, location)`` is called at every
  conditional statement with the branch outcome and the path-constraint
  conjunct, implementing the ``path_constraint``/``stack`` bookkeeping of
  Figs. 3 and 4.
"""

import sys
import time

from repro.faults import points as fault_points
from repro.interp.builtins import (
    BUILTINS,
    INPUT_INTRINSICS,
    ProgramHalt,
)
from repro.interp.faults import (
    AssertionViolation,
    DivisionByZero,
    ExecutionFault,
    InterpreterError,
    NonTermination,
    ProgramAbort,
    RunTimeout,
)
from repro.interp.memory import Memory, MemoryOptions
from repro.interp.values import c_div, c_mod, to_unsigned, wrap
from repro.minic import ast_nodes as ast
from repro.minic import ir
from repro.minic import typesys as ts
from repro.minic.symbols import BUILTIN, ENUM_CONST, GLOBAL
from repro.symbolic.evaluate import SymbolicEvaluator, constraint_from_branch
from repro.symbolic.expr import EQ, LinExpr
from repro.symbolic.flags import CompletenessFlags
from repro.symbolic.symmem import SymbolicMemory
from repro.symbolic.widen import Widener

_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_INPUT_KIND_TYPES = {
    "int": ts.INT,
    "uint": ts.UINT,
    "char": ts.CHAR,
    "uchar": ts.UCHAR,
    "short": ts.SHORT,
    "ushort": ts.USHORT,
    "ptr_choice": ts.INT,
}


class MachineOptions:
    """Tunables for one execution."""

    def __init__(self, max_steps=1_000_000, transparent_memory=False,
                 memory=None, deadline=None, watchdog_interval=1024,
                 interrupt_check=None, trace=None):
        #: RAM-machine step budget; exceeding it reports NonTermination,
        #: the paper's timer-based non-termination detection (§4.3).
        self.max_steps = max_steps
        #: Extension: let memcpy/strcpy move symbolic values instead of
        #: erasing them (the paper treats them as opaque; see DESIGN.md).
        self.transparent_memory = transparent_memory
        self.memory = memory or MemoryOptions()
        #: Absolute ``time.perf_counter()`` deadline for this execution, or
        #: None.  Enforced amortized (every ``watchdog_interval`` steps) in
        #: the step loop; tripping it raises :class:`RunTimeout`, which the
        #: DART run loop contains instead of aborting the session.
        self.deadline = deadline
        #: Steps between wall-clock checks; bounds how far past the
        #: deadline a run can drift (one interval's worth of steps).
        self.watchdog_interval = watchdog_interval
        #: Optional callable probed at the watchdog cadence; it may raise
        #: to abort the run (the DART session uses it to observe SIGINT/
        #: SIGTERM mid-run instead of only between runs).
        self.interrupt_check = interrupt_check
        #: Optional repro.obs.trace.TraceBus; when attached and enabled,
        #: every executed conditional emits a ``branch`` event.  The
        #: guard is a plain attribute check, so a machine without a bus
        #: pays nothing.
        self.trace = trace


class ExecutionHooks:
    """Default hooks: inputs are rejected, branches are ignored.

    Suitable for running closed programs (no driver); the DART engine and
    the random tester provide real implementations.
    """

    def acquire_input(self, kind):
        raise InterpreterError(
            "the program read a {} input but no test driver is attached"
            .format(kind)
        )

    def on_branch(self, taken, constraint, location):
        pass


class Frame:
    """One activation record."""

    __slots__ = ("function", "region", "alloca_regions")

    def __init__(self, function, region):
        self.function = function
        self.region = region
        self.alloca_regions = []

    def addr_of(self, symbol):
        return self.region.start + symbol.frame_offset


class _StructValue:
    """A struct rvalue: raw bytes, plus the source address when the value
    was loaded from memory (so struct assignment can move symbolic state)."""

    __slots__ = ("data", "source_addr")

    def __init__(self, data, source_addr=None):
        self.data = data
        self.source_addr = source_addr


class Machine:
    """Executes a lowered module; one instance per program execution.

    Two execution engines share every piece of machine state (memory,
    symbolic store, hooks, widener, flags, frames, counters): the
    tree-walking interpreter below (``_execute``/``_eval``) and the
    compiled engine (:mod:`repro.interp.compile`), selected by passing a
    ``CompiledProgram`` for the same module as ``compiled``.  The engines
    are observationally identical — same concrete state, branch events,
    faults, counters and completeness-flag transitions — which the
    engine-differential oracle pins (see ``repro.testgen.oracles``).
    """

    def __init__(self, module, options=None, hooks=None, flags=None,
                 compiled=None):
        self.module = module
        self.options = options or MachineOptions()
        self.hooks = hooks or ExecutionHooks()
        self.flags = flags or CompletenessFlags()
        if compiled is not None and compiled.module is not module:
            raise InterpreterError(
                "compiled program was lowered from a different module"
            )
        #: repro.interp.compile.CompiledProgram or None (interpreter).
        self.compiled = compiled
        self.symbolic = SymbolicMemory()
        self.evaluator = SymbolicEvaluator(self.flags)
        #: Machine-integer widening: keeps recorded conjuncts faithful to
        #: this run under 32-bit wrap and unsigned compares (see
        #: repro.symbolic.widen); also the funnel counters
        #: conjuncts_widened / conjuncts_dropped_unfaithful.
        self.widener = Widener(self.flags, trace=self.options.trace)
        self.memory = Memory(self.options.memory)
        self.output = []
        self.steps = 0
        #: Instructions whose result carried a symbolic expression — the
        #: taint-gated slow path.  Counted identically by both engines.
        self.symbolic_steps = 0
        self.branches_executed = 0
        #: (function name, pc, taken) triples — branch-direction coverage.
        self.covered_branches = set()
        self._frames = []
        self._global_addrs = {}
        self._string_addrs = []
        #: Set by _step_ret just before _execute unwinds (re-entrant calls
        #: are safe: the value is read immediately after the setting step).
        self._return_value = (0, None)
        #: Step count at which the wall-clock watchdog next fires.
        self._next_watchdog = self.options.watchdog_interval
        self._load_module()
        if sys.getrecursionlimit() < 20000:
            sys.setrecursionlimit(20000)

    # -- loading --------------------------------------------------------

    def _load_module(self):
        for data in self.module.strings:
            region = self.memory.alloc_string(data)
            self._string_addrs.append(region.start)
        for gvar in self.module.globals:
            region = self.memory.alloc_global(
                max(gvar.ctype.size, 1), gvar.name
            )
            self._global_addrs[gvar.name] = region.start
            self._init_global(gvar, region.start)

    def _init_global(self, gvar, addr):
        init = gvar.init
        if init is None:
            return  # zero-initialized by the allocator
        if isinstance(init, ir.StringRef):
            self.memory.write_int(
                addr, self._string_addrs[init.index], 4, signed=False
            )
        elif isinstance(init, int):
            ctype = gvar.ctype
            size = ctype.size if ctype.is_scalar() else 4
            signed = ctype.is_integer() and ctype.signed
            self.memory.write_int(addr, init, size, signed)
        else:
            raise InterpreterError(
                "unsupported global initializer for {!r}".format(gvar.name)
            )

    @property
    def current_frame(self):
        return self._frames[-1]

    def global_address(self, name):
        """The address of a global variable (for drivers and tests)."""
        return self._global_addrs[name]

    # -- public entry points -----------------------------------------------

    def run(self, function_name, args=()):
        """Execute ``function_name``; returns the concrete return value.

        ``args`` are concrete integers for scalar parameters.  Program
        faults propagate as :class:`ExecutionFault`; ``exit()`` is a normal
        halt and yields its status code.
        """
        function = self.module.function(function_name)
        if len(args) != len(function.param_slots):
            raise InterpreterError(
                "{!r} expects {} argument(s)".format(
                    function_name, len(function.param_slots)
                )
            )
        injector = fault_points.ACTIVE
        if injector is not None:
            # Fault seam: may raise MemoryError/RecursionError as if the
            # interpreter itself blew up; the runner's fault boundary
            # must quarantine the run, not crash the session.
            injector.machine_probe()
        pairs = [(value, None) for value in args]
        try:
            value, _ = self._call(function, pairs, function.location)
        except ProgramHalt as halt:
            return halt.code
        return value

    # -- call machinery ----------------------------------------------------

    def _call(self, function, arg_pairs, location):
        region = self.memory.push_frame(
            max(function.frame_size, 1), function.name, len(self._frames) + 1
        )
        frame = Frame(function, region)
        for slot, (value, sym) in zip(function.param_slots, arg_pairs):
            addr = region.start + slot.offset
            self._store_scalar_or_struct(addr, slot.ctype, value, sym)
        self._frames.append(frame)
        try:
            compiled = self.compiled
            if compiled is not None:
                return self._execute_compiled(
                    compiled.function(function), frame
                )
            return self._execute(function, frame)
        finally:
            self._frames.pop()
            self.memory.pop_frame(region, frame.alloca_regions)
            self.symbolic.invalidate(region.start, region.size)

    def _store_scalar_or_struct(self, addr, ctype, value, sym):
        if ctype.is_struct():
            data = value.data if isinstance(value, _StructValue) else value
            self.memory.write_bytes(addr, data)
            if isinstance(value, _StructValue) \
                    and value.source_addr is not None:
                self.symbolic.copy_range(value.source_addr, addr, ctype.size)
            else:
                self.symbolic.invalidate(addr, ctype.size)
            return
        size = ctype.size
        signed = ctype.is_integer() and ctype.signed
        self.memory.write_int(addr, value, size, signed)
        self.symbolic.write(addr, size, sym)

    def _execute(self, function, frame):
        instrs = function.instrs
        dispatch = self._STEP_DISPATCH
        pc = 0
        limit = self.options.max_steps
        deadline = self.options.deadline
        interrupt_check = self.options.interrupt_check
        injector = fault_points.ACTIVE
        watchdog = deadline is not None or interrupt_check is not None \
            or injector is not None
        while True:
            self.steps += 1
            instr = instrs[pc]
            if self.steps > limit:
                raise NonTermination(self.steps, instr.location)
            if watchdog and self.steps >= self._next_watchdog:
                self._next_watchdog = \
                    self.steps + self.options.watchdog_interval
                if injector is not None:
                    # Fault seam: resource exhaustion mid-execution, at
                    # watchdog cadence so deep runs are also exposed.
                    injector.machine_probe()
                if interrupt_check is not None:
                    interrupt_check()
                if deadline is not None:
                    now = time.perf_counter()
                    if now > deadline:
                        raise RunTimeout(now - deadline, instr.location)
            step = dispatch.get(type(instr))
            if step is None:
                raise InterpreterError(
                    "unknown instruction {!r}".format(instr)
                )
            try:
                pc = step(self, instr, pc, function)
            except ExecutionFault as fault:
                # Attach the faulting statement's location so reports and
                # crash-site deduplication have a precise anchor.
                if fault.location is None:
                    fault.location = instr.location
                raise
            if pc < 0:
                return self._return_value

    def _execute_compiled(self, cfunc, frame):
        """Step loop for the compiled engine (repro.interp.compile).

        Mirrors ``_execute`` exactly — same step accounting, watchdog
        cadence, fault-location attachment — but each pc indexes a
        pre-lowered closure ``step(machine, frame_base) -> next pc``
        instead of re-dispatching on the instruction type.
        """
        steps = cfunc.steps
        locations = cfunc.locations
        fbase = frame.region.start
        pc = 0
        limit = self.options.max_steps
        deadline = self.options.deadline
        interrupt_check = self.options.interrupt_check
        injector = fault_points.ACTIVE
        watchdog = deadline is not None or interrupt_check is not None \
            or injector is not None
        while True:
            self.steps += 1
            if self.steps > limit:
                raise NonTermination(self.steps, locations[pc])
            if watchdog and self.steps >= self._next_watchdog:
                self._next_watchdog = \
                    self.steps + self.options.watchdog_interval
                if injector is not None:
                    # Fault seam: same cadence as the interpreter so fault
                    # plans replay identically under either engine.
                    injector.machine_probe()
                if interrupt_check is not None:
                    interrupt_check()
                if deadline is not None:
                    now = time.perf_counter()
                    if now > deadline:
                        raise RunTimeout(now - deadline, locations[pc])
            try:
                pc = steps[pc](self, fbase)
            except ExecutionFault as fault:
                if fault.location is None:
                    fault.location = locations[pc]
                raise
            if pc < 0:
                return self._return_value

    # -- step handlers (one per instruction type; see _STEP_DISPATCH) --------

    #: Sentinel pc returned by _step_ret: unwind with self._return_value.
    _PC_RETURN = -1

    def _step_eval(self, instr, pc, function):
        if self._eval(instr.expr)[1] is not None:
            self.symbolic_steps += 1
        return pc + 1

    def _step_branch(self, instr, pc, function):
        value, sym = self._eval(instr.cond)
        taken = value != 0
        if sym is None:
            constraint = None
        else:
            self.symbolic_steps += 1
            constraint = constraint_from_branch(
                sym, taken, widener=self.widener, value=value,
                unsigned=self._unsigned_ctype(instr.cond.ctype),
            )
        self.branches_executed += 1
        self.covered_branches.add((function.name, pc, taken))
        trace = self.options.trace
        if trace is not None and trace.enabled:
            trace.emit("branch", function=function.name, pc=pc,
                       taken=taken, symbolic=constraint is not None)
        self.hooks.on_branch(taken, constraint, instr.location)
        return instr.target if taken else pc + 1

    def _step_jump(self, instr, pc, function):
        return instr.target

    def _step_ret(self, instr, pc, function):
        if instr.value is None:
            self._return_value = (0, None)
        else:
            self._return_value = self._eval(instr.value)
            if self._return_value[1] is not None:
                self.symbolic_steps += 1
        return self._PC_RETURN

    def _step_abort(self, instr, pc, function):
        if instr.reason == "assertion violation":
            raise AssertionViolation("assertion violated", instr.location)
        raise ProgramAbort("abort() reached", instr.location)

    # -- expression evaluation ----------------------------------------------

    def _eval(self, expr):
        """Evaluate ``expr``; returns (concrete value, symbolic or None)."""
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise InterpreterError(
                "cannot evaluate {} node".format(type(expr).__name__)
            )
        return method(self, expr)

    def _eval_intlit(self, expr):
        return expr.value, None

    def _eval_stringlit(self, expr):
        return self._string_addrs[expr.intern_index], None

    def _eval_ident(self, expr):
        symbol = expr.symbol
        if symbol.kind == ENUM_CONST:
            return symbol.value, None
        addr = self._symbol_addr(symbol)
        return self._load(addr, expr.ctype)

    def _symbol_addr(self, symbol):
        if symbol.kind == GLOBAL:
            return self._global_addrs[symbol.name]
        return self.current_frame.addr_of(symbol)

    def _load(self, addr, ctype):
        if ctype.is_array():
            return addr, None  # decay
        if ctype.is_struct():
            # check_init=False: padding bytes are legitimately unwritten.
            data = self.memory.read_bytes(addr, ctype.size,
                                          check_init=False)
            return _StructValue(data, addr), None
        size = ctype.size
        signed = ctype.is_integer() and ctype.signed
        value = self.memory.read_int(addr, size, signed)
        sym = self.symbolic.read(addr, size)
        if sym is None and self.symbolic.has_overlap(addr, size):
            # A partial overlap (e.g. reading an int whose low byte holds
            # a symbolic char, union/char* aliasing): the loaded value
            # depends on inputs but carries no symbolic expression —
            # outside the theory, so completeness is lost (Fig. 1 spirit).
            self.flags.clear_linear()
        return value, sym

    # -- lvalues ----------------------------------------------------------

    def _eval_lvalue(self, expr):
        """The address of an lvalue; clears ``all_locs_definite`` when the
        address computation itself depends on inputs (Fig. 1's ``*e`` case)."""
        if isinstance(expr, ast.Ident):
            return self._symbol_addr(expr.symbol)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            value, sym = self._eval(expr.operand)
            if sym is not None:
                self.flags.clear_locs()
            return value
        if isinstance(expr, ast.Index):
            return self._index_addr(expr)
        if isinstance(expr, ast.Member):
            return self._member_addr(expr)
        raise InterpreterError(
            "not an lvalue: {}".format(type(expr).__name__)
        )

    def _index_addr(self, expr):
        base_value, base_sym = self._eval(expr.base)
        index_value, index_sym = self._eval(expr.index)
        base_type = expr.base.ctype.decay()
        if not base_type.is_pointer():
            # Semantic analysis allows ``i[p]``; normalize.
            base_value, index_value = index_value, base_value
            base_sym, index_sym = index_sym, base_sym
            base_type = expr.index.ctype.decay()
        if base_sym is not None or index_sym is not None:
            self.flags.clear_locs()
        return base_value + index_value * base_type.pointee.size

    def _member_addr(self, expr):
        if expr.arrow:
            base_value, base_sym = self._eval(expr.base)
            if base_sym is not None:
                self.flags.clear_locs()
            return base_value + expr.field.offset
        return self._eval_lvalue(expr.base) + expr.field.offset

    # -- operators ---------------------------------------------------------

    def _eval_unary(self, expr):
        op = expr.op
        if op == "&":
            return self._eval_lvalue(expr.operand), None
        if op == "*":
            addr = self._eval_lvalue(expr)
            return self._load(addr, expr.ctype)
        if op in ("++", "--"):
            return self._incdec(expr.operand, op, prefix=True)
        value, sym = self._eval(expr.operand)
        if op == "-":
            result = wrap(-value, expr.ctype)
            return result, self.evaluator.neg(value, sym)
        if op == "~":
            result = wrap(~value, expr.ctype)
            return result, self.evaluator.nonlinear(sym)
        if op == "!":
            result = 0 if value != 0 else 1
            if isinstance(sym, LinExpr):
                # ``!e`` of a linear term is a truth test: encode it
                # here, where the operand lane is still known — a later
                # branch on the stored CmpExpr could only drop it.
                # Domain-precise lanes come back as the plain ``e == 0``.
                notsym = self.widener.widen_truth_test(
                    EQ, value, sym,
                    self._unsigned_ctype(expr.operand.ctype), result,
                )
            else:
                notsym = self.evaluator.logical_not(value, sym)
                if notsym is not None and \
                        not self.widener.faithful(notsym, result):
                    notsym = self.widener.drop_unfaithful()
            return result, notsym
        raise InterpreterError("unknown unary operator {!r}".format(op))

    def _eval_postfix(self, expr):
        return self._incdec(expr.operand, expr.op, prefix=False)

    def _incdec(self, target, op, prefix):
        addr = self._eval_lvalue(target)
        ctype = target.ctype.decay()
        old_value, old_sym = self._load(addr, ctype)
        step = ctype.pointee.size if ctype.is_pointer() else 1
        delta = step if op == "++" else -step
        if ctype.is_pointer():
            new_value = old_value + delta
            new_sym = self.evaluator.nonlinear(old_sym)
        else:
            new_value = wrap(old_value + delta, ctype)
            new_sym = self.evaluator.add(old_value, old_sym, delta, None)
        self._store_scalar(addr, ctype, new_value, new_sym)
        if prefix:
            return new_value, new_sym
        return old_value, old_sym

    def _store_scalar(self, addr, ctype, value, sym):
        size = ctype.size
        signed = ctype.is_integer() and ctype.signed
        self.memory.write_int(addr, value, size, signed)
        self.symbolic.write(addr, size, sym)

    def _eval_binary(self, expr):
        op = expr.op
        left_value, left_sym = self._eval(expr.left)
        right_value, right_sym = self._eval(expr.right)
        return self._apply_binary(
            expr, op,
            expr.left.ctype.decay(), left_value, left_sym,
            expr.right.ctype.decay(), right_value, right_sym,
        )

    def _apply_binary(self, expr, op, left_type, left_value, left_sym,
                      right_type, right_value, right_sym):
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._compare(op, left_type, left_value, left_sym,
                                 right_type, right_value, right_sym)
        if left_type.is_pointer() or right_type.is_pointer():
            return self._pointer_arith(op, left_type, left_value, left_sym,
                                       right_type, right_value, right_sym,
                                       expr)
        result_type = expr.ctype.decay()
        if not result_type.signed:
            left_value = to_unsigned(left_value, 4)
            right_value = to_unsigned(right_value, 4)
        if op == "+":
            raw = left_value + right_value
            sym = self.evaluator.add(left_value, left_sym,
                                     right_value, right_sym)
        elif op == "-":
            raw = left_value - right_value
            sym = self.evaluator.sub(left_value, left_sym,
                                     right_value, right_sym)
        elif op == "*":
            raw = left_value * right_value
            sym = self.evaluator.mul(left_value, left_sym,
                                     right_value, right_sym)
        elif op in ("/", "%"):
            if right_value == 0:
                raise DivisionByZero(
                    "{} by zero".format(
                        "division" if op == "/" else "modulo"
                    ),
                    expr.location,
                )
            raw = c_div(left_value, right_value) if op == "/" \
                else c_mod(left_value, right_value)
            sym = self.evaluator.nonlinear(left_sym, right_sym)
        elif op == "<<":
            raw = left_value << (right_value & 31)
            sym = self.evaluator.shift_left(left_value, left_sym,
                                            right_value & 31, right_sym)
        elif op == ">>":
            raw = left_value >> (right_value & 31)
            sym = self.evaluator.nonlinear(left_sym, right_sym)
        elif op == "&":
            raw = left_value & right_value
            sym = self.evaluator.nonlinear(left_sym, right_sym)
        elif op == "|":
            raw = left_value | right_value
            sym = self.evaluator.nonlinear(left_sym, right_sym)
        elif op == "^":
            raw = left_value ^ right_value
            sym = self.evaluator.nonlinear(left_sym, right_sym)
        else:
            raise InterpreterError("unknown binary operator {!r}".format(op))
        # The symbolic half stays in ideal integers even when the concrete
        # result wraps (the paper's lp_solve has no machine arithmetic
        # either).  A comparison recorded from a wrapped value would be
        # false of its own run; _compare detects that and rewrites the
        # conjunct through run-anchored wrap quotients so the recorded
        # fact stays bit-precise (see repro.symbolic.widen).
        return wrap(raw, result_type), sym

    @staticmethod
    def _unsigned_ctype(ctype):
        """Whether a truth test of ``ctype`` lives in the unsigned window."""
        if ctype is None:
            return False
        ctype = ctype.decay()
        if ctype.is_pointer():
            return True
        return ctype.is_integer() and not ctype.signed

    def _compare(self, op, left_type, left_value, left_sym,
                 right_type, right_value, right_sym):
        unsigned = (
            left_type.is_pointer() or right_type.is_pointer()
            or not left_type.signed or not right_type.signed
        )
        if unsigned:
            lv, rv = to_unsigned(left_value, 4), to_unsigned(right_value, 4)
        else:
            lv, rv = left_value, right_value
        result = _COMPARISONS[op](lv, rv)
        if left_sym is None and right_sym is None:
            return (1 if result else 0), None
        if self.widener.lanes_linear(left_sym, right_sym):
            # Every comparison in the linear fragment is encoded by the
            # widener against the *machine* operands (folded into the
            # signed/unsigned window) and the input domains: a
            # domain-precise compare comes back as a plain ideal-integer
            # conjunct, anything that can wrap as a bit-precise
            # WidenedCmp (repro.symbolic.widen).  The ideal-integer
            # reading is never recorded directly — faithful-by-luck
            # conjuncts are exactly the ones whose negations misreport
            # the flipped branch as infeasible.
            sym = self.widener.widen_compare(
                op, lv, left_sym, rv, right_sym, unsigned, result,
                left_value, right_value,
            )
        else:
            # Pointer lanes (the NULL test) and anything outside the
            # linear theory keep the Fig. 1 combinator; the faithfulness
            # screen stays as a last defense, with the drop (which
            # clears ``all_faithful``) as the only remedy.
            sym = self.evaluator.compare(op, left_value, left_sym,
                                         right_value, right_sym)
            if sym is not None and not self.widener.faithful(sym, result):
                sym = self.widener.drop_unfaithful()
        return (1 if result else 0), sym

    def _pointer_arith(self, op, left_type, left_value, left_sym,
                       right_type, right_value, right_sym, expr):
        if op == "-" and left_type.is_pointer() and right_type.is_pointer():
            size = max(left_type.pointee.size, 1)
            diff = (left_value - right_value) // size
            if size == 1:
                sym = self.evaluator.sub(left_value, left_sym,
                                         right_value, right_sym)
            else:
                sym = self.evaluator.nonlinear(left_sym, right_sym)
            return diff, sym
        if left_type.is_pointer():
            ptr_value, ptr_sym = left_value, left_sym
            int_value, int_sym = right_value, right_sym
            pointee = left_type.pointee
        else:
            ptr_value, ptr_sym = right_value, right_sym
            int_value, int_sym = left_value, left_sym
            pointee = right_type.pointee
        size = max(pointee.size, 1)
        offset = int_value * size
        offset_sym = self.evaluator.mul(size, None, int_value, int_sym)
        if op == "+":
            value = ptr_value + offset
            sym = self.evaluator.add(ptr_value, ptr_sym, offset, offset_sym)
        else:
            value = ptr_value - offset
            sym = self.evaluator.sub(ptr_value, ptr_sym, offset, offset_sym)
        return value, sym

    # -- assignment -----------------------------------------------------------

    def _eval_assign(self, expr):
        target_type = expr.target.ctype.decay()
        addr = self._eval_lvalue(expr.target)
        if expr.op == "=":
            value, sym = self._eval(expr.value)
            value, sym = self._convert(
                value, sym, expr.value.ctype.decay(), target_type
            )
        else:
            old_value, old_sym = self._load(addr, target_type)
            rhs_value, rhs_sym = self._eval(expr.value)
            value, sym = self._apply_binary(
                expr, expr.op[:-1],
                target_type, old_value, old_sym,
                expr.value.ctype.decay(), rhs_value, rhs_sym,
            )
            if target_type.is_integer():
                value = wrap(value, target_type)
        if target_type.is_struct():
            self._store_scalar_or_struct(addr, target_type, value, sym)
            return value, sym
        self._store_scalar(addr, target_type, value, sym)
        return value, sym

    def _convert(self, value, sym, from_type, to_type):
        """Implicit conversion on assignment / argument passing / return."""
        if to_type.is_struct():
            return value, sym
        if to_type.is_integer():
            new_value = wrap(value, to_type)
            return new_value, self.evaluator.cast_int(value, new_value, sym)
        if to_type.is_pointer():
            new_value = to_unsigned(value, 4)
            return new_value, self.evaluator.cast_int(value, new_value, sym)
        return value, sym

    def _eval_cast(self, expr):
        value, sym = self._eval(expr.operand)
        target = expr.ctype
        if target.is_void():
            return 0, None
        return self._convert(value, sym, expr.operand.ctype.decay(), target)

    # -- aggregate access -----------------------------------------------------

    def _eval_index(self, expr):
        addr = self._index_addr(expr)
        return self._load(addr, expr.ctype)

    def _eval_member(self, expr):
        if expr.arrow or expr.base.is_lvalue:
            addr = self._member_addr(expr)
            return self._load(addr, expr.ctype)
        # Field of a struct rvalue (e.g. the result of a function call).
        base_value, _ = self._eval(expr.base)
        field = expr.field
        data = base_value.data[field.offset : field.offset + field.ctype.size]
        if field.ctype.is_struct():
            return _StructValue(bytes(data)), None
        signed = field.ctype.is_integer() and field.ctype.signed
        return int.from_bytes(data, "little", signed=signed), None

    # -- calls ------------------------------------------------------------

    def _eval_call(self, expr):
        name = expr.name
        kind = INPUT_INTRINSICS.get(name)
        if kind is not None:
            return self._acquire_input(kind)
        arg_pairs = [self._eval(arg) for arg in expr.args]
        if name in self.module.functions:
            function = self.module.functions[name]
            converted = [
                self._convert(value, sym, arg.ctype.decay(), ptype)
                for (value, sym), arg, ptype in zip(
                    arg_pairs, expr.args, function.ftype.param_types
                )
            ]
            return self._call(function, converted, expr.location)
        handler = BUILTINS.get(name)
        if handler is not None:
            if not (self.options.transparent_memory
                    and name in ("memcpy", "strcpy")):
                if any(sym is not None for _, sym in arg_pairs):
                    # A black-box library call consumed symbolic values.
                    self.flags.clear_linear()
            return handler(self, arg_pairs, expr.location), None
        if expr.symbol is not None and expr.symbol.kind == BUILTIN:
            raise InterpreterError(
                "builtin {!r} has no implementation".format(name)
            )
        raise InterpreterError(
            "call to external function {!r}: generate a test driver first "
            "(repro.dart.driver)".format(name)
        )

    def _acquire_input(self, kind):
        value, var = self.hooks.acquire_input(kind)
        ctype = _INPUT_KIND_TYPES[kind]
        value = wrap(value, ctype)
        if var is None:
            return value, None
        # The widener anchors wrap quotients to this run's assignment; the
        # wrapped value recorded here is exactly what the ideal term
        # x_ordinal evaluates to, so every input lane starts faithful.
        # The kind's machine domain drives its domain-precision check.
        self.widener.note_input(var.ordinal, value, var.lo, var.hi)
        return value, LinExpr.variable(var.ordinal)

    # Dispatch tables, built once.
    _DISPATCH = {}
    _STEP_DISPATCH = {}


Machine._DISPATCH = {
    ast.IntLit: Machine._eval_intlit,
    ast.StringLit: Machine._eval_stringlit,
    ast.Ident: Machine._eval_ident,
    ast.Unary: Machine._eval_unary,
    ast.Postfix: Machine._eval_postfix,
    ast.Binary: Machine._eval_binary,
    ast.Assign: Machine._eval_assign,
    ast.Cast: Machine._eval_cast,
    ast.Index: Machine._eval_index,
    ast.Member: Machine._eval_member,
    ast.Call: Machine._eval_call,
}

Machine._STEP_DISPATCH = {
    ir.Eval: Machine._step_eval,
    ir.Branch: Machine._step_branch,
    ir.Jump: Machine._step_jump,
    ir.Ret: Machine._step_ret,
    ir.AbortInstr: Machine._step_abort,
}
