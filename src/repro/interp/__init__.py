"""Concrete execution of the RAM-machine IR (Section 2.2 of the paper).

The :class:`repro.interp.machine.Machine` executes a lowered
:class:`repro.minic.ir.Module` over a byte-addressable sparse memory, while
simultaneously maintaining the symbolic memory ``S`` — the two side-by-side
executions of the paper's instrumented program (Fig. 3).  A ``hooks`` object
observes input acquisitions and conditional branches; the DART engine plugs
in there, and plain random testing uses a trivial hook.
"""

from repro.interp.faults import (
    AssertionViolation,
    DivisionByZero,
    ExecutionFault,
    InterpreterError,
    InvalidFree,
    NonTermination,
    OutOfMemory,
    ProgramAbort,
    SegFault,
    StackOverflow,
)
from repro.interp.machine import ExecutionHooks, Machine, MachineOptions
from repro.interp.memory import Memory, MemoryOptions

__all__ = [
    "AssertionViolation",
    "DivisionByZero",
    "ExecutionFault",
    "ExecutionHooks",
    "InterpreterError",
    "InvalidFree",
    "Machine",
    "MachineOptions",
    "Memory",
    "MemoryOptions",
    "NonTermination",
    "OutOfMemory",
    "ProgramAbort",
    "SegFault",
    "StackOverflow",
]
