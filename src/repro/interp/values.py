"""32-bit machine arithmetic helpers.

The RAM machine of Section 2.2 maps addresses to 32-bit words; mini-C
follows C's modular semantics: unsigned arithmetic wraps, signed values are
represented in two's complement, and narrowing conversions truncate.
"""

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
INT_MIN = -(1 << 31)
INT_MAX = (1 << 31) - 1
UINT_MAX = WORD_MASK


def wrap_unsigned(value, size=4):
    """Reduce ``value`` modulo 2**(8*size)."""
    return value & ((1 << (8 * size)) - 1)


def wrap_signed(value, size=4):
    """Two's-complement wrap of ``value`` into a signed size-byte integer."""
    bits = 8 * size
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def wrap(value, ctype):
    """Wrap ``value`` into the representation range of integer type ``ctype``."""
    if ctype.signed:
        return wrap_signed(value, ctype.size)
    return wrap_unsigned(value, ctype.size)


def to_unsigned(value, size=4):
    """Reinterpret a (possibly negative) value as unsigned."""
    return value & ((1 << (8 * size)) - 1)


def c_div(a, b):
    """C99 integer division: truncation toward zero."""
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return quotient


def c_mod(a, b):
    """C99 remainder: ``a == c_div(a, b) * b + c_mod(a, b)``."""
    return a - c_div(a, b) * b


def int_to_bytes(value, size, signed):
    """Encode an integer as ``size`` little-endian bytes."""
    if signed:
        value = wrap_signed(value, size)
    else:
        value = wrap_unsigned(value, size)
    return value.to_bytes(size, "little", signed=signed)


def int_from_bytes(data, signed):
    """Decode a little-endian integer."""
    return int.from_bytes(data, "little", signed=signed)
