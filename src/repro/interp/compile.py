"""The compiled execution engine: IR lowered once to Python closures.

The tree-walking interpreter in :mod:`repro.interp.machine` re-dispatches
on instruction and AST-node types on *every* step; at osip scale (§4.3 of
the paper) that dispatch — not the solver — dominates session wall time.
This module lowers each :class:`repro.minic.ir.IRFunction` once into a
flat list of specialized step closures: operand shapes, C types, frame
offsets, wrap masks, signedness and operator functions are all resolved
at lowering time, so executing an instruction is a single closure call.

**Taint gating.** The machine's ``(concrete value, symbolic expression or
None)`` value pairs already carry a per-value taint bit: ``sym is None``
means the value cannot depend on any input.  Every compiled closure tests
that bit inline and, when all operands are untainted, runs a concrete-only
path that skips symbolic expression construction, the
:class:`~repro.symbolic.widen.Widener`, and branch-constraint recording
entirely.  The moment any operand carries taint the closure falls back to
the machine's full-symbolic methods (``_compare``, ``_apply_binary``,
``constraint_from_branch``...), so tainted instructions behave *exactly*
like the interpreter — including every completeness-flag transition.

**Bit-identical invariant.** Both engines share all machine state (memory
``M``, symbolic memory ``S``, hooks, widener, flags, frames, counters)
and must produce identical concrete state, branch events, coverage sets,
faults and fault locations, counters and completeness flags on every
program.  The concrete fast paths below are therefore exact inlinings of
the interpreter's semantics — the untainted early-outs mirror the
evaluator combinators' ``_both_concrete`` returns (which neither build
expressions nor touch flags), so skipping them is observationally
equivalent.  The equivalence is pinned by the engine-differential oracle
(``repro.testgen.oracles``) and a Hypothesis property over generated
programs (``tests/test_compile_engine.py``).

**Constant folding.** Pure concrete subtrees (literals, enum constants,
arithmetic on folded operands) are evaluated at lowering time with the
machine's exact wrap semantics; division by a folded zero is *not* folded
(it must fault at runtime with the right location), and string literals
are never folded (their addresses are per-machine).

Lowering is lazy — a function is compiled on its first call — and
:class:`CompiledProgram` accumulates ``compile_seconds`` so the session
profiler can attribute lowering to its own ``compile`` phase instead of
polluting ``execute``.
"""

import operator
import time

from repro.interp.builtins import BUILTINS, INPUT_INTRINSICS
from repro.interp.faults import (
    AssertionViolation,
    DivisionByZero,
    InterpreterError,
    ProgramAbort,
)
from repro.interp.values import c_div, c_mod, wrap
from repro.minic import ast_nodes as ast
from repro.minic import ir
from repro.minic.symbols import ENUM_CONST, GLOBAL
from repro.symbolic.evaluate import constraint_from_branch
from repro.symbolic.expr import EQ, LinExpr

_M32 = 0xFFFFFFFF

_CMP = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    ">": operator.gt,
    "<=": operator.le,
    ">=": operator.ge,
}

#: Shared "no value" pair (void returns, casts to void).
_ZERO_PAIR = (0, None)

#: Constant-folding failure sentinel (None is a legitimate fold result
#: only in the sense that it never is — folds are ints).
_NOT_CONST = object()


def _wrap_fn(ctype):
    """A closure computing ``values.wrap(v, ctype)`` with baked-in masks."""
    bits = 8 * ctype.size
    mask = (1 << bits) - 1
    if ctype.signed:
        sbit = 1 << (bits - 1)
        # Branch-free two's-complement wrap.
        return lambda v: ((v & mask) ^ sbit) - sbit
    return lambda v: v & mask


def _unsigned_ctype(ctype):
    """Machine._unsigned_ctype, available at lowering time."""
    if ctype is None:
        return False
    ctype = ctype.decay()
    if ctype.is_pointer():
        return True
    return ctype.is_integer() and not ctype.signed


# ---------------------------------------------------------------------------
# Constant folding (lowering-time evaluation of pure concrete subtrees)
# ---------------------------------------------------------------------------


def _fold(e):
    """The concrete value the machine would compute for ``e``, or
    ``_NOT_CONST``.  Only side-effect-free nodes whose machine semantics
    are fully determined at lowering time are folded; the arithmetic
    mirrors ``Machine._apply_binary``/``_eval_unary`` exactly (including
    the unsigned operand folding and the final wrap)."""
    if isinstance(e, ast.IntLit):
        return e.value
    if isinstance(e, ast.Ident):
        symbol = e.symbol
        if symbol is not None and symbol.kind == ENUM_CONST:
            return symbol.value
        return _NOT_CONST
    if isinstance(e, ast.Unary):
        if e.op not in ("-", "~", "!"):
            return _NOT_CONST
        value = _fold(e.operand)
        if value is _NOT_CONST:
            return _NOT_CONST
        if e.op == "!":
            return 0 if value != 0 else 1
        if e.ctype is None or not e.ctype.is_integer():
            return _NOT_CONST
        return wrap(-value if e.op == "-" else ~value, e.ctype)
    if isinstance(e, ast.Cast):
        value = _fold(e.operand)
        if value is _NOT_CONST or e.ctype is None:
            return _NOT_CONST
        if e.ctype.is_void():
            return 0
        if e.ctype.is_integer():
            return wrap(value, e.ctype)
        if e.ctype.is_pointer():
            return value & _M32
        return _NOT_CONST
    if isinstance(e, ast.Binary):
        return _fold_binary(e)
    return _NOT_CONST


def _fold_binary(e):
    lv = _fold(e.left)
    if lv is _NOT_CONST:
        return _NOT_CONST
    rv = _fold(e.right)
    if rv is _NOT_CONST:
        return _NOT_CONST
    lt = e.left.ctype.decay() if e.left.ctype is not None else None
    rt = e.right.ctype.decay() if e.right.ctype is not None else None
    if lt is None or rt is None:
        return _NOT_CONST
    op = e.op
    if op in _CMP:
        unsigned = (lt.is_pointer() or rt.is_pointer()
                    or not lt.signed or not rt.signed)
        if unsigned:
            lv &= _M32
            rv &= _M32
        return 1 if _CMP[op](lv, rv) else 0
    if lt.is_pointer() or rt.is_pointer():
        return _NOT_CONST  # pointer arithmetic: addresses are per-machine
    result_type = e.ctype.decay() if e.ctype is not None else None
    if result_type is None or not result_type.is_integer():
        return _NOT_CONST
    if not result_type.signed:
        lv &= _M32
        rv &= _M32
    if op == "+":
        raw = lv + rv
    elif op == "-":
        raw = lv - rv
    elif op == "*":
        raw = lv * rv
    elif op in ("/", "%"):
        if rv == 0:
            return _NOT_CONST  # must fault at runtime, with a location
        raw = c_div(lv, rv) if op == "/" else c_mod(lv, rv)
    elif op == "<<":
        raw = lv << (rv & 31)
    elif op == ">>":
        raw = lv >> (rv & 31)
    elif op == "&":
        raw = lv & rv
    elif op == "|":
        raw = lv | rv
    elif op == "^":
        raw = lv ^ rv
    else:
        return _NOT_CONST
    return wrap(raw, result_type)


# ---------------------------------------------------------------------------
# Expression lowering
# ---------------------------------------------------------------------------


class _Compiler:
    """Lowers one module's expressions/instructions to closures.

    Every generated closure has the signature ``closure(m, f)`` where
    ``m`` is the executing :class:`~repro.interp.machine.Machine` and
    ``f`` is the current frame's base address; expression closures return
    the machine's ``(value, sym)`` pairs, lvalue closures return
    addresses, step closures return the next pc (negative = return).
    """

    def __init__(self, module):
        self.module = module

    # -- generic expression dispatch ------------------------------------

    def expr(self, e):
        value = _fold(e)
        if value is not _NOT_CONST:
            pair = (value, None)
            return lambda m, f: pair
        method = self._DISPATCH.get(type(e))
        if method is None:
            # Sound fallback: the interpreter evaluates the node against
            # the same shared machine state.
            return lambda m, f: m._eval(e)
        return method(self, e)

    # -- loads / stores (specialized by C type) -------------------------

    def _load_fn(self, ctype):
        """``load(m, addr) -> (value, sym)`` mirroring Machine._load."""
        if ctype.is_array():
            return lambda m, addr: (addr, None)  # decay
        if ctype.is_struct():
            size = ctype.size

            def load_struct(m, addr):
                data = m.memory.read_bytes(addr, size, check_init=False)
                return _struct_value(data, addr), None

            return load_struct
        size = ctype.size
        signed = ctype.is_integer() and ctype.signed
        from_bytes = int.from_bytes

        def load(m, addr):
            mem = m.memory
            region = mem._last_region
            if (
                region is not None
                and region.start <= addr
                and addr + size <= region.start + region.size
                and region.live
                and region.written is None
            ):
                off = addr - region.start
                value = from_bytes(
                    region.data[off:off + size], "little", signed=signed
                )
            else:
                value = mem.read_int(addr, size, signed)
            symbolic = m.symbolic
            # Inlined bounds guard: S is consulted only when [addr, addr+size)
            # intersects the range symbolic data was ever stored in.
            if symbolic._entries and addr < symbolic._hi \
                    and addr + size > symbolic._lo:
                sym = symbolic.read(addr, size)
                if sym is None and symbolic.has_overlap(addr, size):
                    m.flags.clear_linear()
                return value, sym
            return value, None

        return load

    def _store_fn(self, ctype):
        """``store(m, addr, value, sym)`` mirroring Machine._store_scalar."""
        size = ctype.size
        signed = ctype.is_integer() and ctype.signed
        mask = (1 << (8 * size)) - 1

        def store(m, addr, value, sym):
            mem = m.memory
            region = mem._last_region
            if (
                region is not None
                and region.start <= addr
                and addr + size <= region.start + region.size
                and region.live
                and region.written is None
                and region.kind != "string"
            ):
                off = addr - region.start
                region.data[off:off + size] = (value & mask).to_bytes(
                    size, "little"
                )
            else:
                mem.write_int(addr, value, size, signed)
            symbolic = m.symbolic
            if sym is not None:
                symbolic.write(addr, size, sym)
            elif symbolic._entries and addr < symbolic._hi \
                    and addr + size > symbolic._lo:
                # A concrete store can only matter to S by invalidating an
                # overlapping entry; outside the bounds it is a no-op.
                symbolic.write(addr, size, None)

        return store

    def _convert_fn(self, from_type, to_type):
        """Machine._convert split into (concrete, full) closures.

        ``concrete(v)`` is the conversion for untainted values (the
        symbolic half stays None); ``full(m, v, s)`` is the tainted path
        including ``evaluator.cast_int``.
        """
        if to_type.is_struct():
            return (lambda v: v), (lambda m, v, s: (v, s))
        if to_type.is_integer():
            wrapf = _wrap_fn(to_type)

            def full_int(m, v, s):
                nv = wrapf(v)
                return nv, m.evaluator.cast_int(v, nv, s)

            return wrapf, full_int
        if to_type.is_pointer():

            def conc_ptr(v):
                return v & _M32

            def full_ptr(m, v, s):
                nv = v & _M32
                return nv, m.evaluator.cast_int(v, nv, s)

            return conc_ptr, full_ptr
        return (lambda v: v), (lambda m, v, s: (v, s))

    # -- lvalues ---------------------------------------------------------

    def lvalue(self, e):
        """``lv(m, f) -> address``, mirroring Machine._eval_lvalue."""
        if isinstance(e, ast.Ident):
            symbol = e.symbol
            if symbol.kind == GLOBAL:
                name = symbol.name
                return lambda m, f: m._global_addrs[name]
            off = symbol.frame_offset
            if off is None:
                return lambda m, f: m._eval_lvalue(e)
            return lambda m, f: f + off
        if isinstance(e, ast.Unary) and e.op == "*":
            operand = self.expr(e.operand)

            def lv_deref(m, f):
                value, sym = operand(m, f)
                if sym is not None:
                    m.flags.clear_locs()
                return value

            return lv_deref
        if isinstance(e, ast.Index):
            return self._index_lvalue(e)
        if isinstance(e, ast.Member):
            return self._member_lvalue(e)
        return lambda m, f: m._eval_lvalue(e)

    def _index_lvalue(self, e):
        base = self.expr(e.base)
        index = self.expr(e.index)
        base_type = e.base.ctype.decay()
        if base_type.is_pointer():
            esize = base_type.pointee.size

            def lv_index(m, f):
                base_value, base_sym = base(m, f)
                index_value, index_sym = index(m, f)
                if base_sym is not None or index_sym is not None:
                    m.flags.clear_locs()
                return base_value + index_value * esize

            return lv_index
        # ``i[p]``: semantic analysis allows it; the pointer is the index.
        esize = e.index.ctype.decay().pointee.size

        def lv_index_swapped(m, f):
            index_value, index_sym = base(m, f)
            base_value, base_sym = index(m, f)
            if base_sym is not None or index_sym is not None:
                m.flags.clear_locs()
            return base_value + index_value * esize

        return lv_index_swapped

    def _member_lvalue(self, e):
        offset = e.field.offset
        if e.arrow:
            base = self.expr(e.base)

            def lv_arrow(m, f):
                base_value, base_sym = base(m, f)
                if base_sym is not None:
                    m.flags.clear_locs()
                return base_value + offset

            return lv_arrow
        inner = self.lvalue(e.base)
        return lambda m, f: inner(m, f) + offset

    # -- node compilers --------------------------------------------------

    def intlit(self, e):
        pair = (e.value, None)
        return lambda m, f: pair

    def stringlit(self, e):
        index = e.intern_index
        return lambda m, f: (m._string_addrs[index], None)

    def ident(self, e):
        symbol = e.symbol
        if symbol.kind == ENUM_CONST:
            pair = (symbol.value, None)
            return lambda m, f: pair
        ctype = e.ctype
        load = self._load_fn(ctype)
        if symbol.kind == GLOBAL:
            name = symbol.name
            return lambda m, f: load(m, m._global_addrs[name])
        off = symbol.frame_offset
        if off is None:
            return lambda m, f: m._eval(e)
        if not (ctype.is_array() or ctype.is_struct()):
            # Scalar frame local: the hottest expression form by far.
            # Fuse the address computation into the load body so reading
            # a local costs one closure call, not a lambda + load chain.
            size = ctype.size
            signed = ctype.is_integer() and ctype.signed
            from_bytes = int.from_bytes

            def load_local(m, f):
                addr = f + off
                mem = m.memory
                region = mem._last_region
                if (
                    region is not None
                    and region.start <= addr
                    and addr + size <= region.start + region.size
                    and region.live
                    and region.written is None
                ):
                    roff = addr - region.start
                    value = from_bytes(
                        region.data[roff:roff + size], "little",
                        signed=signed,
                    )
                else:
                    value = mem.read_int(addr, size, signed)
                symbolic = m.symbolic
                if symbolic._entries and addr < symbolic._hi \
                        and addr + size > symbolic._lo:
                    sym = symbolic.read(addr, size)
                    if sym is None and symbolic.has_overlap(addr, size):
                        m.flags.clear_linear()
                    return value, sym
                return value, None

            return load_local
        return lambda m, f: load(m, f + off)

    def unary(self, e):
        op = e.op
        if op == "&":
            lv = self.lvalue(e.operand)
            return lambda m, f: (lv(m, f), None)
        if op == "*":
            lv = self.lvalue(e)
            load = self._load_fn(e.ctype)
            return lambda m, f: load(m, lv(m, f))
        if op in ("++", "--"):
            return self._incdec(e.operand, op, prefix=True)
        operand = self.expr(e.operand)
        if op in ("-", "~"):
            if e.ctype is None or not e.ctype.is_integer():
                return lambda m, f: m._eval(e)
            wrapf = _wrap_fn(e.ctype)
            if op == "-":

                def ev_neg(m, f):
                    value, sym = operand(m, f)
                    if sym is None:
                        return wrapf(-value), None
                    return wrapf(-value), m.evaluator.neg(value, sym)

                return ev_neg

            def ev_inv(m, f):
                value, sym = operand(m, f)
                if sym is None:
                    return wrapf(~value), None
                return wrapf(~value), m.evaluator.nonlinear(sym)

            return ev_inv
        if op == "!":
            unsigned = _unsigned_ctype(e.operand.ctype)

            def ev_not(m, f):
                value, sym = operand(m, f)
                result = 0 if value != 0 else 1
                if sym is None:
                    return result, None
                if isinstance(sym, LinExpr):
                    notsym = m.widener.widen_truth_test(
                        EQ, value, sym, unsigned, result
                    )
                else:
                    notsym = m.evaluator.logical_not(value, sym)
                    if notsym is not None and \
                            not m.widener.faithful(notsym, result):
                        notsym = m.widener.drop_unfaithful()
                return result, notsym

            return ev_not
        return lambda m, f: m._eval(e)

    def postfix(self, e):
        return self._incdec(e.operand, e.op, prefix=False)

    def _incdec(self, target, op, prefix):
        lv = self.lvalue(target)
        ctype = target.ctype.decay()
        load = self._load_fn(ctype)
        store = self._store_fn(ctype)
        if ctype.is_pointer():
            step = ctype.pointee.size
            delta = step if op == "++" else -step

            def ev_ptr(m, f):
                addr = lv(m, f)
                old_value, old_sym = load(m, addr)
                new_value = old_value + delta
                new_sym = None if old_sym is None \
                    else m.evaluator.nonlinear(old_sym)
                store(m, addr, new_value, new_sym)
                if prefix:
                    return new_value, new_sym
                return old_value, old_sym

            return ev_ptr
        delta = 1 if op == "++" else -1
        wrapf = _wrap_fn(ctype)

        def ev_int(m, f):
            addr = lv(m, f)
            old_value, old_sym = load(m, addr)
            new_value = wrapf(old_value + delta)
            new_sym = None if old_sym is None \
                else m.evaluator.add(old_value, old_sym, delta, None)
            store(m, addr, new_value, new_sym)
            if prefix:
                return new_value, new_sym
            return old_value, old_sym

        return ev_int

    def binary(self, e):
        left = self.expr(e.left)
        right = self.expr(e.right)
        apply = self._make_apply(
            e, e.op, e.left.ctype.decay(), e.right.ctype.decay()
        )

        def ev(m, f):
            lv, ls = left(m, f)
            rv, rs = right(m, f)
            return apply(m, lv, ls, rv, rs)

        return ev

    def _make_apply(self, e, op, lt, rt):
        """``apply(m, lv, ls, rv, rs) -> (value, sym)`` mirroring
        Machine._apply_binary, with the untainted path inlined."""

        def apply_generic(m, lv, ls, rv, rs):
            return m._apply_binary(e, op, lt, lv, ls, rt, rv, rs)

        if op in _CMP:
            cmpf = _CMP[op]
            unsigned = (lt.is_pointer() or rt.is_pointer()
                        or not lt.signed or not rt.signed)

            def apply_cmp(m, lv, ls, rv, rs):
                if ls is None and rs is None:
                    if unsigned:
                        lv &= _M32
                        rv &= _M32
                    return (1 if cmpf(lv, rv) else 0), None
                return m._compare(op, lt, lv, ls, rt, rv, rs)

            return apply_cmp
        if lt.is_pointer() or rt.is_pointer():
            if op == "-" and lt.is_pointer() and rt.is_pointer():
                size = max(lt.pointee.size, 1)

                def apply_ptrdiff(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        return (lv - rv) // size, None
                    return apply_generic(m, lv, ls, rv, rs)

                return apply_ptrdiff
            if op in ("+", "-"):
                if lt.is_pointer():
                    size = max(lt.pointee.size, 1)
                    negate = op == "-"

                    def apply_ptr_left(m, lv, ls, rv, rs):
                        if ls is None and rs is None:
                            offset = rv * size
                            return (lv - offset if negate
                                    else lv + offset), None
                        return apply_generic(m, lv, ls, rv, rs)

                    return apply_ptr_left
                size = max(rt.pointee.size, 1)
                negate = op == "-"

                def apply_ptr_right(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        offset = lv * size
                        return (rv - offset if negate
                                else rv + offset), None
                    return apply_generic(m, lv, ls, rv, rs)

                return apply_ptr_right
            return apply_generic
        result_type = e.ctype.decay() if e.ctype is not None else None
        if result_type is None or not result_type.is_integer():
            return apply_generic
        wrapf = _wrap_fn(result_type)
        ufold = not result_type.signed
        # The wrap is inlined below rather than calling wrapf: a Python
        # closure call per arithmetic node is the single largest cost of
        # the concrete fast path.
        mask = (1 << (8 * result_type.size)) - 1
        sbit = 1 << (8 * result_type.size - 1)
        if op in ("+", "-", "*"):
            arith = {"+": operator.add, "-": operator.sub,
                     "*": operator.mul}[op]
            if ufold:

                def apply_arith(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        return arith(lv & _M32, rv & _M32) & mask, None
                    return apply_generic(m, lv, ls, rv, rs)

            else:

                def apply_arith(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        return ((arith(lv, rv) & mask) ^ sbit) - sbit, \
                            None
                    return apply_generic(m, lv, ls, rv, rs)

            return apply_arith
        if op in ("/", "%"):
            message = "division by zero" if op == "/" else "modulo by zero"
            divf = c_div if op == "/" else c_mod
            location = e.location

            def apply_div(m, lv, ls, rv, rs):
                if ls is None and rs is None:
                    if ufold:
                        lv &= _M32
                        rv &= _M32
                    if rv == 0:
                        raise DivisionByZero(message, location)
                    return wrapf(divf(lv, rv)), None
                return apply_generic(m, lv, ls, rv, rs)

            return apply_div
        if op in ("<<", ">>", "&", "|", "^"):
            if op == "<<":
                def bitf(a, b):
                    return a << (b & 31)
            elif op == ">>":
                def bitf(a, b):
                    return a >> (b & 31)
            else:
                bitf = {"&": operator.and_, "|": operator.or_,
                        "^": operator.xor}[op]

            if ufold:

                def apply_bit(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        return bitf(lv & _M32, rv & _M32) & mask, None
                    return apply_generic(m, lv, ls, rv, rs)

            else:

                def apply_bit(m, lv, ls, rv, rs):
                    if ls is None and rs is None:
                        return ((bitf(lv, rv) & mask) ^ sbit) - sbit, None
                    return apply_generic(m, lv, ls, rv, rs)

            return apply_bit
        return apply_generic

    def assign(self, e):
        target_type = e.target.ctype.decay()
        lv = self.lvalue(e.target)
        if e.op == "=":
            value = self.expr(e.value)
            if target_type.is_struct():

                def ev_struct(m, f):
                    addr = lv(m, f)
                    v, s = value(m, f)
                    m._store_scalar_or_struct(addr, target_type, v, s)
                    return v, s

                return ev_struct
            conc, full = self._convert_fn(
                e.value.ctype.decay(), target_type
            )
            store = self._store_fn(target_type)
            target = e.target
            if (
                isinstance(target, ast.Ident)
                and target.symbol.kind != GLOBAL
                and target.symbol.frame_offset is not None
            ):
                # Scalar local on the left: fold the address computation
                # into the assignment closure (the hot loop-body shape).
                off = target.symbol.frame_offset

                def ev_assign_local(m, f):
                    v, s = value(m, f)
                    if s is None:
                        v = conc(v)
                        store(m, f + off, v, None)
                        return v, None
                    v, s = full(m, v, s)
                    store(m, f + off, v, s)
                    return v, s

                return ev_assign_local

            def ev_assign(m, f):
                addr = lv(m, f)
                v, s = value(m, f)
                if s is None:
                    v = conc(v)
                    store(m, addr, v, None)
                    return v, None
                v, s = full(m, v, s)
                store(m, addr, v, s)
                return v, s

            return ev_assign
        # Compound assignment (+=, -=, ...): load-modify-store.
        binop = e.op[:-1]
        rhs_type = e.value.ctype.decay()
        load = self._load_fn(target_type)
        store = self._store_fn(target_type)
        rhs = self.expr(e.value)
        apply = self._make_apply(e, binop, target_type, rhs_type)
        target_int = target_type.is_integer()
        wrapt = _wrap_fn(target_type) if target_int else None

        def ev_compound(m, f):
            addr = lv(m, f)
            old_value, old_sym = load(m, addr)
            rv, rs = rhs(m, f)
            v, s = apply(m, old_value, old_sym, rv, rs)
            if target_int:
                v = wrapt(v)
            store(m, addr, v, s)
            return v, s

        return ev_compound

    def cast(self, e):
        operand = self.expr(e.operand)
        target = e.ctype
        if target.is_void():

            def ev_void(m, f):
                operand(m, f)
                return _ZERO_PAIR

            return ev_void
        conc, full = self._convert_fn(e.operand.ctype.decay(), target)

        def ev_cast(m, f):
            v, s = operand(m, f)
            if s is None:
                return conc(v), None
            return full(m, v, s)

        return ev_cast

    def index(self, e):
        lv = self._index_lvalue(e)
        load = self._load_fn(e.ctype)
        return lambda m, f: load(m, lv(m, f))

    def member(self, e):
        if e.arrow or e.base.is_lvalue:
            lv = self._member_lvalue(e)
            load = self._load_fn(e.ctype)
            return lambda m, f: load(m, lv(m, f))
        # Field of a struct rvalue: rare; the interpreter path is shared.
        return lambda m, f: m._eval_member(e)

    def call(self, e):
        name = e.name
        kind = INPUT_INTRINSICS.get(name)
        if kind is not None:
            return lambda m, f: m._acquire_input(kind)
        arg_evs = [self.expr(arg) for arg in e.args]
        location = e.location
        function = self.module.functions.get(name)
        if function is not None:
            converters = [
                self._convert_fn(arg.ctype.decay(), ptype)
                for arg, ptype in zip(e.args, function.ftype.param_types)
            ]

            def ev_call(m, f):
                pairs = [ev(m, f) for ev in arg_evs]
                converted = []
                for (conc, full), (v, s) in zip(converters, pairs):
                    if s is None:
                        converted.append((conc(v), None))
                    else:
                        converted.append(full(m, v, s))
                return m._call(function, converted, location)

            return ev_call
        handler = BUILTINS.get(name)
        if handler is not None:
            transparent_candidate = name in ("memcpy", "strcpy")

            def ev_builtin(m, f):
                pairs = [ev(m, f) for ev in arg_evs]
                if not (m.options.transparent_memory
                        and transparent_candidate):
                    if any(s is not None for _, s in pairs):
                        # A black-box library call consumed symbolic
                        # values (same loss as the interpreter records).
                        m.flags.clear_linear()
                return handler(m, pairs, location), None

            return ev_builtin
        # Unknown callee: the interpreter raises the right diagnostic.
        return lambda m, f: m._eval_call(e)

    # -- instruction lowering --------------------------------------------

    def instr(self, instruction, pc, function):
        if isinstance(instruction, ir.Eval):
            ev = self.expr(instruction.expr)
            next_pc = pc + 1

            def step_eval(m, f):
                if ev(m, f)[1] is not None:
                    m.symbolic_steps += 1
                return next_pc

            return step_eval
        if isinstance(instruction, ir.Branch):
            cond = self.expr(instruction.cond)
            unsigned = _unsigned_ctype(instruction.cond.ctype)
            target = instruction.target
            next_pc = pc + 1
            location = instruction.location
            fname = function.name
            key_taken = (fname, pc, True)
            key_not_taken = (fname, pc, False)

            def step_branch(m, f):
                value, sym = cond(m, f)
                taken = value != 0
                if sym is None:
                    constraint = None
                else:
                    m.symbolic_steps += 1
                    constraint = constraint_from_branch(
                        sym, taken, widener=m.widener, value=value,
                        unsigned=unsigned,
                    )
                m.branches_executed += 1
                m.covered_branches.add(key_taken if taken
                                       else key_not_taken)
                trace = m.options.trace
                if trace is not None and trace.enabled:
                    trace.emit("branch", function=fname, pc=pc,
                               taken=taken,
                               symbolic=constraint is not None)
                m.hooks.on_branch(taken, constraint, location)
                return target if taken else next_pc

            return step_branch
        if isinstance(instruction, ir.Jump):
            target = instruction.target
            return lambda m, f: target
        if isinstance(instruction, ir.Ret):
            if instruction.value is None:

                def step_ret_void(m, f):
                    m._return_value = _ZERO_PAIR
                    return -1

                return step_ret_void
            ev = self.expr(instruction.value)

            def step_ret(m, f):
                pair = ev(m, f)
                if pair[1] is not None:
                    m.symbolic_steps += 1
                m._return_value = pair
                return -1

            return step_ret
        if isinstance(instruction, ir.AbortInstr):
            location = instruction.location
            if instruction.reason == "assertion violation":

                def step_assert(m, f):
                    raise AssertionViolation("assertion violated", location)

                return step_assert

            def step_abort(m, f):
                raise ProgramAbort("abort() reached", location)

            return step_abort
        raise InterpreterError(
            "cannot compile instruction {!r}".format(instruction)
        )

    _DISPATCH = {}


_Compiler._DISPATCH = {
    ast.IntLit: _Compiler.intlit,
    ast.StringLit: _Compiler.stringlit,
    ast.Ident: _Compiler.ident,
    ast.Unary: _Compiler.unary,
    ast.Postfix: _Compiler.postfix,
    ast.Binary: _Compiler.binary,
    ast.Assign: _Compiler.assign,
    ast.Cast: _Compiler.cast,
    ast.Index: _Compiler.index,
    ast.Member: _Compiler.member,
    ast.Call: _Compiler.call,
}


def _struct_value(data, addr):
    """Build the machine's struct rvalue (lazy import avoids a cycle at
    module-definition time; the class object is cached on first use)."""
    global _StructValue
    if _StructValue is None:
        from repro.interp.machine import _StructValue as cls
        _StructValue = cls
    return _StructValue(data, addr)


_StructValue = None


# ---------------------------------------------------------------------------
# Compiled artifacts
# ---------------------------------------------------------------------------


class CompiledFunction:
    """One lowered function: a closure per instruction, plus locations
    (for NonTermination / RunTimeout / fault-location anchoring)."""

    __slots__ = ("name", "steps", "locations")

    def __init__(self, name, steps, locations):
        self.name = name
        self.steps = steps
        self.locations = locations

    def __repr__(self):
        return "CompiledFunction({!r}, {} steps)".format(
            self.name, len(self.steps)
        )


class CompiledProgram:
    """Per-module cache of :class:`CompiledFunction` artifacts.

    One instance is shared by every :class:`Machine` a session creates
    (closures bake in only module-level facts — types, offsets, operator
    shapes — never per-machine state, which always arrives through the
    ``m`` argument).  Functions are lowered lazily on first call;
    ``compile_seconds`` / ``functions_compiled`` let the runner attribute
    lowering to the ``compile`` phase.
    """

    def __init__(self, module):
        self.module = module
        self._functions = {}
        self._compiler = _Compiler(module)
        #: Cumulative lowering wall time (read by the session profiler).
        self.compile_seconds = 0.0
        self.functions_compiled = 0

    def function(self, ir_function):
        """The compiled form of ``ir_function`` (lowered on first use)."""
        compiled = self._functions.get(ir_function.name)
        if compiled is None:
            started = time.perf_counter()
            compiled = self._compile(ir_function)
            self.compile_seconds += time.perf_counter() - started
            self.functions_compiled += 1
            self._functions[ir_function.name] = compiled
        return compiled

    def _compile(self, function):
        compiler = self._compiler
        steps = []
        locations = []
        for pc, instruction in enumerate(function.instrs):
            locations.append(instruction.location)
            steps.append(compiler.instr(instruction, pc, function))
        return CompiledFunction(function.name, steps, locations)
