"""Byte-addressable memory for the RAM machine.

Memory is organized as non-overlapping *regions* (globals, interned
strings, stack frames, heap blocks, ``alloca`` blocks), each backed by a
``bytearray``.  Every access is checked against the owning region: touching
NULL, unmapped addresses, freed heap blocks or popped stack frames raises
:class:`repro.interp.faults.SegFault` — this is what lets DART report the
oSIP-style NULL-dereference crashes of Section 4.3 precisely.

``alloca`` follows the paper's description of the oSIP security bug: it
"returns a pointer to size bytes of uninitialized local stack space, or
NULL if the allocation failed", with failure governed by the configurable
``stack_limit`` (the 2.5 MB cygwin stack of the paper, scaled down by the
benchmarks so that the attack stays laptop-sized).
"""

import bisect

from repro.interp.faults import (
    InvalidFree,
    SegFault,
    StackOverflow,
    UninitializedRead,
)

GLOBALS_BASE = 0x0001_0000
STRINGS_BASE = 0x0800_0000
HEAP_BASE = 0x2000_0000
STACK_BASE = 0x4000_0000
ADDRESS_LIMIT = 0x7FFF_FFFF


class MemoryOptions:
    """Configurable memory-system limits."""

    def __init__(self, stack_limit=1 << 20, heap_limit=1 << 26,
                 max_call_depth=512, track_uninitialized=False):
        #: Total bytes available to stack frames plus ``alloca``.
        self.stack_limit = stack_limit
        #: Total bytes available to ``malloc``.
        self.heap_limit = heap_limit
        #: Maximum call-stack depth before a StackOverflow fault.
        self.max_call_depth = max_call_depth
        #: Report reads of never-written stack/heap bytes as faults (the
        #: check the paper delegates to Purify/CCured).
        self.track_uninitialized = track_uninitialized


class Region:
    """One contiguous allocation."""

    __slots__ = ("start", "size", "data", "live", "kind", "label",
                 "written")

    def __init__(self, start, size, kind, label, track_writes=False):
        self.start = start
        self.size = size
        self.data = bytearray(size)
        self.live = True
        self.kind = kind  # "globals", "string", "stack", "heap", "alloca"
        self.label = label
        #: Per-byte written bitmap (only when uninitialized-read tracking
        #: is on and the region starts out uninitialized).
        self.written = bytearray(size) if track_writes else None

    @property
    def end(self):
        return self.start + self.size

    def __repr__(self):
        return "Region({:#x}+{}, {}, {!r}{})".format(
            self.start, self.size, self.kind, self.label,
            "" if self.live else ", dead",
        )


class Memory:
    """The RAM machine's memory ``M``."""

    def __init__(self, options=None):
        self.options = options or MemoryOptions()
        self._regions = {}
        self._starts = []
        self._last_region = None  # one-entry lookup cache (hot path)
        self._bumps = {
            "globals": GLOBALS_BASE,
            "string": STRINGS_BASE,
            "heap": HEAP_BASE,
            "stack": STACK_BASE,
        }
        self._stack_used = 0
        self._heap_used = 0

    # -- allocation -------------------------------------------------------

    def _place(self, segment, size, kind, label):
        size = max(size, 1)
        aligned = (size + 7) & ~7
        start = self._bumps[segment]
        if start + aligned > ADDRESS_LIMIT:
            raise SegFault("address space exhausted", start)
        self._bumps[segment] = start + aligned
        track = (
            self.options.track_uninitialized
            and kind in ("stack", "heap", "alloca")
        )
        region = Region(start, size, kind, label, track_writes=track)
        self._regions[start] = region
        bisect.insort(self._starts, start)
        return region

    def alloc_global(self, size, label):
        return self._place("globals", size, "globals", label)

    def alloc_string(self, data, label="<string>"):
        region = self._place("string", len(data) + 1, "string", label)
        region.data[: len(data)] = data
        return region

    def push_frame(self, size, label, depth):
        if depth > self.options.max_call_depth:
            raise StackOverflow(
                "call depth exceeded {}".format(self.options.max_call_depth)
            )
        if self._stack_used + size > self.options.stack_limit:
            raise StackOverflow(
                "stack limit of {} bytes exceeded".format(
                    self.options.stack_limit
                )
            )
        region = self._place("stack", size, "stack", label)
        self._stack_used += region.size
        return region

    def pop_frame(self, region, alloca_regions):
        region.live = False
        self._stack_used -= region.size
        for block in alloca_regions:
            block.live = False
            self._stack_used -= block.size

    def malloc(self, size):
        """Allocate a heap block; returns 0 (NULL) on failure, like malloc."""
        if size < 0 or self._heap_used + size > self.options.heap_limit:
            return 0
        region = self._place("heap", size, "heap", "malloc({})".format(size))
        self._heap_used += region.size
        return region.start

    def alloca(self, size):
        """Allocate stack space; returns 0 (NULL) when the stack is full.

        The returned region must be registered with the current frame by the
        caller so it is released on function return.
        """
        if size < 0 or self._stack_used + size > self.options.stack_limit:
            return None
        region = self._place("stack", size, "alloca",
                             "alloca({})".format(size))
        self._stack_used += region.size
        return region

    def free(self, addr):
        if addr == 0:
            return
        region = self._regions.get(addr)
        if region is None or region.kind != "heap":
            raise InvalidFree(
                "free() of a pointer not returned by malloc: {:#x}"
                .format(addr)
            )
        if not region.live:
            raise InvalidFree("double free of {:#x}".format(addr))
        region.live = False
        self._heap_used -= region.size

    # -- access ----------------------------------------------------------

    def find_region(self, addr):
        """The region containing ``addr``, or None."""
        cached = self._last_region
        if cached is not None and cached.start <= addr < cached.end:
            return cached
        index = bisect.bisect_right(self._starts, addr) - 1
        if index < 0:
            return None
        region = self._regions[self._starts[index]]
        if addr < region.end:
            self._last_region = region
            return region
        return None

    #: Accesses below this address are NULL-page dereferences (e.g. a field
    #: access through a NULL struct pointer lands at the field's offset).
    NULL_PAGE = 0x1000

    def _checked_region(self, addr, size, writing):
        if 0 <= addr < self.NULL_PAGE:
            raise SegFault(
                "NULL pointer dereference"
                + ("" if addr == 0 else " (offset {})".format(addr)),
                addr,
            )
        region = self.find_region(addr)
        if region is None:
            raise SegFault(
                "access to unmapped address {:#x}".format(addr), addr
            )
        if not region.live:
            what = "freed heap block" if region.kind == "heap" \
                else "dead stack frame"
            raise SegFault(
                "access to {} at {:#x}".format(what, addr), addr
            )
        if addr + size > region.end:
            raise SegFault(
                "out-of-bounds access at {:#x} (+{} past {})".format(
                    addr, addr + size - region.end, region.label
                ),
                addr,
            )
        if writing and region.kind == "string":
            raise SegFault(
                "write to read-only string literal at {:#x}".format(addr),
                addr,
            )
        return region

    def read_bytes(self, addr, size, check_init=True):
        """Read ``size`` bytes.

        ``check_init=False`` skips the uninitialized-read check; aggregate
        copies (struct assignment, memcpy) use it so that never-written
        *padding* bytes propagate silently, exactly like real C — only
        scalar reads of never-written memory are reported.
        """
        region = self._checked_region(addr, size, writing=False)
        offset = addr - region.start
        if check_init and region.written is not None:
            window = region.written[offset : offset + size]
            if not all(window):
                raise UninitializedRead(
                    "read of never-written memory at {:#x} ({})".format(
                        addr, region.label
                    ),
                    addr,
                )
        return bytes(region.data[offset : offset + size])

    def write_bytes(self, addr, data):
        region = self._checked_region(addr, len(data), writing=True)
        offset = addr - region.start
        region.data[offset : offset + len(data)] = data
        if region.written is not None:
            region.written[offset : offset + len(data)] = b"\x01" * len(
                data
            )

    def read_int(self, addr, size, signed):
        return int.from_bytes(self.read_bytes(addr, size), "little",
                              signed=signed)

    def write_int(self, addr, value, size, signed):
        bits = 8 * size
        value &= (1 << bits) - 1
        if signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        self.write_bytes(addr, value.to_bytes(size, "little", signed=signed))

    def fill(self, addr, value, size):
        """memset: bulk fill, checked once."""
        if size == 0:
            return
        region = self._checked_region(addr, size, writing=True)
        offset = addr - region.start
        region.data[offset : offset + size] = bytes([value & 0xFF]) * size
        if region.written is not None:
            region.written[offset : offset + size] = b"\x01" * size

    def copy(self, dst, src, size):
        """memcpy: bulk copy, checked once per side."""
        if size == 0:
            return
        data = self.read_bytes(src, size, check_init=False)
        self.write_bytes(dst, data)

    def string_at(self, addr, limit=1 << 20):
        """Read a NUL-terminated C string (for strlen/strcmp/diagnostics)."""
        region = self._checked_region(addr, 1, writing=False)
        offset = addr - region.start
        end = region.data.find(b"\x00", offset)
        if end == -1:
            # Running off the end of the region is an out-of-bounds read.
            raise SegFault(
                "unterminated string at {:#x}".format(addr), addr
            )
        if end - offset > limit:
            raise SegFault("string too long at {:#x}".format(addr), addr)
        return bytes(region.data[offset:end])

    @property
    def stack_used(self):
        return self._stack_used

    @property
    def heap_used(self):
        return self._heap_used
