"""Library functions (Section 3.1's third category).

These are "functions not defined in the program but controlled by the
program ... treated as unknown but deterministic black-boxes".  Each builtin
receives the machine and the evaluated argument pairs and returns a concrete
result; the machine clears ``all_linear`` when symbolic arguments flow into
a black box (unless the *transparent memory* extension is enabled for the
memory-movement builtins, an optimization the paper's Section 2.3 hints at).
"""

from repro.interp.faults import InterpreterError


class ProgramHalt(Exception):
    """Normal termination via ``exit()`` — the RAM machine's ``halt``."""

    def __init__(self, code):
        super().__init__("exit({})".format(code))
        self.code = code


def _builtin_malloc(machine, args, location):
    (size, _), = args
    return machine.memory.malloc(size)


def _builtin_calloc(machine, args, location):
    (count, _), (size, _) = args
    total = count * size
    addr = machine.memory.malloc(total)
    if addr != 0 and total > 0:
        machine.memory.fill(addr, 0, total)  # calloc zero-initializes
    return addr


def _builtin_free(machine, args, location):
    (addr, _), = args
    machine.memory.free(addr)
    return 0


def _builtin_alloca(machine, args, location):
    (size, _), = args
    region = machine.memory.alloca(size)
    if region is None:
        return 0  # allocation failed: NULL, as in the oSIP bug of §4.3
    machine.current_frame.alloca_regions.append(region)
    return region.start


def _consumes_symbolic(machine, addr, size):
    """Reading symbolic memory through a black box costs completeness."""
    if machine.symbolic.has_overlap(addr, size):
        machine.flags.clear_linear()


def _builtin_memcpy(machine, args, location):
    (dst, _), (src, _), (size, _) = args
    machine.memory.copy(dst, src, size)
    if machine.options.transparent_memory:
        machine.symbolic.copy_range(src, dst, size)
    else:
        _consumes_symbolic(machine, src, size)
        machine.symbolic.invalidate(dst, size)
    return dst


def _builtin_memset(machine, args, location):
    (dst, _), (byte, _), (size, _) = args
    machine.memory.fill(dst, byte, size)
    machine.symbolic.invalidate(dst, size)
    return dst


def _builtin_strlen(machine, args, location):
    (addr, _), = args
    data = machine.memory.string_at(addr)
    _consumes_symbolic(machine, addr, len(data) + 1)
    return len(data)


def _builtin_strcpy(machine, args, location):
    (dst, _), (src, _) = args
    data = machine.memory.string_at(src) + b"\x00"
    machine.memory.write_bytes(dst, data)
    if machine.options.transparent_memory:
        machine.symbolic.copy_range(src, dst, len(data))
    else:
        _consumes_symbolic(machine, src, len(data))
        machine.symbolic.invalidate(dst, len(data))
    return dst


def _builtin_strncpy(machine, args, location):
    (dst, _), (src, _), (count, _) = args
    data = machine.memory.string_at(src)[:count]
    _consumes_symbolic(machine, src, len(data) + 1)
    data = data + b"\x00" * (count - len(data))
    machine.memory.write_bytes(dst, data)
    machine.symbolic.invalidate(dst, len(data))
    return dst


def _builtin_strcmp(machine, args, location):
    (left, _), (right, _) = args
    a = machine.memory.string_at(left)
    b = machine.memory.string_at(right)
    _consumes_symbolic(machine, left, len(a) + 1)
    _consumes_symbolic(machine, right, len(b) + 1)
    if a == b:
        return 0
    return -1 if a < b else 1


def _builtin_strchr(machine, args, location):
    (addr, _), (char, _) = args
    data = machine.memory.string_at(addr) + b"\x00"
    _consumes_symbolic(machine, addr, len(data))
    index = data.find(bytes([char & 0xFF]))
    if index == -1:
        return 0
    return addr + index


def _builtin_printf(machine, args, location):
    """printf with %d/%u/%x/%c/%s/%% support; output is captured in
    ``machine.output`` rather than written anywhere (the paper discards
    program output; capturing it helps debugging mini-C programs)."""
    if not args:
        raise InterpreterError("printf with no format string")
    fmt = machine.memory.string_at(args[0][0])
    values = [value for value, _ in args[1:]]
    out = bytearray()
    index = 0
    i = 0
    while i < len(fmt):
        byte = fmt[i]
        if byte != ord("%") or i + 1 >= len(fmt):
            out.append(byte)
            i += 1
            continue
        spec = chr(fmt[i + 1])
        i += 2
        if spec == "%":
            out.append(ord("%"))
            continue
        if index >= len(values):
            out.extend(b"%" + spec.encode())  # missing argument: literal
            continue
        value = values[index]
        index += 1
        if spec == "d":
            out.extend(str(value).encode())
        elif spec == "u":
            out.extend(str(value & 0xFFFFFFFF).encode())
        elif spec == "x":
            out.extend(format(value & 0xFFFFFFFF, "x").encode())
        elif spec == "c":
            out.append(value & 0xFF)
        elif spec == "s":
            out.extend(machine.memory.string_at(value))
        else:
            out.extend(("%" + spec).encode())
    machine.output.append(bytes(out))
    return len(out)


def _builtin_exit(machine, args, location):
    (code, _), = args
    raise ProgramHalt(code)


#: Dispatch table.  The ``__dart_*`` input intrinsics are intercepted by the
#: machine itself before reaching this table.
BUILTINS = {
    "malloc": _builtin_malloc,
    "calloc": _builtin_calloc,
    "free": _builtin_free,
    "alloca": _builtin_alloca,
    "memcpy": _builtin_memcpy,
    "memset": _builtin_memset,
    "strlen": _builtin_strlen,
    "strcpy": _builtin_strcpy,
    "strncpy": _builtin_strncpy,
    "strcmp": _builtin_strcmp,
    "strchr": _builtin_strchr,
    "printf": _builtin_printf,
    "exit": _builtin_exit,
}

#: Builtins that honour the transparent-memory extension (their symbolic
#: effect is handled inside their implementation above).
TRANSPARENT_BUILTINS = frozenset(["memcpy", "strcpy"])

#: Input-acquisition intrinsics emitted by the generated driver, mapped to
#: the input kind they produce.
INPUT_INTRINSICS = {
    "__dart_int": "int",
    "__dart_uint": "uint",
    "__dart_char": "char",
    "__dart_uchar": "uchar",
    "__dart_short": "short",
    "__dart_ushort": "ushort",
    "__dart_ptr_choice": "ptr_choice",
}
