"""Runtime faults — the "standard errors" DART detects (Section 1).

:class:`ExecutionFault` subclasses are *bugs in the program under test*:
crashes (segmentation faults, division by zero, invalid frees), explicit
``abort()`` calls, assertion violations and non-termination.  They are what
the test driver of Fig. 2 catches ("if the instrumented program throws an
exception, then a bug has been found").

:class:`InterpreterError` is different: it flags a defect or unsupported
construct in the harness itself and is never reported as a program bug.
"""


class ExecutionFault(Exception):
    """Base class for detected program errors."""

    kind = "fault"

    def __init__(self, message, location=None):
        super().__init__(message)
        self.message = message
        self.location = location

    def describe(self):
        if self.location is not None:
            return "{} at {}: {}".format(self.kind, self.location,
                                         self.message)
        return "{}: {}".format(self.kind, self.message)


class ProgramAbort(ExecutionFault):
    """The program executed ``abort()`` (the RAM machine's error statement)."""

    kind = "abort"


class AssertionViolation(ProgramAbort):
    """A failed ``assert`` — per the paper (note 8) an abort with a cause."""

    kind = "assertion violation"


class SegFault(ExecutionFault):
    """An access to unmapped, freed or NULL memory."""

    kind = "segmentation fault"

    def __init__(self, message, address, location=None):
        super().__init__(message, location)
        self.address = address


class DivisionByZero(ExecutionFault):
    kind = "division by zero"


class InvalidFree(ExecutionFault):
    kind = "invalid free"


class OutOfMemory(ExecutionFault):
    kind = "out of memory"


class StackOverflow(ExecutionFault):
    kind = "stack overflow"


class UninitializedRead(ExecutionFault):
    """A read of stack/heap memory that was never written.

    The paper assumes "all program variables ... are properly initialized"
    and points at Purify/CCured for detecting violations; enabling
    ``MemoryOptions.track_uninitialized`` builds the check into the RAM
    machine instead.
    """

    kind = "uninitialized read"

    def __init__(self, message, address, location=None):
        super().__init__(message, location)
        self.address = address


class NonTermination(ExecutionFault):
    """The step budget was exhausted — DART's timer expiration (§4.3)."""

    kind = "non-termination"

    def __init__(self, steps, location=None):
        super().__init__(
            "no progress after {} RAM-machine steps".format(steps), location
        )
        self.steps = steps


class RestoredFault(ExecutionFault):
    """An :class:`ExecutionFault` reconstructed from a session checkpoint.

    Checkpoints store only (kind, message, location string); restoring the
    exact subclass (with e.g. a faulting address) is neither possible nor
    needed — reports, deduplication keys and JSON output all work off
    these three fields.
    """

    def __init__(self, kind, message, location=None):
        super().__init__(message, location)
        self.kind = kind  # shadows the class attribute


class RunTimeout(Exception):
    """The per-run wall-clock watchdog tripped.

    Deliberately *not* an :class:`ExecutionFault`: exceeding a harness
    resource budget is not evidence of a program bug (unlike
    :class:`NonTermination`, whose step budget is the paper's §4.3
    non-termination detector).  The DART run loop catches it at the fault
    boundary, quarantines the input vector and continues the search.
    """

    def __init__(self, elapsed, location=None):
        super().__init__(
            "run exceeded its wall-clock budget after {:.3f}s".format(elapsed)
        )
        self.elapsed = elapsed
        self.location = location


class InterpreterError(Exception):
    """An internal error of the harness itself (never a program bug)."""
