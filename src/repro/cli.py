"""Command-line interface: ``python -m repro FILE.c TOPLEVEL [options]``.

Runs DART (or the random-testing baseline) on a mini-C source file and
prints the verdict, the errors with their triggering input vectors, branch
coverage, and session statistics.  Exit status: 0 = no error found,
1 = bug(s) found, 2 = the input failed to compile, 130 = interrupted
(SIGINT/SIGTERM; with ``--state-file`` a checkpoint was saved and the
same command resumes the search).

``python -m repro fuzz [options]`` instead runs the differential fuzzing
campaign (:mod:`repro.testgen`): generate random mini-C programs, check
the pipeline against its own oracles, shrink and serialize any
divergence.  Exit status: 0 = clean campaign, 1 = divergence(s) found.

``python -m repro trace-summary TRACE.jsonl`` renders a structured trace
written with ``--trace``: the per-phase time breakdown (execute / solve /
cache / checkpoint), the branch-flip funnel (attempted → sat → forced →
new path), verdict and cache-tier tallies (see docs/OBSERVABILITY.md).

``python -m repro chaos [options]`` runs the chaos harness
(:mod:`repro.faults.chaos`): seeded fault schedules injected into full
campaigns over the benchmark programs, asserting the recovery invariants
(no uncontained crash, replayable errors, error-set preservation, honest
degradation — see docs/ROBUSTNESS.md).  Exit status: 0 = every invariant
held, 1 = violation(s).

``python -m repro export-suite FILE.c TOPLEVEL --out DIR`` runs a
campaign and exports every distinct discovered path/error as a
standalone replayable regression artifact (:mod:`repro.suite`; also
available as ``--export-suite DIR`` on a plain run, including one
resumed from a ``--state-file`` checkpoint).  ``replay-suite DIR``
re-executes an exported suite and compares every artifact against its
recorded verdict bit-for-bit; ``coverage-report DIR`` prints the
suite's per-function C1 branch-coverage rollup.  See docs/SUITES.md.
"""

import argparse
import json
import os
import sys

from repro.dart.config import DartOptions
from repro.dart.random_testing import RandomTester
from repro.dart.report import INTERRUPTED
from repro.dart.runner import Dart
from repro.minic import compile_program
from repro.minic.disasm import disassemble
from repro.minic.errors import MiniCError


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DART: directed automated random testing "
                    "(PLDI 2005 reproduction)",
    )
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("toplevel", nargs="?",
                        help="function to test (omit with --disasm)")
    parser.add_argument("--depth", type=int, default=1,
                        help="toplevel calls per execution (default 1)")
    parser.add_argument("--max-iterations", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strategy", default="dfs",
                        choices=("dfs", "bfs", "random"))
    parser.add_argument("--jobs", type=int, default=1,
                        help="persistent worker pool size for the "
                             "bfs/random search: workers pipeline "
                             "execute/solve over a shared work queue and "
                             "share solver results (default 1 = "
                             "in-process; dfs is inherently sequential "
                             "and ignores it)")
    parser.add_argument("--no-slicing", action="store_true",
                        help="disable constraint independence slicing "
                             "(solve the full path-constraint prefix)")
    parser.add_argument("--no-solver-cache", action="store_true",
                        help="disable the solver result cache")
    parser.add_argument("--no-compile", action="store_true",
                        help="disable the compiled execution engine "
                             "(run the tree-walking interpreter; "
                             "ablation only — results are identical)")
    parser.add_argument("--no-subsumption", action="store_true",
                        help="disable UNSAT-core subsumption and "
                             "worklist dedup (ablation only — the "
                             "error set is identical)")
    parser.add_argument("--time-limit", type=float, default=None,
                        help="wall-clock budget in seconds")
    parser.add_argument("--run-time-limit", type=float, default=None,
                        help="wall-clock budget for a single run; a run "
                             "exceeding it is quarantined and the search "
                             "continues")
    parser.add_argument("--max-init-depth", type=int, default=None,
                        help="bound random_init pointer recursion")
    parser.add_argument("--all-errors", action="store_true",
                        help="keep searching after the first error")
    parser.add_argument("--state-file", default=None,
                        help="checkpoint file: the session periodically "
                             "saves its full state there and resumes from "
                             "it on the next invocation")
    parser.add_argument("--checkpoint-every", type=int, default=25,
                        help="runs between checkpoint autosaves "
                             "(with --state-file; default 25)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL structured trace of the "
                             "session (render it with "
                             "'python -m repro trace-summary PATH')")
    parser.add_argument("--profile-phases", action="store_true",
                        help="attribute session wall time to execute / "
                             "solve / cache / checkpoint phases "
                             "(reported in the stats summary)")
    parser.add_argument("--export-suite", default=None, metavar="DIR",
                        dest="export_suite",
                        help="after the campaign (finished or "
                             "interrupted), export every distinct "
                             "path/error as a standalone replayable "
                             "regression artifact under DIR (see "
                             "'python -m repro replay-suite DIR' and "
                             "docs/SUITES.md)")
    parser.add_argument("--fault-plan", default=None, metavar="SPEC",
                        help="inject deterministic faults from SPEC "
                             "('site@occurrence,...' or 'seed:N'; see "
                             "docs/ROBUSTNESS.md) — test harness only")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result (errors, quarantined "
                             "runs, stats, coverage) as JSON")
    parser.add_argument("--random", action="store_true",
                        help="random-testing baseline (no directed search)")
    parser.add_argument("--disasm", action="store_true",
                        help="print the RAM-machine IR and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="print only the verdict line")
    return parser


def build_fuzz_parser():
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing of the DART pipeline: random "
                    "program generation, multi-oracle checking, "
                    "delta-debugged repro files",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0); every program, "
                             "input vector and constraint system derives "
                             "from it deterministically")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of programs to generate (default 200)")
    parser.add_argument("--time-budget", type=float, default=None,
                        help="wall-clock cap in seconds; the campaign "
                             "stops early once exceeded")
    parser.add_argument("--out", default=None,
                        help="directory for shrunk repro files (e.g. "
                             "tests/corpus); omit to only report")
    parser.add_argument("--max-statements", type=int, default=None,
                        help="cap generated program size")
    parser.add_argument("--dart-iterations", type=int, default=None,
                        help="run budget per DART oracle session")
    parser.add_argument("--parallel-every", type=int, default=25,
                        help="sample the jobs-vs-serial comparison every "
                             "Nth program (0 disables; default 25)")
    parser.add_argument("--chaos-every", type=int, default=25,
                        help="sample the fault-containment probe (clean "
                             "vs. seeded-fault session pair) every Nth "
                             "program (0 disables; default 25)")
    parser.add_argument("--no-solver-fuzz", action="store_true",
                        help="skip the brute-force constraint fuzzing "
                             "oracle")
    parser.add_argument("--unsigned-heavy", action="store_true",
                        help="bias generation toward unsigned parameters "
                             "and wrap-prone comparisons (exercises the "
                             "machine-integer widening layer)")
    parser.add_argument("--fail-on-dropped-unfaithful", action="store_true",
                        help="exit nonzero if any conjunct was dropped "
                             "for lack of a bit-precise encoding "
                             "(conjuncts_dropped_unfaithful != 0)")
    parser.add_argument("--stop-on-first", action="store_true",
                        help="end the campaign at the first divergence")
    parser.add_argument("--progress-every", type=int, default=20,
                        help="print a progress line every N programs "
                             "(0 silences; default 20)")
    return parser


def fuzz_main(argv=None):
    from repro.testgen import GeneratorOptions, OracleOptions, run_campaign

    args = build_fuzz_parser().parse_args(argv)
    gen_opts = GeneratorOptions()
    if args.max_statements is not None:
        gen_opts.max_statements = args.max_statements
    if args.unsigned_heavy:
        gen_opts.unsigned_bias = 0.5
    oracle_opts = OracleOptions()
    if args.dart_iterations is not None:
        oracle_opts.dart_iterations = args.dart_iterations

    def progress(index, report):
        if args.progress_every and (index + 1) % args.progress_every == 0:
            print("fuzz: {}/{} program(s), {} divergence(s)".format(
                index + 1, args.budget, len(report.divergences)),
                flush=True)

    report = run_campaign(
        seed=args.seed, budget=args.budget, time_budget=args.time_budget,
        out_dir=args.out, gen_opts=gen_opts, oracle_opts=oracle_opts,
        parallel_every=args.parallel_every,
        chaos_every=args.chaos_every,
        solver_fuzz=not args.no_solver_fuzz,
        stop_on_first=args.stop_on_first, progress=progress,
    )
    print(report.describe())
    if args.fail_on_dropped_unfaithful:
        dropped = report.counters.get("conjuncts_dropped_unfaithful", 0)
        if dropped:
            print("fuzz: {} conjunct(s) dropped as unfaithful — the "
                  "widening layer should leave zero".format(dropped))
            return 1
    return 0 if report.ok else 1


def build_chaos_parser():
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Chaos harness: run seeded fault schedules against "
                    "full campaigns over the benchmark programs and "
                    "assert the recovery invariants (crash containment, "
                    "crash-resume equivalence, honest degradation)",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="harness seed (default 0); every fault "
                             "schedule derives from it deterministically")
    parser.add_argument("--schedules", type=int, default=25,
                        help="number of fault schedules to run "
                             "(default 25)")
    parser.add_argument("--benchmark", action="append", default=None,
                        metavar="NAME", dest="benchmarks",
                        help="restrict to one benchmark (repeatable); "
                             "default: rotate through all of them")
    parser.add_argument("--max-resumes", type=int, default=8,
                        help="resume attempts per schedule before the "
                             "termination invariant fails (default 8)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write per-schedule artifacts (fault plan, "
                             "outcome, structured trace) and report.json "
                             "under DIR")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    parser.add_argument("--progress-every", type=int, default=5,
                        help="print a progress line every N schedules "
                             "(0 silences; default 5)")
    return parser


def chaos_main(argv=None):
    from repro.faults.chaos import BENCHMARKS, run_chaos

    args = build_chaos_parser().parse_args(argv)
    benchmarks = None
    if args.benchmarks:
        by_name = {benchmark.name: benchmark for benchmark in BENCHMARKS}
        unknown = [name for name in args.benchmarks if name not in by_name]
        if unknown:
            print("error: unknown benchmark(s): {} (have: {})".format(
                ", ".join(unknown), ", ".join(sorted(by_name))),
                file=sys.stderr)
            return 2
        benchmarks = tuple(by_name[name] for name in args.benchmarks)

    def progress(index, outcome):
        if args.progress_every and (index + 1) % args.progress_every == 0:
            print("chaos: {}/{} schedule(s)".format(
                index + 1, args.schedules), flush=True)

    report = run_chaos(
        seed=args.seed, schedules=args.schedules, benchmarks=benchmarks,
        out_dir=args.out, max_resumes=args.max_resumes, progress=progress,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def build_trace_summary_parser():
    parser = argparse.ArgumentParser(
        prog="repro trace-summary",
        description="Summarize a JSONL structured trace written with "
                    "--trace: phase time breakdown, branch-flip funnel, "
                    "verdict and cache-tier tallies",
    )
    parser.add_argument("trace", help="JSONL trace file (from --trace)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    return parser


def trace_summary_main(argv=None):
    from repro.obs import read_trace, render_summary, summarize_trace

    args = build_trace_summary_parser().parse_args(argv)
    try:
        summary = summarize_trace(read_trace(args.trace))
    except OSError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    except ValueError as error:
        print("error: not a JSONL trace: {}".format(error), file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(render_summary(summary))
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; not an error.
        # Point stdout at devnull so interpreter shutdown does not
        # complain about the unflushable stream.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def build_export_suite_parser():
    parser = argparse.ArgumentParser(
        prog="repro export-suite",
        description="Run a DART campaign and export every distinct "
                    "discovered path/error as a standalone replayable "
                    "regression artifact (mini-C source + input vector "
                    "+ expected verdict + generated pytest wrapper)",
    )
    parser.add_argument("file", help="mini-C source file")
    parser.add_argument("toplevel", help="function to test")
    parser.add_argument("--out", required=True, metavar="DIR",
                        help="suite output directory")
    parser.add_argument("--depth", type=int, default=1)
    parser.add_argument("--max-iterations", type=int, default=10_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--strategy", default="bfs",
                        choices=("dfs", "bfs", "random"),
                        help="search strategy (default bfs)")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--time-limit", type=float, default=None)
    parser.add_argument("--max-init-depth", type=int, default=None)
    parser.add_argument("--state-file", default=None,
                        help="checkpoint file; an interrupted export "
                             "campaign resumes from it — and a "
                             "checkpoint written by a plain campaign "
                             "can be salvaged into a suite (same "
                             "file/toplevel/options, e.g. with "
                             "--max-iterations 0)")
    parser.add_argument("--trace", default=None, metavar="PATH")
    parser.add_argument("--json", action="store_true",
                        help="emit the suite manifest body as JSON")
    return parser


def export_suite_main(argv=None):
    args = build_export_suite_parser().parse_args(argv)
    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    options = DartOptions(
        depth=args.depth,
        max_iterations=args.max_iterations,
        seed=args.seed,
        strategy=args.strategy,
        jobs=args.jobs,
        stop_on_first_error=False,
        time_limit=args.time_limit,
        max_init_depth=args.max_init_depth,
        state_file=args.state_file,
        handle_signals=True,
        trace_file=args.trace,
        export_suite=args.out,
    )
    try:
        dart = Dart(source, args.toplevel, options, filename=args.file)
    except MiniCError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    result = dart.run()
    from repro.suite import load_manifest
    manifest = load_manifest(args.out)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return _exit_code(result)
    counts = manifest["counts"]
    coverage = manifest["coverage"]
    print("suite: {} artifact(s) ({} error(s)) under {}".format(
        counts["artifacts"], counts["errors"], args.out))
    print("dedup: {} witness(es) -> {} duplicate(s) collapsed, "
          "{} subsumed artifact(s) pruned".format(
              counts["witnesses"], counts["deduped"], counts["pruned"]))
    print("coverage: {}/{} branch directions ({:.1f}%), C1 {}/{} "
          "branches both-arms ({:.1f}%)".format(
              coverage["covered_directions"], coverage["total_directions"],
              coverage["percent"], coverage["branches_both_arms"],
              coverage["total_branches"], coverage["c1_percent"]))
    print("replay: python -m repro replay-suite {0}  (or: "
          "PYTHONPATH=src python -m pytest {0})".format(args.out))
    return _exit_code(result)


def build_replay_suite_parser():
    parser = argparse.ArgumentParser(
        prog="repro replay-suite",
        description="Re-execute every artifact of an exported "
                    "regression suite with zero search and compare "
                    "verdict, branch path and covered-branch set "
                    "against the recorded expectations bit-for-bit",
    )
    parser.add_argument("suite", help="suite directory (from export-suite)")
    parser.add_argument("--json", action="store_true",
                        help="emit the replay report as JSON")
    return parser


def replay_suite_main(argv=None):
    from repro.suite import CorruptArtifact, replay_suite

    args = build_replay_suite_parser().parse_args(argv)
    try:
        report = replay_suite(args.suite)
    except CorruptArtifact as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    print("replay: {}/{} artifact(s) passed".format(
        len(report["passed"]), report["artifacts"]))
    for failure in report["failed"]:
        print(" - FAILED {}: {}".format(failure["id"], failure["reason"]))
    for entry in report["quarantined"]:
        print(" ! quarantined {}: {}".format(entry["id"], entry["reason"]))
    return 0 if report["ok"] else 1


def build_coverage_report_parser():
    parser = argparse.ArgumentParser(
        prog="repro coverage-report",
        description="Per-function C1 branch-coverage accounting of an "
                    "exported regression suite (a branch counts as "
                    "covered only when both arms were taken)",
    )
    parser.add_argument("suite", help="suite directory (from export-suite)")
    parser.add_argument("--json", action="store_true",
                        help="emit the rollup as JSON")
    return parser


def coverage_report_main(argv=None):
    from repro.dart.coverage import render_c1_table
    from repro.suite import CorruptArtifact, suite_coverage

    args = build_coverage_report_parser().parse_args(argv)
    try:
        coverage, manifest, quarantined = suite_coverage(args.suite)
    except CorruptArtifact as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2
    if args.json:
        payload = coverage.to_dict()
        payload["suite"] = args.suite
        payload["artifacts"] = len(manifest.get("artifacts", ()))
        payload["quarantined"] = quarantined
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("suite: {} ({} artifact(s))".format(
        args.suite, len(manifest.get("artifacts", ()))))
    print(render_c1_table(coverage))
    for entry in quarantined:
        print(" ! quarantined {}: {}".format(entry["id"], entry["reason"]))
    return 0


def _exit_code(result):
    if result.status == INTERRUPTED:
        return 130
    return 1 if result.found_error else 0


def main(argv=None):
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "trace-summary":
        return trace_summary_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "export-suite":
        return export_suite_main(argv[1:])
    if argv and argv[0] == "replay-suite":
        return replay_suite_main(argv[1:])
    if argv and argv[0] == "coverage-report":
        return coverage_report_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        with open(args.file) as handle:
            source = handle.read()
    except OSError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2

    if args.disasm:
        try:
            module = compile_program(source, filename=args.file)
        except MiniCError as error:
            print("error: {}".format(error), file=sys.stderr)
            return 2
        print(disassemble(module))
        return 0

    if not args.toplevel:
        print("error: a toplevel function is required", file=sys.stderr)
        return 2

    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan
        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except ValueError as error:
            print("error: bad --fault-plan: {}".format(error),
                  file=sys.stderr)
            return 2

    if args.state_file:
        # Fail fast: discovering an unwritable checkpoint path at the
        # first autosave would lose the session's work.
        parent = os.path.dirname(os.path.abspath(args.state_file))
        if not os.path.isdir(parent):
            print("error: --state-file directory does not exist: {}"
                  .format(parent), file=sys.stderr)
            return 2

    options = DartOptions(
        depth=args.depth,
        max_iterations=args.max_iterations,
        seed=args.seed,
        strategy=args.strategy,
        jobs=args.jobs,
        constraint_slicing=not args.no_slicing,
        solver_cache=not args.no_solver_cache,
        compiled_execution=not args.no_compile,
        subsumption=not args.no_subsumption,
        stop_on_first_error=not args.all_errors,
        time_limit=args.time_limit,
        run_time_limit=args.run_time_limit,
        max_init_depth=args.max_init_depth,
        state_file=args.state_file,
        checkpoint_every=args.checkpoint_every,
        handle_signals=True,
        trace_file=args.trace,
        profile_phases=args.profile_phases,
        fault_plan=fault_plan,
        export_suite=args.export_suite,
    )
    tester_class = RandomTester if args.random else Dart
    try:
        tester = tester_class(source, args.toplevel, options,
                              filename=args.file)
    except MiniCError as error:
        print("error: {}".format(error), file=sys.stderr)
        return 2

    result = tester.run()
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return _exit_code(result)
    print(result.describe())
    if args.quiet:
        return _exit_code(result)
    for error in result.errors:
        print(" -", error.describe())
    for record in result.quarantined:
        print(" ! quarantined:", record.describe())
    if result.coverage is not None:
        print("coverage: {}".format(result.coverage.describe()))
    stats = result.stats.summary()
    print(
        "runs: {iterations}, distinct paths: {distinct_paths}, "
        "solver calls: {solver_calls} (sat {solver_sat} / unsat "
        "{solver_unsat} / unknown {solver_unknown}), "
        "restarts: {random_restarts}, elapsed: {elapsed_s}s".format(**stats)
    )
    print(
        "solver avg constraints/call: {avg_constraints_per_call}, "
        "sliced away: {sliced_conjuncts_dropped}, cache: {cache_hits} hit / "
        "{cache_unsat_shortcuts} unsat-shortcut / {cache_model_reuses} "
        "model-reuse / {cache_misses} miss (hit rate "
        "{cache_hit_rate})".format(**stats)
    )
    print(
        "instructions: {instructions_executed} executed / "
        "{instructions_symbolic} symbolic".format(**stats)
    )
    return _exit_code(result)
