"""Symbolic expressions over program inputs.

DART's theory is linear integer arithmetic (the paper uses lp_solve), so the
arithmetic fragment is represented *canonically linear*: a
:class:`LinExpr` is a map from input-variable ids to integer coefficients
plus a constant.  Anything that cannot be kept linear falls back to its
concrete value (Figure 1), so no richer term language is ever needed.

Comparison terms (the paper's ``=(e', e'')``) are :class:`CmpExpr` — a
relational operator applied to a canonical ``lhs - rhs`` difference.  They
serve double duty as stored symbolic values (a C comparison yields 0/1) and
as path-constraint conjuncts for the solver.

Symbolic pointers (:class:`PtrExpr`) tie a pointer value to its
NULL-or-fresh-cell coin toss so that ``p == NULL`` tests reduce to linear
constraints on the 0/1 coin variable.  The shipped driver generator takes a
different route to the same end — the coin toss is a conditional *in the
generated driver code*, so the branch itself is directable
(``DartOptions.directed_pointer_choices``) — but the term is kept as the
evaluator-level alternative and is exercised by the test suite.
"""

# Relational operators, applied to a linear expression e: ``e OP 0``.
EQ = "=="
NE = "!="
LT = "<"
LE = "<="
GT = ">"
GE = ">="

_NEGATIONS = {EQ: NE, NE: EQ, LT: GE, GE: LT, LE: GT, GT: LE}


class InputVar:
    """One slot of the input vector ``IM``.

    ``ordinal`` is the acquisition index (inputs are identified by the order
    in which the program reads them, which uniformly supports repeated
    toplevel calls and dynamically allocated input locations — Section 3.4).
    ``lo``/``hi`` bound the machine domain (e.g. int32, char, or {0, 1} for
    pointer coin tosses).
    """

    __slots__ = ("ordinal", "kind", "lo", "hi")

    def __init__(self, ordinal, kind, lo, hi):
        self.ordinal = ordinal
        self.kind = kind
        self.lo = lo
        self.hi = hi

    def __repr__(self):
        return "InputVar(x{}:{})".format(self.ordinal, self.kind)


class LinExpr:
    """An integer-linear expression ``sum(coeff_i * x_i) + const``."""

    __slots__ = ("coeffs", "const", "_key", "_hash")

    def __init__(self, coeffs=None, const=0):
        self.coeffs = {v: c for v, c in (coeffs or {}).items() if c != 0}
        self.const = const
        self._key = None
        self._hash = None

    def key(self):
        """A stable canonical identity: sorted (var, coeff) pairs + const.

        Computed once and cached (expressions are immutable after
        construction), so solver-cache lookups and slicing group maps are
        O(1) dict operations instead of re-sorting coefficients on every
        hash.
        """
        key = self._key
        if key is None:
            key = (tuple(sorted(self.coeffs.items())), self.const)
            self._key = key
        return key

    @classmethod
    def constant(cls, value):
        return cls({}, value)

    @classmethod
    def variable(cls, ordinal, coeff=1):
        return cls({ordinal: coeff}, 0)

    def is_constant(self):
        return not self.coeffs

    def variables(self):
        return set(self.coeffs)

    def add(self, other):
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
        return LinExpr(coeffs, self.const + other.const)

    def sub(self, other):
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) - coeff
        return LinExpr(coeffs, self.const - other.const)

    def scale(self, factor):
        if factor == 0:
            return LinExpr.constant(0)
        return LinExpr(
            {v: c * factor for v, c in self.coeffs.items()},
            self.const * factor,
        )

    def negate(self):
        return self.scale(-1)

    def add_const(self, value):
        return LinExpr(self.coeffs, self.const + value)

    def evaluate(self, assignment):
        """Evaluate under ``assignment`` (ordinal -> int)."""
        total = self.const
        for var, coeff in self.coeffs.items():
            total += coeff * assignment[var]
        return total

    def __eq__(self, other):
        return (
            isinstance(other, LinExpr)
            and other.const == self.const
            and other.coeffs == self.coeffs
        )

    def __hash__(self):
        value = self._hash
        if value is None:
            value = hash(self.key())
            self._hash = value
        return value

    def __repr__(self):
        parts = []
        for var in sorted(self.coeffs):
            coeff = self.coeffs[var]
            parts.append(
                "{}{}*x{}".format("+" if coeff >= 0 and parts else "",
                                  coeff, var)
            )
        if self.const or not parts:
            parts.append(
                "{}{}".format("+" if parts and self.const >= 0 else "",
                              self.const)
            )
        return "".join(parts)


class CmpExpr:
    """A relational term ``lin OP 0`` — both a 0/1 value and a constraint."""

    __slots__ = ("op", "lin", "_key", "_hash")

    def __init__(self, op, lin):
        if op not in _NEGATIONS:
            raise ValueError("bad relational operator {!r}".format(op))
        self.op = op
        self.lin = lin
        self._key = None
        self._hash = None

    def key(self):
        """Stable canonical identity: the operator plus the LinExpr key."""
        key = self._key
        if key is None:
            key = (self.op, self.lin.key())
            self._key = key
        return key

    def negate(self):
        return CmpExpr(_NEGATIONS[self.op], self.lin)

    def variables(self):
        return self.lin.variables()

    def evaluate(self, assignment):
        """Truth value of the comparison under ``assignment``."""
        value = self.lin.evaluate(assignment)
        return {
            EQ: value == 0,
            NE: value != 0,
            LT: value < 0,
            LE: value <= 0,
            GT: value > 0,
            GE: value >= 0,
        }[self.op]

    def __eq__(self, other):
        return (
            isinstance(other, CmpExpr)
            and other.op == self.op
            and other.lin == self.lin
        )

    def __hash__(self):
        value = self._hash
        if value is None:
            value = hash(self.key())
            self._hash = value
        return value

    def __repr__(self):
        return "({} {} 0)".format(self.lin, self.op)


class PtrExpr:
    """A symbolic pointer input, tied to its NULL-coin choice variable.

    The associated :class:`InputVar` (``choice``) has domain {0, 1}:
    0 means the pointer was initialized to NULL, 1 means it points to a
    freshly allocated cell.  ``p == NULL`` therefore reduces to the linear
    constraint ``choice == 0``.
    """

    __slots__ = ("choice_ordinal",)

    def __init__(self, choice_ordinal):
        self.choice_ordinal = choice_ordinal

    def null_test(self, is_null):
        """The constraint expressing ``p == NULL`` (or ``!=`` if not)."""
        lin = LinExpr.variable(self.choice_ordinal)
        return CmpExpr(EQ if is_null else NE, lin)

    def variables(self):
        return {self.choice_ordinal}

    def __repr__(self):
        return "PtrExpr(x{})".format(self.choice_ordinal)
