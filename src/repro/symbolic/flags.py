"""The completeness flags of the paper's run_DART driver (Fig. 2).

``all_linear`` is cleared whenever an expression falls outside linear
integer arithmetic and the evaluator substitutes its concrete value;
``all_locs_definite`` is cleared whenever a memory access goes through an
input-dependent address.  ``forcing_ok`` is cleared when a run diverges
from the branch outcomes predicted by the previous run's solved constraint
(Fig. 4).  The invariant proved by the paper —
``all_linear and all_locs_definite implies forcing_ok`` — is checked by the
test suite.

``all_faithful`` extends the triple (this reproduction's addition): it is
cleared when a recorded comparison disagreed with its own run's machine
verdict (32-bit wrap / unsigned compare) **and** the machine-integer
widening layer (:mod:`repro.symbolic.widen`) could not encode it
faithfully, so the conjunct was dropped as a last resort.  While it is
set, every conjunct in every path constraint is true of the run that
recorded it — the premise of the slicing argument and of Theorem 1(b).
"""


class CompletenessFlags:
    """Mutable flag triple shared by the evaluator, machine and runner.

    With a :class:`repro.obs.trace.TraceBus` attached (the ``trace``
    attribute), each True→False transition emits a ``flag_degraded``
    event — the moment the session lost a completeness guarantee, not
    just the end-of-session snapshot.
    """

    __slots__ = ("all_linear", "all_locs_definite", "forcing_ok",
                 "all_faithful", "trace")

    def __init__(self):
        self.trace = None
        self.reset()

    def reset(self):
        self.all_linear = True
        self.all_locs_definite = True
        self.forcing_ok = True
        self.all_faithful = True

    @property
    def complete(self):
        """True while the directed search is provably exhaustive."""
        return (self.all_linear and self.all_locs_definite
                and self.all_faithful)

    def _degraded(self, flag):
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.emit("flag_degraded", flag=flag)

    def clear_linear(self):
        if self.all_linear:
            self._degraded("all_linear")
        self.all_linear = False

    def clear_locs(self):
        if self.all_locs_definite:
            self._degraded("all_locs_definite")
        self.all_locs_definite = False

    def clear_forcing(self):
        if self.forcing_ok:
            self._degraded("forcing_ok")
        self.forcing_ok = False

    def clear_faithful(self):
        if self.all_faithful:
            self._degraded("all_faithful")
        self.all_faithful = False

    def snapshot(self):
        return (self.all_linear, self.all_locs_definite, self.forcing_ok,
                self.all_faithful)

    def __repr__(self):
        return (
            "CompletenessFlags(all_linear={}, all_locs_definite={}, "
            "forcing_ok={}, all_faithful={})"
        ).format(self.all_linear, self.all_locs_definite, self.forcing_ok,
                 self.all_faithful)
