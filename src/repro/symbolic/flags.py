"""The completeness flags of the paper's run_DART driver (Fig. 2).

``all_linear`` is cleared whenever an expression falls outside linear
integer arithmetic and the evaluator substitutes its concrete value;
``all_locs_definite`` is cleared whenever a memory access goes through an
input-dependent address.  ``forcing_ok`` is cleared when a run diverges
from the branch outcomes predicted by the previous run's solved constraint
(Fig. 4).  The invariant proved by the paper —
``all_linear and all_locs_definite implies forcing_ok`` — is checked by the
test suite.
"""


class CompletenessFlags:
    """Mutable flag triple shared by the evaluator, machine and runner."""

    __slots__ = ("all_linear", "all_locs_definite", "forcing_ok")

    def __init__(self):
        self.reset()

    def reset(self):
        self.all_linear = True
        self.all_locs_definite = True
        self.forcing_ok = True

    @property
    def complete(self):
        """True while the directed search is provably exhaustive."""
        return self.all_linear and self.all_locs_definite

    def clear_linear(self):
        self.all_linear = False

    def clear_locs(self):
        self.all_locs_definite = False

    def clear_forcing(self):
        self.forcing_ok = False

    def snapshot(self):
        return (self.all_linear, self.all_locs_definite, self.forcing_ok)

    def __repr__(self):
        return (
            "CompletenessFlags(all_linear={}, all_locs_definite={}, "
            "forcing_ok={})"
        ).format(self.all_linear, self.all_locs_definite, self.forcing_ok)
