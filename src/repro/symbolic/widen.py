"""Machine-integer widening: bit-precise constraints from ideal-integer terms.

The symbolic layer computes in ideal integers (the paper's lp_solve has no
machine arithmetic), while the machine wraps every value at 32 bits and
compares unsigned operands as unsigned.  A recorded conjunct can therefore
be *false of its own run* — the soundness hole PR 3's fuzzer surfaced —
and the old stopgap simply dropped the symbolic fact, degrading directed
search to random testing on exactly the overflow-sensitive branches.

Worse, run-level faithfulness is not even the right screen: a conjunct
can agree with the machine on the run that recorded it (no operand
happened to wrap) while other models in the input domains do wrap — its
ideal negation is then UNSAT although the flipped branch has machine
models, and the session reports ``complete`` for a branch it never
explored.  Every comparison in the linear fragment therefore goes
through this module; the decision is made against the **input domains**,
not the recording run:

* a lane whose ideal range over the domains already fits the operand
  window is *domain-precise* — ideal and machine semantics coincide for
  every admissible model, and the conjunct is recorded as a plain
  ideal-integer :class:`~repro.symbolic.expr.CmpExpr` (with folded
  constants: an unsigned compare against ``-28`` is recorded against
  ``4294967268``, never against the raw signed constant);
* any other lane is widened, using the standard concolic trick of
  **anchoring the wrap quotient to the concrete run**.

For each widened lane with ideal term ``e`` and concrete machine operand
``a`` (already wrapped into the operand window ``[lo, hi]``, signed or
unsigned):

* the mod-2³² invariant of the interpreter (``value ≡ sym
  (mod 2³²)`` for every 32-bit (value, sym) pair) makes
  ``q = (e − a) / 2³²`` an exact integer — the number of times this run's
  value wrapped;
* the widened lane is the ordinary :class:`LinExpr`
  ``W = e − 2³²·q``, together with two **window guards**
  ``lo ≤ W`` and ``W ≤ hi`` (equivalently ``2³²·q + lo ≤ e ≤ 2³²·q + hi``,
  the range side-constraints ``2³²·q ≤ e < 2³²·(q+1)`` shifted into the
  operand window);
* under the guards, ``W ≡ e (mod 2³²)`` and ``W ∈ [lo, hi]`` force ``W``
  to equal *exactly* what the machine computes as the operand — for **any**
  model, not just this run's.  Unsigned compares are handled by the same
  rewrite through the anchored bias, with the unsigned window
  ``[0, 2³² − 1]``.

The comparison itself becomes a :class:`WidenedCmp` — a
:class:`~repro.symbolic.expr.CmpExpr` over ``W_left − W_right`` carrying
the guards.  It is bit-precise within the anchored window: every model of
(primary ∧ guards) drives the machine down the same side of the branch.
Negating it flips only the primary and keeps the guards, a sound
under-approximation restricted to this run's wrap window.  When such a
conjunct is the *flip target*, the solving layer widens the negation back
out with :func:`negation_candidates`: the machine's true negation is the
union of the flipped primary over every wrap window the input domains
allow, and the windows (each a plain conjunction) are enumerated until
one is SAT — so an all-UNSAT answer is a genuine infeasibility proof, and
``complete`` verdicts stay honest.  Only when the window count exceeds
:data:`MAX_NEGATION_WINDOWS` (huge coefficients) is the enumeration
truncated, which the caller records as prover incompleteness.

When widening is impossible — a lane whose quotient does not divide
exactly (a narrow-type wrap below 32 bits), or a term outside the linear
fragment — the conjunct is dropped as a last resort and the new
``all_faithful`` completeness flag is cleared: the session then says,
honestly, that its path constraints no longer describe every executed
branch.  The funnel counters ``conjuncts_widened`` /
``conjuncts_dropped_unfaithful`` report both outcomes.
"""

import itertools

from repro.symbolic.expr import _NEGATIONS, CmpExpr, GE, LE, LinExpr

#: One wrap of the 32-bit machine word.
WRAP = 1 << 32

#: Cap on enumerated wrap-window combinations per negated conjunct; a
#: lane's window count is about ``sum(|coeff_i| * |domain_i|) / 2^32``,
#: so ordinary programs stay in single digits and only extreme
#: coefficients hit the cap.
MAX_NEGATION_WINDOWS = 16

#: Operand windows: what the machine's ``wrap``/``to_unsigned`` fold
#: values into (mirrors ``repro.interp.values`` without importing it —
#: the interpreter package depends on this one).
SIGNED_WINDOW = (-(1 << 31), (1 << 31) - 1)
UNSIGNED_WINDOW = (0, (1 << 32) - 1)

_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


class WidenedCmp(CmpExpr):
    """A comparison rewritten through run-anchored wrap quotients.

    Behaves as one path-constraint conjunct (the solver-facing layers
    flatten it to ``primary + guards`` just before the query is built):

    * ``evaluate`` is the conjunction primary ∧ guards, so the slicer's
      faithfulness screen and the oracles judge the whole encoding;
    * ``variables`` is the union over primary and guards — the primary
      difference may cancel a variable the guards still constrain, and
      slicing's union-find must see the full footprint;
    * ``negate`` flips the primary operator only and keeps the guards
      (stay in the anchored window, flip the verdict);
    * ``key`` is tagged ``"widened"`` so a widened conjunct can never
      collide with the plain comparison of the same difference in the
      solver-result cache.

    ``lanes`` records ``(ideal LinExpr, lo, hi)`` per comparison operand
    (one lane for a truth test, two for a binary compare) so the
    substitution oracle can re-check any model against genuine wrapped
    semantics, independent of this encoding.
    """

    __slots__ = ("guards", "lanes")

    def __init__(self, op, lin, guards, lanes=()):
        CmpExpr.__init__(self, op, lin)
        self.guards = tuple(guards)
        self.lanes = tuple(lanes)

    def key(self):
        key = self._key
        if key is None:
            key = ("widened", self.op, self.lin.key(),
                   tuple(g.key() for g in self.guards))
            self._key = key
        return key

    def negate(self):
        return WidenedCmp(_NEGATIONS[self.op], self.lin, self.guards,
                          self.lanes)

    def variables(self):
        variables = set(self.lin.variables())
        for guard in self.guards:
            variables |= guard.variables()
        return variables

    def evaluate(self, assignment):
        return CmpExpr.evaluate(self, assignment) and all(
            guard.evaluate(assignment) for guard in self.guards
        )

    def conjuncts(self):
        """The flat solver encoding: plain primary plus the guards."""
        return (CmpExpr(self.op, self.lin),) + self.guards

    def machine_verdict(self, assignment):
        """The *wrapped-semantics* truth value under ``assignment``.

        Re-evaluates each lane's ideal term and folds it into the lane
        window exactly as the machine would, then applies the operator —
        an encoding-independent reference the oracles check models
        against.
        """
        operands = []
        for lin, lo, hi in self.lanes:
            ideal = lin.evaluate(assignment)
            operands.append(lo + ((ideal - lo) % WRAP))
        if len(operands) == 1:
            operands.append(0)
        return _COMPARISONS[self.op](operands[0], operands[1])

    def __eq__(self, other):
        return (
            isinstance(other, WidenedCmp)
            and other.op == self.op
            and other.lin == self.lin
            and other.guards == self.guards
        )

    def __hash__(self):
        value = self._hash
        if value is None:
            value = hash(self.key())
            self._hash = value
        return value

    def __repr__(self):
        return "({} {} 0 | {} guard(s))".format(
            self.lin, self.op, len(self.guards)
        )


def _ideal_bounds(lin, domains):
    """The ideal-integer range of ``lin`` over the variable ``domains``.

    Unknown variables are assumed int32 (the widest kind the machine
    acquires) — a sound over-approximation for the precision check below,
    which only ever *narrows* behavior when bounds are tight.
    """
    low = high = lin.const
    for var, coeff in lin.coeffs.items():
        dlo, dhi = domains.get(var, SIGNED_WINDOW)
        if coeff >= 0:
            low += coeff * dlo
            high += coeff * dhi
        else:
            low += coeff * dhi
            high += coeff * dlo
    return low, high


def _lane_quotients(lin, lo, hi, domains):
    """Every wrap quotient ``q`` the lane can reach under ``domains``.

    The window ``[2^32 q + lo, 2^32 q + hi]`` spans exactly one wrap, so
    each ideal value of ``lin`` lies in exactly one window; the feasible
    quotients are those whose window intersects the lane's ideal range
    ``[min lin, max lin]`` over the variable domains.
    """
    low, high = _ideal_bounds(lin, domains)
    return range((low - lo) // WRAP, (high - lo) // WRAP + 1)


def negation_candidates(conjunct, domains, limit=MAX_NEGATION_WINDOWS):
    """Negations of a widened conjunct, one per feasible wrap window.

    The anchored negation (``conjunct.negate()``) only covers models
    whose operands wrap as many times as the anchoring run did.  The
    machine's true negation is the union over every window the input
    domains allow; this enumerates them as separate plain conjunctions so
    the linear solver (which has no disjunction) can try each in turn:
    a SAT answer for any window is a genuine flip, and UNSAT across all
    of them a genuine infeasibility proof.

    Returns ``(candidates, exhaustive)``; ``exhaustive`` is False when
    more than ``limit`` window combinations exist and the list was
    truncated to the anchored negation alone — the caller must then treat
    an all-UNSAT answer as prover incompleteness, not a proof.
    """
    anchored = conjunct.negate()
    if not conjunct.lanes:
        return [anchored], True
    per_lane = []
    total = 1
    for lin, lo, hi in conjunct.lanes:
        quotients = _lane_quotients(lin, lo, hi, domains)
        per_lane.append(quotients)
        total *= len(quotients)
    if total > limit:
        return [anchored], False
    candidates = [anchored]
    seen = {anchored.key()}
    for combo in itertools.product(*per_lane):
        widened = []
        guards = []
        for (lin, lo, hi), quotient in zip(conjunct.lanes, combo):
            lane_w = lin.add_const(-WRAP * quotient)
            widened.append(lane_w)
            if lin.coeffs:
                guards.append(CmpExpr(GE, lane_w.add_const(-lo)))
                guards.append(CmpExpr(LE, lane_w.add_const(-hi)))
        difference = widened[0]
        if len(widened) > 1:
            difference = difference.sub(widened[1])
        candidate = WidenedCmp(anchored.op, difference, guards,
                               conjunct.lanes)
        if candidate.key() not in seen:
            seen.add(candidate.key())
            candidates.append(candidate)
    return candidates, True


def flatten_constraints(constraints):
    """Expand every :class:`WidenedCmp` into primary + guard conjuncts.

    The solver's normalization reads only ``op``/``lin`` and would
    silently ignore the guards, so every solver-facing query goes through
    this just before cache lookup and solving.
    """
    flat = []
    for constraint in constraints:
        if isinstance(constraint, WidenedCmp):
            flat.extend(constraint.conjuncts())
        else:
            flat.append(constraint)
    return flat


class Widener:
    """Per-run widening state: the input assignment and the funnel.

    Owned by the machine (one per execution).  ``note_input`` records
    every acquired input, giving the widener the exact assignment the run
    executed under; the faithfulness checks and quotient anchoring both
    evaluate ideal terms against it.
    """

    __slots__ = ("flags", "trace", "assignment", "domains", "widened",
                 "dropped")

    def __init__(self, flags, trace=None):
        self.flags = flags
        self.trace = trace
        #: ordinal -> concrete (wrapped) value, grown monotonically as the
        #: run acquires inputs; existing entries never change, so a
        #: conjunct found faithful stays faithful for the whole run.
        self.assignment = {}
        #: ordinal -> (lo, hi) machine domain of the input kind; drives
        #: the domain-precision check in :meth:`_widen_lane`.
        self.domains = {}
        self.widened = 0
        self.dropped = 0

    def note_input(self, ordinal, value, lo=None, hi=None):
        self.assignment[ordinal] = value
        if lo is not None and hi is not None:
            self.domains[ordinal] = (lo, hi)

    def faithful(self, conjunct, expected):
        """Does ``conjunct`` agree with the machine verdict on this run?"""
        try:
            return conjunct.evaluate(self.assignment) == bool(expected)
        except KeyError:
            return False

    # -- widening ----------------------------------------------------------

    def _widen_lane(self, anchor, lin, lo, hi, ideal=None):
        """Widen one comparison operand.

        Returns ``(W, guards, lane, rewritten)`` or None when no faithful
        encoding exists.  ``anchor`` is the concrete machine operand
        (already folded into ``[lo, hi]``); ``lin`` its ideal term, or
        None for a concrete operand, in which case ``ideal`` is its
        *ideal-integer* value (pre-fold) — the lane is the anchor
        constant, ``rewritten`` when the fold moved it (an unsigned read
        of a negative constant).

        A lane whose ideal range over the input domains already fits the
        operand window is **domain-precise**: the ideal term equals the
        machine operand for every admissible model, so it is returned
        guard-free and unrewritten — this is the root-cause fix behind
        the old faithfulness screen.  Run-level faithfulness is not
        enough: a compare may agree with the machine on *this* run yet
        have models elsewhere in the domain that wrap, so precision must
        be judged against the domains, not the run.
        """
        if lin is None:
            constant = LinExpr.constant(anchor)
            rewritten = ideal is not None and ideal != anchor
            return constant, (), (constant, lo, hi), rewritten
        try:
            value = lin.evaluate(self.assignment)
        except KeyError:
            return None
        quotient, remainder = divmod(value - anchor, WRAP)
        if remainder:
            # The ideal term and the machine operand differ by something
            # other than whole 32-bit wraps (a narrow-type wrap, or a
            # violated invariant): no 2³²-window translation is faithful.
            return None
        low, high = _ideal_bounds(lin, self.domains)
        if lo <= low and high <= hi:
            # Domain-precise (and quotient == 0 necessarily: both the
            # ideal value and the anchor lie in the same window).
            return lin, (), (lin, lo, hi), False
        widened = lin.add_const(-WRAP * quotient)
        guards = (
            CmpExpr(GE, widened.add_const(-lo)),
            CmpExpr(LE, widened.add_const(-hi)),
        )
        return widened, guards, (lin, lo, hi), True

    def widen_compare(self, op, left_anchor, left_lin, right_anchor,
                      right_lin, unsigned, expected,
                      left_ideal=None, right_ideal=None):
        """Encode ``left OP right`` bit-precisely; None means drop.

        ``left_lin``/``right_lin`` must be LinExpr or None — anything else
        (a pointer term, a comparison used arithmetically) is rejected as
        a drop.  ``left_ideal``/``right_ideal`` are the pre-fold operand
        values (for concrete lanes, so a folded constant counts as a
        rewrite).  ``expected`` is the machine verdict of this run,
        re-checked against the encoding as a final defense before the
        conjunct is admitted.

        Domain-precise comparisons come back as plain :class:`CmpExpr`
        conjuncts — identical to the ideal-integer encoding, with an
        exact one-window negation; only lanes that can actually leave
        the operand window pay for guards and flip-time window
        enumeration.
        """
        if not self.lanes_linear(left_lin, right_lin):
            return self.drop_unfaithful()
        lo, hi = UNSIGNED_WINDOW if unsigned else SIGNED_WINDOW
        left = self._widen_lane(left_anchor, left_lin, lo, hi, left_ideal)
        right = self._widen_lane(right_anchor, right_lin, lo, hi,
                                 right_ideal)
        if left is None or right is None:
            return self.drop_unfaithful()
        left_w, left_guards, left_lane, left_rw = left
        right_w, right_guards, right_lane, right_rw = right
        guards = left_guards + right_guards
        if guards:
            conjunct = WidenedCmp(op, left_w.sub(right_w), guards,
                                  (left_lane, right_lane))
        else:
            conjunct = CmpExpr(op, left_w.sub(right_w))
        return self._admit(conjunct, expected,
                           left_rw or right_rw or bool(guards))

    def widen_truth_test(self, op, anchor, lin, unsigned, expected):
        """Encode a truth test ``e OP 0`` (branch condition or ``!e``)."""
        if not self.lanes_linear(lin):
            return self.drop_unfaithful()
        lo, hi = UNSIGNED_WINDOW if unsigned else SIGNED_WINDOW
        lane = self._widen_lane(anchor, lin, lo, hi)
        if lane is None:
            return self.drop_unfaithful()
        widened, guards, meta, rewritten = lane
        if guards:
            conjunct = WidenedCmp(op, widened, guards, (meta,))
        else:
            conjunct = CmpExpr(op, widened)
        return self._admit(conjunct, expected, rewritten)

    @staticmethod
    def lanes_linear(*lins):
        """Whether every operand is in the widenable fragment
        (LinExpr or concrete)."""
        return all(lin is None or type(lin) is LinExpr for lin in lins)

    def _admit(self, conjunct, expected, rewritten):
        if not self.faithful(conjunct, expected):
            # The encoding failed its own self-check (should be
            # unreachable while the mod-2³² invariant holds): fall back.
            return self.drop_unfaithful()
        if rewritten:
            self.widened += 1
            trace = self.trace
            if trace is not None and trace.enabled:
                trace.emit("conjunct_widened", op=conjunct.op,
                           guards=len(getattr(conjunct, "guards", ())))
        return conjunct

    def drop_unfaithful(self):
        """The last-resort fallback: no faithful encoding exists.

        Counts the drop, clears ``all_faithful`` and returns None (the
        dropped conjunct) — callers that cannot widen use it directly.
        """
        self.dropped += 1
        self.flags.clear_faithful()
        trace = self.trace
        if trace is not None and trace.enabled:
            trace.emit("conjunct_dropped")
        return None
