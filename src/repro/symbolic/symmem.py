"""The symbolic memory ``S`` of Section 2.2.

``S`` maps concrete byte addresses to symbolic expressions, together with
the byte width of the stored scalar.  Writes with no symbolic payload (the
common case) *invalidate* any overlapping entries, which is how symbolic
information soundly disappears when the program overwrites an
input-dependent location with a computed value — including through aliases,
as in the ``char*``/struct cast example of Section 2.5: the byte-range
overlap check catches partial overwrites that a variable-keyed map would
miss.
"""


class SymbolicMemory:
    """Maps byte addresses to ``(size, expr)`` entries."""

    def __init__(self):
        self._entries = {}
        # Conservative bounds over all entries ever written: lets the hot
        # has_overlap path skip the scan for unrelated addresses.
        self._lo = None
        self._hi = None

    def __len__(self):
        return len(self._entries)

    def clear(self):
        self._entries.clear()

    def read(self, addr, size):
        """The expression stored exactly at ``addr`` with width ``size``.

        Partially overlapping entries yield None: reading half of a symbolic
        int is outside the theory and falls back to the concrete value.
        """
        entry = self._entries.get(addr)
        if entry is not None and entry[0] == size:
            return entry[1]
        return None

    def write(self, addr, size, expr):
        """Store ``expr`` at ``addr``; ``expr`` may be None to invalidate."""
        self._invalidate_overlaps(addr, size)
        if expr is not None:
            self._entries[addr] = (size, expr)
            if self._lo is None or addr < self._lo:
                self._lo = addr
            if self._hi is None or addr + size > self._hi:
                self._hi = addr + size

    def invalidate(self, addr, size):
        self._invalidate_overlaps(addr, size)

    def has_overlap(self, addr, size):
        """True when any entry intersects [addr, addr + size).

        Used by the library-function black boxes: *reading* symbolic data
        through an opaque function loses completeness (the result depends
        on inputs yet carries no symbolic value), so the caller must clear
        ``all_linear``.
        """
        if not self._entries:
            return False
        if self._lo is not None and (
            addr + size <= self._lo or addr >= self._hi
        ):
            return False  # outside the bounds of everything ever stored
        if addr in self._entries:
            return True
        end = addr + size
        return any(
            a < end and addr < a + width
            for a, (width, _) in self._entries.items()
        )

    def _invalidate_overlaps(self, addr, size):
        # Fast path: outside the bounds of everything ever stored, nothing
        # can overlap (concrete stores vastly outnumber symbolic entries,
        # so this guard carries the interpreter's store hot path).
        if self._lo is None or addr + size <= self._lo or addr >= self._hi:
            return
        # Fast path: an exact-width entry at the same address.
        existing = self._entries.pop(addr, None)
        if existing is not None and existing[0] == size:
            return
        if existing is not None:
            pass  # it overlapped by definition; fall through to full scan
        end = addr + size
        stale = [
            a
            for a, (width, _) in self._entries.items()
            if a < end and addr < a + width
        ]
        for a in stale:
            del self._entries[a]

    def copy_range(self, src, dst, size):
        """Copy symbolic entries wholly inside [src, src+size) to dst.

        Used for struct assignment and transparent memcpy: entries that are
        only partially covered are dropped (concrete fallback), entries in
        the destination range are invalidated first.
        """
        self._invalidate_overlaps(dst, size)
        src_end = src + size
        moved = []
        for addr, (width, expr) in self._entries.items():
            if addr >= src and addr + width <= src_end:
                moved.append((dst + (addr - src), width, expr))
        for addr, width, expr in moved:
            self._entries[addr] = (width, expr)
            if self._lo is None or addr < self._lo:
                self._lo = addr
            if self._hi is None or addr + width > self._hi:
                self._hi = addr + width

    def entries(self):
        """All live entries as (addr, size, expr) tuples (for inspection)."""
        return [
            (addr, width, expr)
            for addr, (width, expr) in sorted(self._entries.items())
        ]

    def variables(self):
        """The set of input ordinals currently referenced by ``S``."""
        referenced = set()
        for _, expr in self._entries.values():
            referenced |= expr.variables()
        return referenced
