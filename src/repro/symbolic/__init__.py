"""Symbolic state for the concolic execution of Section 2 of the paper.

This package provides the symbolic counterpart of the concrete RAM machine:

* :mod:`repro.symbolic.expr` — linear symbolic expressions over input
  variables, comparison terms and symbolic pointer terms;
* :mod:`repro.symbolic.symmem` — the symbolic memory ``S`` mapping memory
  addresses to expressions;
* :mod:`repro.symbolic.evaluate` — the ``evaluate_symbolic`` combinators of
  Figure 1, including the concrete fallback that clears the completeness
  flags ``all_linear`` and ``all_locs_definite``.
"""

from repro.symbolic.expr import (
    CmpExpr,
    EQ,
    GE,
    GT,
    InputVar,
    LE,
    LT,
    LinExpr,
    NE,
    PtrExpr,
)
from repro.symbolic.flags import CompletenessFlags
from repro.symbolic.symmem import SymbolicMemory
from repro.symbolic.evaluate import SymbolicEvaluator, constraint_from_branch

__all__ = [
    "CmpExpr",
    "CompletenessFlags",
    "EQ",
    "GE",
    "GT",
    "InputVar",
    "LE",
    "LT",
    "LinExpr",
    "NE",
    "PtrExpr",
    "SymbolicEvaluator",
    "SymbolicMemory",
    "constraint_from_branch",
]
