"""The ``evaluate_symbolic`` combinators of Figure 1.

The concrete interpreter evaluates every expression to a pair
``(concrete value, symbolic expression or None)``; the combinators below
compute the symbolic half.  ``None`` means "no symbolic content" — the value
does not depend on any input.  Whenever an operation *would* lose symbolic
content (non-linear arithmetic, bit operations, casts that change the value,
pointer reasoning outside the NULL test), the combinator returns None *and*
clears the appropriate completeness flag, exactly like Figure 1's
``all_linear = 0`` / ``all_locs_definite = 0`` assignments.

Operations whose operands are all concrete return None silently: falling
back costs completeness only when symbolic information existed to lose.
"""

from repro.symbolic.expr import (
    CmpExpr,
    EQ,
    GE,
    GT,
    LE,
    LT,
    LinExpr,
    NE,
    PtrExpr,
)

_MIRROR = {LT: GT, GT: LT, LE: GE, GE: LE, EQ: EQ, NE: NE}


class SymbolicEvaluator:
    """Figure 1, parameterized by the shared completeness flags."""

    def __init__(self, flags):
        self.flags = flags

    # -- coercion -----------------------------------------------------------

    def _as_lin(self, value, sym):
        """Coerce a (value, sym) pair to a LinExpr, or None + flag."""
        if sym is None:
            return LinExpr.constant(value)
        if isinstance(sym, LinExpr):
            return sym
        # A comparison or pointer term used arithmetically is outside the
        # linear theory; drop to the concrete value.
        self.flags.clear_linear()
        return None

    def _both_concrete(self, left_sym, right_sym):
        return left_sym is None and right_sym is None

    # -- arithmetic ------------------------------------------------------------

    def add(self, left_value, left_sym, right_value, right_sym):
        if self._both_concrete(left_sym, right_sym):
            return None
        left = self._as_lin(left_value, left_sym)
        right = self._as_lin(right_value, right_sym)
        if left is None or right is None:
            return None
        return left.add(right)

    def sub(self, left_value, left_sym, right_value, right_sym):
        if self._both_concrete(left_sym, right_sym):
            return None
        left = self._as_lin(left_value, left_sym)
        right = self._as_lin(right_value, right_sym)
        if left is None or right is None:
            return None
        return left.sub(right)

    def mul(self, left_value, left_sym, right_value, right_sym):
        """Multiplication stays linear only with a concrete co-factor."""
        if self._both_concrete(left_sym, right_sym):
            return None
        if left_sym is not None and right_sym is not None:
            # Two symbolic factors: non-linear (Fig. 1's "all_linear = 0").
            self.flags.clear_linear()
            return None
        if left_sym is None:
            lin = self._as_lin(right_value, right_sym)
            factor = left_value
        else:
            lin = self._as_lin(left_value, left_sym)
            factor = right_value
        if lin is None:
            return None
        return lin.scale(factor)

    def neg(self, value, sym):
        if sym is None:
            return None
        lin = self._as_lin(value, sym)
        if lin is None:
            return None
        return lin.negate()

    def shift_left(self, left_value, left_sym, right_value, right_sym):
        """``e << k`` with concrete k is multiplication by 2**k."""
        if self._both_concrete(left_sym, right_sym):
            return None
        if right_sym is None and 0 <= right_value < 31:
            lin = self._as_lin(left_value, left_sym)
            if lin is None:
                return None
            return lin.scale(1 << right_value)
        self.flags.clear_linear()
        return None

    def nonlinear(self, *syms):
        """Division, modulo, right shifts and bit operations: outside the
        theory whenever any operand carries symbolic content."""
        if any(sym is not None for sym in syms):
            self.flags.clear_linear()
        return None

    # -- comparisons ----------------------------------------------------------

    def compare(self, op, left_value, left_sym, right_value, right_sym):
        if self._both_concrete(left_sym, right_sym):
            return None
        if isinstance(left_sym, PtrExpr) or isinstance(right_sym, PtrExpr):
            return self._compare_pointer(
                op, left_value, left_sym, right_value, right_sym
            )
        left = self._as_lin(left_value, left_sym)
        right = self._as_lin(right_value, right_sym)
        if left is None or right is None:
            return None
        return CmpExpr(op, left.sub(right))

    def _compare_pointer(self, op, left_value, left_sym, right_value,
                         right_sym):
        # Only the NULL test is directable; put the pointer on the left.
        if isinstance(right_sym, PtrExpr) and not isinstance(left_sym,
                                                             PtrExpr):
            left_value, right_value = right_value, left_value
            left_sym, right_sym = right_sym, left_sym
            op = _MIRROR[op]
        if (
            isinstance(left_sym, PtrExpr)
            and right_sym is None
            and right_value == 0
            and op in (EQ, NE)
        ):
            return left_sym.null_test(op == EQ)
        # Anything else (two symbolic pointers, ordering comparisons,
        # comparison against a specific address) is checked concretely, as
        # Section 2.5 describes; the lost information costs completeness.
        self.flags.clear_linear()
        return None

    def logical_not(self, value, sym):
        """``!e`` — representable whenever ``e`` is."""
        if sym is None:
            return None
        if isinstance(sym, CmpExpr):
            return sym.negate()
        if isinstance(sym, LinExpr):
            return CmpExpr(EQ, sym)
        if isinstance(sym, PtrExpr):
            return sym.null_test(True)
        self.flags.clear_linear()
        return None

    def cast_int(self, old_value, new_value, sym):
        """An integer conversion keeps its symbolic value only if the
        concrete value survived unchanged (an under-approximation that the
        forcing check of Fig. 4 validates at runtime)."""
        if sym is None:
            return None
        if old_value == new_value and isinstance(sym, (LinExpr, CmpExpr)):
            return sym
        self.flags.clear_linear()
        return None


def constraint_from_branch(sym, taken, widener=None, value=None,
                           unsigned=False):
    """The path-constraint conjunct for a conditional ``if (e)``.

    Returns a :class:`CmpExpr` (or None when the predicate has no symbolic
    content, in which case the branch cannot be flipped by solving and the
    caller relies on random restarts — the paper's graceful degradation).

    With a :class:`repro.symbolic.widen.Widener` attached (the machine
    passes its own, plus the condition's concrete ``value`` and
    signedness), a bare truth test ``if (e)`` is encoded by the widener
    against the machine operand and the input domains: domain-precise
    terms come back as the plain ideal-integer conjunct, terms that can
    wrap as a bit-precise :class:`~repro.symbolic.widen.WidenedCmp`, and
    a term with no faithful encoding is dropped, clearing
    ``all_faithful`` — the last-resort fallback.
    """
    if sym is None:
        return None
    if isinstance(sym, CmpExpr):
        conjunct = sym if taken else sym.negate()
    elif isinstance(sym, LinExpr):
        if widener is not None:
            return widener.widen_truth_test(
                NE if taken else EQ, value, sym, unsigned, True
            )
        return CmpExpr(NE if taken else EQ, sym)
    elif isinstance(sym, PtrExpr):
        return sym.null_test(not taken)
    else:
        return None
    # A comparison value reaching a branch was made faithful where it was
    # built (Machine._compare / logical_not widening); re-checking here
    # catches anything that slipped through — there is no lane
    # information left to widen with, so the only remedy is the drop.
    if widener is not None and not widener.faithful(conjunct, True):
        widener.dropped += 1
        widener.flags.clear_faithful()
        return None
    return conjunct
