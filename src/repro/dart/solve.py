"""``solve_path_constraint`` (Fig. 5) with pluggable branch selection.

After a run completes, the deepest conditional whose other branch has not
been explored (``done == 0``) is selected; its conjunct is negated and the
path-constraint prefix up to it is handed to the solver.  On success the
truncated stack (with the branch bit flipped) and the updated input vector
``IM + IM'`` drive the next run.  On UNSAT the next candidate branch is
tried — the paper's recursive descent; on UNKNOWN additionally
``all_linear`` is cleared, because prover incompleteness costs the
termination guarantee exactly like a non-linear expression does.

Footnote 4 of the paper notes the flipped branch "could be selected using a
different strategy, e.g., randomly or in a breadth-first manner"; the
``strategy`` parameter implements all three.

Two throughput layers plug in here (see DESIGN.md, "Performance"):

* **Constraint slicing** (:mod:`repro.dart.slicing`): the solver receives
  only the variable-sharing group of the negated conjunct instead of the
  whole prefix; untouched groups keep their current ``IM`` values, which
  already satisfy them.
* **Result caching** (:mod:`repro.solver.cache`): canonically equal
  queries — frequent once slicing shrinks them — are answered without a
  solver call, as are supersets of known-UNSAT sets and queries satisfied
  by a previously found model.
"""

import hashlib
import time

from repro.dart.independence import dedup_eligible
from repro.dart.slicing import ConstraintSlicer
from repro.obs import trace as tr
from repro.obs.profile import CACHE, PhaseTimer
from repro.solver.cache import SolverResultCache
from repro.solver.core import UNKNOWN, SolverResult
from repro.symbolic.widen import (
    WidenedCmp,
    flatten_constraints,
    negation_candidates,
)

#: Shared disabled timer so the hot path below never branches on None.
_NO_PHASES = PhaseTimer()


def _safe_solve(solver, constraints, domains, stats, trace, **kwargs):
    """One solver call with the failure contained to an UNKNOWN verdict.

    A solver that *crashes* on a flip must not take the campaign down —
    the flip is treated exactly like prover incompleteness: the caller
    clears ``all_linear`` and the search falls back to the paper's
    random-branch strategy (random restarts keep the session honest and
    productive).  The failure is counted (``solver_failures``) and traced
    so the degradation is observable, never silent.
    """
    try:
        return solver.solve(constraints, domains, **kwargs)
    except Exception as exc:
        if stats is not None:
            stats.solver_failures += 1
        if trace is not None and trace.enabled:
            trace.emit(tr.SOLVER_FAILED, error=type(exc).__name__,
                       detail=str(exc)[:200],
                       constraints=len(constraints))
        return SolverResult(UNKNOWN)


def _contain_cache_failure(cache, exc, stats, trace):
    """Self-heal a corrupted result cache: count, trace, clear.

    Clearing is always safe — the cache only reproduces verdicts the
    solver would give, so an empty cache merely costs re-derived calls.
    The failed access is then treated as a miss (lookup) or dropped
    (store).
    """
    if stats is not None:
        stats.cache_failures += 1
    if trace is not None and trace.enabled:
        trace.emit(tr.CACHE_FAILED, error=type(exc).__name__,
                   detail=str(exc)[:200])
    try:
        cache.clear()
    except Exception:
        pass


def solve_with_retry(solver, constraints, domains, stats=None,
                     escalation=1, cache=None, trace=None, subsume=False):
    """One *logical* solver call with caching and budget resilience.

    When ``cache`` is set, the query is first answered from it (exact hit,
    UNSAT-core subsumption, UNSAT-superset shortcut, or model reuse); a
    cache answer costs no solver call and leaves ``solver_calls``
    untouched — the cache counters record it instead.  On a miss, when
    the first attempt returns ``unknown`` (node budget exhausted, not a
    proof either way) and ``escalation`` > 1, the call is retried once
    with the node budget multiplied by ``escalation`` before the caller
    degrades to the random-testing fallback.  Statistics count the
    logical call once (so ``solver_calls == sat + unsat + unknown`` stays
    an invariant) plus the retry/escalation counters; decided results are
    stored back into the cache.

    With ``subsume`` set (the subsumption layer, ``--no-subsumption``
    ablates it), a real UNSAT answer is additionally minimized by greedy
    deletion (:func:`_extract_core`) and the core recorded in the cache's
    cross-subtree tier, so future flips *containing* it are refuted
    without a solver call; such refutations count as
    ``flips_subsumed_core`` and emit a ``flip_subsumed`` trace event.

    Observability: actual solver calls are timed into the
    ``solver_latency_s`` histogram, cache lookups/stores into the
    ``cache`` phase, and — when ``trace`` is an enabled bus — a
    ``solver_answered`` event carries verdict, wall time and (sliced)
    query size.  The cache emits its own lookup/store events (see
    :mod:`repro.solver.cache`); the ``solve`` phase is attributed by the
    *caller* around the whole planning call, minus the cache sections,
    so the phases stay disjoint.
    """
    phases = stats.phases if stats is not None else _NO_PHASES
    cache_usable = cache is not None
    if cache_usable:
        try:
            with phases.section(CACHE):
                hit = cache.lookup(constraints, domains)
        except Exception as exc:
            # Corrupted cache state: self-heal and fall through to a
            # real solver call; skip the store below (the cache just
            # proved untrustworthy for this query).
            _contain_cache_failure(cache, exc, stats, trace)
            cache_usable = False
        else:
            if hit is not None:
                result, tier = hit
                if tier == "unsat-core" and trace is not None \
                        and trace.enabled:
                    trace.emit(tr.FLIP_SUBSUMED,
                               constraints=len(constraints))
                if stats is not None:
                    if tier == "exact":
                        stats.cache_hits += 1
                    elif tier == "unsat-core":
                        stats.flips_subsumed_core += 1
                    elif tier == "unsat-superset":
                        stats.cache_unsat_shortcuts += 1
                    else:
                        stats.cache_model_reuses += 1
                return result
            if stats is not None:
                stats.cache_misses += 1
    escalated = False
    started = time.perf_counter()
    result = _safe_solve(solver, constraints, domains, stats, trace)
    if result.status == "unknown" and escalation and escalation > 1:
        if stats is not None:
            stats.solver_retries += 1
        result = _safe_solve(
            solver, constraints, domains, stats, trace,
            node_budget=solver.node_budget * escalation,
        )
        escalated = True
        if stats is not None and result.status != "unknown":
            stats.solver_escalations += 1
    wall = time.perf_counter() - started
    if stats is not None:
        stats.solver_calls += 1
        stats.solver_constraints += len(constraints)
        stats.solver_latency.observe(wall)
        if result.status == "sat":
            stats.solver_sat += 1
        elif result.status == "unsat":
            stats.solver_unsat += 1
        else:
            stats.solver_unknown += 1
    if trace is not None and trace.enabled:
        trace.emit(tr.SOLVER_ANSWERED, verdict=result.status,
                   wall_s=round(wall, 6), constraints=len(constraints),
                   escalated=escalated)
    if cache_usable:
        try:
            with phases.section(CACHE):
                cache.store(constraints, domains, result)
        except Exception as exc:
            _contain_cache_failure(cache, exc, stats, trace)
            cache_usable = False
    if (subsume and cache_usable and result.status == "unsat"
            and 2 <= len(constraints) <= _CORE_EXTRACT_LIMIT):
        core = _extract_core(solver, constraints, domains, stats, trace)
        if core is not None:
            try:
                with phases.section(CACHE):
                    cache.store_core(core, domains)
            except Exception as exc:
                _contain_cache_failure(cache, exc, stats, trace)
    return result


#: Greedy core extraction probes up to O(n^2) solver calls; sliced UNSAT
#: groups are small, and past this size the probes would cost more than
#: the recorded core could ever save.
_CORE_EXTRACT_LIMIT = 8


def _extract_core(solver, constraints, domains, stats, trace):
    """Greedy-deletion minimization of a proved-UNSAT conjunct set.

    Drops one conjunct at a time, keeping the remainder only while it is
    still UNSAT.  The probes go through :func:`_safe_solve` but are *not*
    logical solver calls: they are not counted in ``solver_calls`` and
    emit no ``solver_answered`` events, so the flip funnel's
    ``solver_calls == sat + unsat + unknown`` invariant is untouched (a
    crashing probe still counts ``solver_failures``).  An ``unknown``
    probe conservatively keeps its conjunct.  Returns the minimized
    list, or None when nothing could be removed — the set is already
    minimal and the plain UNSAT tier holds it verbatim.
    """
    core = list(constraints)
    removed = False
    index = 0
    while len(core) > 1 and index < len(core):
        probe = core[:index] + core[index + 1:]
        if _safe_solve(solver, probe, domains, stats, trace).status \
                == "unsat":
            core = probe
            removed = True
        else:
            index += 1
    return core if removed else None


class NextRunPlan:
    """What the next execution should try: a predicted stack plus inputs."""

    __slots__ = ("stack", "im")

    def __init__(self, stack, im):
        self.stack = stack
        self.im = im


def candidate_indices(stack, strategy, rng):
    """Indices of not-yet-``done`` conditionals, in flip-attempt order.

    The strategy is validated *first*: a typo'd ``--strategy`` must fail
    on the very first call, before the candidate scan — not after a full
    pass over the stack on every solve of the session.
    """
    if strategy not in ("dfs", "bfs", "random"):
        raise ValueError("unknown strategy {!r}".format(strategy))
    pending = [
        index for index, entry in enumerate(stack) if not entry.done
    ]
    if strategy == "dfs":
        pending.reverse()
    elif strategy == "random":
        rng.shuffle(pending)
    return pending


def _prefix_index(constraints):
    """Per-call invariants of the candidate loop, computed once.

    Returns ``(non_none, count_before)`` where ``non_none`` is the
    filtered conjunct list in order and ``count_before[i]`` is how many of
    them lie strictly before index ``i`` — so the unsliced prefix for
    candidate ``j`` is ``non_none[:count_before[j]]`` with no per-candidate
    rebuild of the whole list.
    """
    non_none = []
    count_before = [0] * (len(constraints) + 1)
    for index, constraint in enumerate(constraints):
        count_before[index] = len(non_none)
        if constraint is not None:
            non_none.append(constraint)
    count_before[len(constraints)] = len(non_none)
    return non_none, count_before


def _assignment_of(im):
    """The run's inputs as an ordinal -> value map (for the slicer's
    faithfulness screen)."""
    return {ordinal: slot.value for ordinal, slot in enumerate(im)}


def _query_for(j, negated, slicer, non_none, count_before, stats):
    """The solver query for flipping conditional ``j`` (sliced or full)."""
    if slicer is not None:
        query = slicer.slice(j, negated)
        if stats is not None:
            stats.sliced_conjuncts_dropped += \
                count_before[j] + 1 - len(query)
    else:
        query = non_none[: count_before[j]]
        query.append(negated)
    # Widened conjuncts carry window guards that the solver's
    # normalization (which reads only op/lin) would silently ignore;
    # expand them into plain conjuncts here — after slicing has grouped
    # and the accounting above has counted whole conjuncts.
    return flatten_constraints(query)


def _negations_of(conjunct, domains):
    """Ordered negation candidates for flipping ``conjunct``.

    A plain conjunct has exactly one.  A widened conjunct's anchored
    negation only covers this run's wrap window, so the feasible windows
    are enumerated (see :func:`repro.symbolic.widen.negation_candidates`);
    the second element is False when the enumeration was truncated and an
    all-UNSAT answer must not count as an infeasibility proof.
    """
    if isinstance(conjunct, WidenedCmp):
        return negation_candidates(conjunct, domains)
    return [conjunct.negate()], True


def _child_fingerprint(query, query_vars, assignment, domains):
    """Canonical future fingerprint of a dedup-*eligible* worklist child.

    Only computed when the session's static independence analysis
    (:mod:`repro.dart.independence`) proved the sliced query's variable
    set closed under input coupling — every class a query variable
    belongs to lies inside ``query_vars``.  Under that guarantee the
    fingerprint needs exactly what the child's future can observe about
    those inputs: the sliced flip query in canonical form (the solver is
    deterministic per query, so fingerprint-equal flips receive the same
    model), the query variables' domains, and the input-vector length
    (ties fresh-ordinal draws to the same alignment).  Inputs *outside*
    the query belong to classes no predicate connects to it: their
    parent-supplied values steer futures the parent's own run and its
    other children already cover.  The engines add the error salt and
    the completeness-flags guard at insert time; the config-invariance
    oracle pins that the final error set survives the pruning.
    """
    canon = SolverResultCache.canonical_cmp_key
    payload = (
        "v3",
        sorted(repr(canon(c)) for c in query),
        sorted((var,) + tuple(domains.get(var, (None, None)))
               for var in query_vars),
        len(assignment),
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def solve_path_constraint(record, stack, im, solver, strategy, rng, flags,
                          stats=None, escalation=1, cache=None,
                          slicing=True, trace=None, subsume=False):
    """Pick a branch to flip and solve for inputs reaching it.

    ``record`` is the completed run's :class:`PathRecord` (constraints),
    ``stack`` the finished (branch, done) list, ``im`` the run's input
    vector.  Returns a :class:`NextRunPlan`, or None when every branch
    along the path is exhausted (this directed search is over).
    """
    constraints = record.constraints
    domains = im.domains()
    non_none, count_before = _prefix_index(constraints)
    slicer = ConstraintSlicer(constraints, _assignment_of(im)) \
        if slicing else None
    for j in candidate_indices(stack, strategy, rng):
        conjunct = constraints[j]
        if conjunct is None:
            # Concrete-fallback predicate: not flippable by solving.  Its
            # other branch is only reachable through different earlier
            # choices (or not at all).  Mark it done so it is not
            # re-examined on every later solve with the same prefix.
            stack[j].done = True
            continue
        negations, exhaustive = _negations_of(conjunct, domains)
        if stats is not None:
            stats.flips_attempted += 1
        all_unsat = True
        plan = None
        for windex, negated in enumerate(negations):
            query = _query_for(j, negated, slicer, non_none,
                               count_before, stats)
            if windex == 0 and trace is not None and trace.enabled:
                trace.emit(tr.CONJUNCT_NEGATED, index=j,
                           prefix=count_before[j], query=len(query),
                           windows=len(negations))
            result = solve_with_retry(solver, query, domains, stats,
                                      escalation, cache, trace, subsume)
            if result.is_sat:
                if stats is not None:
                    stats.flips_sat += 1
                next_stack = [entry.copy() for entry in stack[: j + 1]]
                next_stack[j] = next_stack[j].flipped()
                plan = NextRunPlan(next_stack, im.updated(result.model))
                break
            if result.status == "unknown":
                # Prover incompleteness: same effect as a non-linear
                # predicate.
                all_unsat = False
                flags.clear_linear()
        if plan is not None:
            return plan
        if all_unsat:
            if exhaustive:
                # Proved UNSAT (across every wrap window, for widened
                # conjuncts): the other branch is infeasible under this
                # prefix, which is permanent for this branch history —
                # mark it done so later solves with the same prefix skip
                # it.  (Fig. 5 re-derives the UNSAT on every call; this
                # is a pure memoization.)
                stack[j].done = True
            else:
                # Window enumeration truncated: UNSAT here is not a
                # proof.  Give up on this branch but record the lost
                # guarantee like any other prover incompleteness.
                stack[j].done = True
                flags.clear_linear()
    return None


def expand_worklist_children(stack, constraints, im, bound, solver, flags,
                             stats=None, escalation=1, cache=None,
                             slicing=True, trace=None, subsume=False,
                             independence=None):
    """Generational expansion: children for indices ``bound..len(stack)``.

    The worklist engines (serial and parallel) spawn one pending input
    vector per newly discovered flippable branch; this helper owns that
    loop so both engines share the slicing/caching fast path.  Returns a
    list of ``(child_stack, child_im, child_bound, fingerprint)``
    4-tuples in branch order; ``fingerprint`` is the dedup key of
    :func:`_child_fingerprint` when ``subsume``, slicing and the
    session's ``independence`` classes (see
    :func:`repro.dart.independence.coupling_classes`) all permit it,
    else None — children without a fingerprint are never deduped.
    """
    domains = im.domains()
    non_none, count_before = _prefix_index(constraints)
    assignment = _assignment_of(im)
    slicer = ConstraintSlicer(constraints, assignment) \
        if slicing else None
    children = []
    for j in range(bound, len(stack)):
        conjunct = constraints[j]
        if conjunct is None:
            continue
        negations, exhaustive = _negations_of(conjunct, domains)
        if stats is not None:
            stats.flips_attempted += 1
        if not exhaustive:
            flags.clear_linear()
        for windex, negated in enumerate(negations):
            query = _query_for(j, negated, slicer, non_none,
                               count_before, stats)
            if windex == 0 and trace is not None and trace.enabled:
                trace.emit(tr.CONJUNCT_NEGATED, index=j,
                           prefix=count_before[j], query=len(query),
                           windows=len(negations))
            result = solve_with_retry(solver, query, domains, stats,
                                      escalation, cache, trace, subsume)
            if result.is_sat:
                if stats is not None:
                    stats.flips_sat += 1
                child = [entry.copy() for entry in stack[: j + 1]]
                child[j] = child[j].flipped()
                fp = None
                if subsume and slicer is not None \
                        and independence is not None:
                    query_vars = set()
                    for c in query:
                        query_vars |= c.variables()
                    if dedup_eligible(query_vars, independence):
                        fp = _child_fingerprint(query, query_vars,
                                                assignment, domains)
                children.append((child, im.updated(result.model), j + 1,
                                 fp))
                break
            if result.status == "unknown":
                flags.clear_linear()
    return children
