"""``solve_path_constraint`` (Fig. 5) with pluggable branch selection.

After a run completes, the deepest conditional whose other branch has not
been explored (``done == 0``) is selected; its conjunct is negated and the
path-constraint prefix up to it is handed to the solver.  On success the
truncated stack (with the branch bit flipped) and the updated input vector
``IM + IM'`` drive the next run.  On UNSAT the next candidate branch is
tried — the paper's recursive descent; on UNKNOWN additionally
``all_linear`` is cleared, because prover incompleteness costs the
termination guarantee exactly like a non-linear expression does.

Footnote 4 of the paper notes the flipped branch "could be selected using a
different strategy, e.g., randomly or in a breadth-first manner"; the
``strategy`` parameter implements all three.
"""


def solve_with_retry(solver, constraints, domains, stats=None,
                     escalation=1):
    """One *logical* solver call with budget-exhaustion resilience.

    When the first attempt returns ``unknown`` (node budget exhausted,
    not a proof either way) and ``escalation`` > 1, the call is retried
    once with the node budget multiplied by ``escalation`` before the
    caller degrades to the random-testing fallback.  Statistics count the
    logical call once (so ``solver_calls == sat + unsat + unknown``
    stays an invariant) plus the retry/escalation counters.
    """
    result = solver.solve(constraints, domains)
    if result.status == "unknown" and escalation and escalation > 1:
        if stats is not None:
            stats.solver_retries += 1
        result = solver.solve(
            constraints, domains,
            node_budget=solver.node_budget * escalation,
        )
        if stats is not None and result.status != "unknown":
            stats.solver_escalations += 1
    if stats is not None:
        stats.solver_calls += 1
        if result.status == "sat":
            stats.solver_sat += 1
        elif result.status == "unsat":
            stats.solver_unsat += 1
        else:
            stats.solver_unknown += 1
    return result


class NextRunPlan:
    """What the next execution should try: a predicted stack plus inputs."""

    __slots__ = ("stack", "im")

    def __init__(self, stack, im):
        self.stack = stack
        self.im = im


def candidate_indices(stack, strategy, rng):
    """Indices of not-yet-``done`` conditionals, in flip-attempt order."""
    pending = [
        index for index, entry in enumerate(stack) if not entry.done
    ]
    if strategy == "dfs":
        pending.reverse()
    elif strategy == "random":
        rng.shuffle(pending)
    elif strategy != "bfs":
        raise ValueError("unknown strategy {!r}".format(strategy))
    return pending


def solve_path_constraint(record, stack, im, solver, strategy, rng, flags,
                          stats=None, escalation=1):
    """Pick a branch to flip and solve for inputs reaching it.

    ``record`` is the completed run's :class:`PathRecord` (constraints),
    ``stack`` the finished (branch, done) list, ``im`` the run's input
    vector.  Returns a :class:`NextRunPlan`, or None when every branch
    along the path is exhausted (this directed search is over).
    """
    constraints = record.constraints
    domains = im.domains()
    for j in candidate_indices(stack, strategy, rng):
        conjunct = constraints[j]
        if conjunct is None:
            # Concrete-fallback predicate: not flippable by solving.  Its
            # other branch is only reachable through different earlier
            # choices (or not at all).  Mark it done so it is not
            # re-examined on every later solve with the same prefix.
            stack[j].done = True
            continue
        prefix = [c for c in constraints[:j] if c is not None]
        prefix.append(conjunct.negate())
        result = solve_with_retry(solver, prefix, domains, stats,
                                  escalation)
        if result.is_sat:
            next_stack = [entry.copy() for entry in stack[: j + 1]]
            next_stack[j] = next_stack[j].flipped()
            return NextRunPlan(next_stack, im.updated(result.model))
        if result.status == "unknown":
            # Prover incompleteness: same effect as a non-linear predicate.
            flags.clear_linear()
        else:
            # Proved UNSAT: the other branch is infeasible under this
            # prefix, which is permanent for this branch history — mark it
            # done so later solves with the same prefix skip it.  (Fig. 5
            # re-derives the UNSAT on every call; this is a pure
            # memoization.)
            stack[j].done = True
    return None
