"""DART: Directed Automated Random Testing — the paper's core contribution.

The package mirrors the paper's structure:

* :mod:`repro.dart.interface` — automated interface extraction (§3.1);
* :mod:`repro.dart.driver` — test-driver generation in mini-C, including
  ``random_init`` for arbitrary (even recursive) types and stubs for
  external functions (§3.2, Figs. 7–8);
* :mod:`repro.dart.instrument` — the instrumented program of Fig. 3 plus
  ``compare_and_update_stack`` of Fig. 4;
* :mod:`repro.dart.solve` — ``solve_path_constraint`` of Fig. 5, with the
  DFS strategy of the paper and the BFS/random alternatives of footnote 4;
* :mod:`repro.dart.runner` — the ``run_DART`` driver of Fig. 2 (directed
  search inside random restarts, completeness flags, Theorem 1 statuses);
* :mod:`repro.dart.random_testing` — the pure random-testing baseline the
  evaluation compares against.

The one-call entry points are :func:`repro.dart.runner.dart_check` and
:func:`repro.dart.random_testing.random_check`.
"""

from repro.dart.config import DartOptions
from repro.dart.driver import generate_driver, build_test_program
from repro.dart.interface import extract_interface
from repro.dart.inputs import InputVector, domain_for_kind
from repro.dart.random_testing import RandomTester, random_check
from repro.dart.report import (
    DartResult,
    ErrorReport,
    QuarantineRecord,
    RunStats,
)
from repro.dart.runner import Dart, dart_check

__all__ = [
    "Dart",
    "DartOptions",
    "DartResult",
    "ErrorReport",
    "InputVector",
    "QuarantineRecord",
    "RandomTester",
    "RunStats",
    "build_test_program",
    "dart_check",
    "domain_for_kind",
    "extract_interface",
    "generate_driver",
    "random_check",
]
