"""``run_DART`` (Fig. 2): directed search wrapped in random restarts.

The outer loop restarts with a fresh random input vector; the inner loop
runs the instrumented program and asks ``solve_path_constraint`` for the
next input vector.  Any :class:`ExecutionFault` raised by the program is a
bug, reported with the concrete input vector that triggers it — Theorem
1(a)'s soundness comes for free because the fault occurred in a real
execution.  If a directed search finishes with both completeness flags
still set, all feasible program paths have been explored (Theorem 1(b)) and
the session reports ``complete``.  A forcing mismatch (the solver's
prediction diverged at runtime) aborts the directed search and falls back
to a random restart, as described at the end of Section 2.3.
"""

import random
import time

from repro.dart import persist
from repro.dart.config import DartOptions
from repro.dart.coverage import BranchCoverage
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import (
    BUG_FOUND,
    COMPLETE,
    EXHAUSTED,
    DartResult,
    ErrorReport,
    RunStats,
)
from repro.dart.solve import solve_path_constraint
from repro.interp.faults import ExecutionFault
from repro.interp.machine import Machine, MachineOptions
from repro.solver import Solver
from repro.symbolic.flags import CompletenessFlags


class Dart:
    """A DART session for one program and one toplevel function."""

    def __init__(self, source, toplevel, options=None, filename="<program>"):
        self.options = options or DartOptions()
        self.toplevel = toplevel
        self.module = build_test_program(
            source, toplevel, depth=self.options.depth, filename=filename,
            max_init_depth=self.options.max_init_depth,
        )
        self.solver = Solver(
            seed=self.options.seed,
            node_budget=self.options.solver_node_budget,
        )

    # -- the paper's Fig. 2 -------------------------------------------------

    def run(self):
        """Execute the run_DART loop; returns a :class:`DartResult`.

        The default "dfs" strategy is the paper's Fig. 5 single-stack
        depth-first search.  The "bfs" and "random" strategies (footnote 4)
        use a *generational worklist* instead: after each run, every newly
        discovered flippable branch spawns a pending input vector, and the
        frontier is drained in FIFO or random order.  (A plain reordering
        of Fig. 5's single stack would silently discard unexplored deep
        branches whenever a shallow one is flipped; the worklist keeps the
        alternative orders sound and complete.)
        """
        session = _Session(self)
        try:
            if self.options.strategy == "dfs":
                return session.run_figure5()
            return session.run_generational()
        finally:
            session.stats.finish()

    def _machine(self, hooks, flags):
        machine_options = MachineOptions(
            max_steps=self.options.max_steps,
            transparent_memory=self.options.transparent_memory,
            memory=self.options.memory_options(),
        )
        return Machine(self.module, machine_options, hooks, flags)

    # -- replay -----------------------------------------------------------

    def replay(self, input_values):
        """Re-execute the program on a recorded input vector.

        Useful for confirming a reported error independently of the
        search.  Returns the fault raised, or None if the run completes.
        """
        im = InputVector()
        for ordinal, value in enumerate(input_values):
            im.record(ordinal, "int", value)

        class _ReplayHooks(DirectedHooks):
            def acquire_input(self, kind):
                ordinal = self._next_ordinal
                self._next_ordinal += 1
                if ordinal < len(self.im):
                    return self.im[ordinal].value, None
                return 0, None

            def on_branch(self, taken, constraint, location):
                pass

        hooks = _ReplayHooks(
            im, [], CompletenessFlags(), random.Random(0), self.options
        )
        machine = self._machine(hooks, CompletenessFlags())
        try:
            machine.run(DRIVER_ENTRY)
        except ExecutionFault as fault:
            return fault
        return None




class _BudgetReached(Exception):
    """Internal control flow: iteration or time budget exhausted."""


class _Pending:
    """A worklist item of the generational search."""

    __slots__ = ("stack", "im", "bound")

    def __init__(self, stack, im, bound):
        self.stack = stack
        self.im = im
        #: First branch index this item is allowed to expand (its parent
        #: already enumerated everything shallower).
        self.bound = bound


class _Session:
    """One run() invocation's mutable state, shared by both engines."""

    def __init__(self, dart):
        self.dart = dart
        self.options = dart.options
        self.flags = CompletenessFlags()
        self.stats = RunStats()
        self.errors = []
        self._seen_error_keys = set()
        self.rng = random.Random(self.options.seed)
        self.status = EXHAUSTED
        self._deadline = None
        if self.options.time_limit is not None:
            self._deadline = time.perf_counter() + self.options.time_limit

    # -- shared plumbing ----------------------------------------------------

    def _check_budget(self):
        if self.stats.iterations >= self.options.max_iterations:
            raise _BudgetReached()
        if self._deadline is not None \
                and time.perf_counter() > self._deadline:
            raise _BudgetReached()

    def _execute(self, im, predicted_stack):
        """One instrumented run; returns (hooks, fault, mismatch)."""
        self.stats.iterations += 1
        hooks = DirectedHooks(
            im, predicted_stack, self.flags, self.rng, self.options
        )
        machine = self.dart._machine(hooks, self.flags)
        fault = None
        mismatch = False
        try:
            machine.run(DRIVER_ENTRY)
        except ForcingMismatch:
            mismatch = True
            self.stats.forcing_failures += 1
        except ExecutionFault as caught:
            fault = caught
        self.stats.branches_executed += machine.branches_executed
        self.stats.machine_steps += machine.steps
        self.stats.covered_branches |= machine.covered_branches
        if not mismatch:
            self.stats.note_path(hooks.record.path_key())
        return hooks, fault, mismatch

    def _record_error(self, fault, im, hooks):
        """Record a found bug; returns True when the session should stop."""
        self.status = BUG_FOUND
        key = (fault.kind, str(fault.location))
        if key not in self._seen_error_keys:
            self._seen_error_keys.add(key)
            self.errors.append(
                ErrorReport(fault, im.values(), self.stats.iterations,
                            hooks.record.path_key())
            )
        return self.options.stop_on_first_error

    def _result(self):
        return DartResult(
            self.status, self.errors, self.stats, self.flags.snapshot(),
            coverage=BranchCoverage(self.dart.module,
                                    self.stats.covered_branches),
        )

    def _finished_complete(self):
        if self.flags.complete:
            if not self.errors:
                self.status = COMPLETE
            return True
        return False

    # -- engine 1: the paper's Figs. 2 + 5 ------------------------------------

    def run_figure5(self):
        state_file = self.options.state_file
        resumed = None
        if state_file is not None:
            resumed = persist.load_state(state_file)
        try:
            while True:  # the outer "repeat" — random restarts
                if resumed is not None:
                    predicted_stack, im = resumed
                    resumed = None
                else:
                    im = InputVector()
                    predicted_stack = []
                search_finished = False
                while True:  # the inner "while (directed)"
                    self._check_budget()
                    hooks, fault, mismatch = self._execute(
                        im, predicted_stack
                    )
                    if mismatch:
                        # §2.3: restart with a fresh random input vector.
                        self.flags.forcing_ok = True
                        break
                    if fault is not None and self._record_error(
                        fault, im, hooks
                    ):
                        return self._result()
                    plan = solve_path_constraint(
                        hooks.record, hooks.finished_stack(), im,
                        self.dart.solver, "dfs", self.rng, self.flags,
                        self.stats,
                    )
                    if plan is None:
                        search_finished = True
                        break
                    im = plan.im
                    predicted_stack = plan.stack
                    if state_file is not None:
                        # §2.3: the stack is "kept in a file between
                        # executions" — lets the search resume later.
                        persist.save_state(state_file, predicted_stack, im)
                # the "until all_linear and all_locs_definite" condition
                if search_finished and self._finished_complete():
                    if state_file is not None:
                        persist.clear_state(state_file)
                    return self._result()
                self.stats.random_restarts += 1
        except _BudgetReached:
            return self._result()

    # -- engine 2: generational worklist (footnote 4 done soundly) -----------

    def _pop(self, pending):
        if self.options.strategy == "bfs":
            return pending.pop(0)
        return pending.pop(self.rng.randrange(len(pending)))

    def run_generational(self):
        solver = self.dart.solver
        try:
            while True:  # random restarts, as in Fig. 2
                pending = [_Pending([], InputVector(), 0)]
                clean_drain = True
                while pending:
                    self._check_budget()
                    item = self._pop(pending)
                    hooks, fault, mismatch = self._execute(
                        item.im, item.stack
                    )
                    if mismatch:
                        # The invariant guarantees a completeness flag was
                        # already cleared; drop the stale item.
                        self.flags.forcing_ok = True
                        clean_drain = False
                        continue
                    if fault is not None and self._record_error(
                        fault, item.im, hooks
                    ):
                        return self._result()
                    stack = hooks.finished_stack()
                    constraints = hooks.record.constraints
                    domains = item.im.domains()
                    for j in range(item.bound, len(stack)):
                        conjunct = constraints[j]
                        if conjunct is None:
                            continue
                        prefix = [
                            c for c in constraints[:j] if c is not None
                        ]
                        prefix.append(conjunct.negate())
                        result = solver.solve(prefix, domains)
                        self.stats.solver_calls += 1
                        if result.is_sat:
                            self.stats.solver_sat += 1
                            child = [e.copy() for e in stack[: j + 1]]
                            child[j] = child[j].flipped()
                            pending.append(_Pending(
                                child, item.im.updated(result.model), j + 1
                            ))
                        elif result.status == "unknown":
                            self.stats.solver_unknown += 1
                            self.flags.clear_linear()
                        else:
                            self.stats.solver_unsat += 1
                if clean_drain and self._finished_complete():
                    return self._result()
                self.stats.random_restarts += 1
        except _BudgetReached:
            return self._result()


def dart_check(source, toplevel, options=None, **option_kwargs):
    """One-call DART: build the driver, run the search, return the result.

    Either pass a :class:`DartOptions` or keyword overrides, e.g.::

        result = dart_check(source, "h", depth=2, max_iterations=500)
    """
    if options is None:
        options = DartOptions(**option_kwargs)
    elif option_kwargs:
        raise ValueError("pass either options or keyword overrides, not both")
    return Dart(source, toplevel, options).run()
