"""``run_DART`` (Fig. 2): directed search wrapped in random restarts.

The outer loop restarts with a fresh random input vector; the inner loop
runs the instrumented program and asks ``solve_path_constraint`` for the
next input vector.  Any :class:`ExecutionFault` raised by the program is a
bug, reported with the concrete input vector that triggers it — Theorem
1(a)'s soundness comes for free because the fault occurred in a real
execution.  If a directed search finishes with both completeness flags
still set, all feasible program paths have been explored (Theorem 1(b)) and
the session reports ``complete``.  A forcing mismatch (the solver's
prediction diverged at runtime) aborts the directed search and falls back
to a random restart, as described at the end of Section 2.3.

Fault containment (see DESIGN.md, "Robustness & resumability"): the
paper's architecture re-executes the instrumented *process* per run, so a
crash loses at most one execution.  This in-process reproduction gets the
same containment from a fault boundary around each run — an internal
failure (``RecursionError``, ``MemoryError``, a watchdog ``RunTimeout``,
or any harness bug escaping the machine) quarantines the triggering input
vector, degrades the completeness claim, and the search continues.  With
``DartOptions(state_file=...)`` the session additionally checkpoints its
full state (worklist, RNG, statistics, errors) so a killed session
resumes instead of restarting.
"""

import contextlib
import hashlib
import random
import signal
import time
import traceback

from repro.dart import persist
from repro.dart.config import DartOptions
from repro.dart.coverage import BranchCoverage, is_program_branch
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.independence import coupling_classes
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import (
    BUG_FOUND,
    CHECKPOINT_CORRUPT,
    COMPLETE,
    EXHAUSTED,
    INTERNAL_ERROR,
    INTERRUPTED,
    RESOURCE_EXHAUSTED,
    RUN_TIMEOUT,
    DartResult,
    ErrorReport,
    PathWitness,
    QuarantineRecord,
    RunStats,
)
from repro.dart.solve import (
    expand_worklist_children,
    solve_path_constraint,
)
from repro.faults import points as fault_points
from repro.faults.points import FaultInjector
from repro.interp.faults import ExecutionFault, RestoredFault, RunTimeout
from repro.interp.compile import CompiledProgram
from repro.interp.machine import Machine, MachineOptions
from repro.obs import trace as tr
from repro.obs.profile import CACHE as CACHE_PHASE
from repro.obs.profile import CHECKPOINT, COMPILE, EXECUTE, SOLVE
from repro.obs.trace import JsonlTraceSink, RingBufferSink, TraceBus
from repro.solver import Solver, SolverResultCache
from repro.solver.cache import ENCODING_VERSION
from repro.symbolic.flags import CompletenessFlags


class Dart:
    """A DART session for one program and one toplevel function."""

    def __init__(self, source, toplevel, options=None, filename="<program>"):
        self.options = options or DartOptions()
        self.toplevel = toplevel
        #: Kept so the parallel engine can rebuild the module per worker.
        self.source = source
        self.filename = filename
        self.module = build_test_program(
            source, toplevel, depth=self.options.depth, filename=filename,
            max_init_depth=self.options.max_init_depth,
        )
        self.solver = Solver(
            seed=self.options.seed,
            node_budget=self.options.solver_node_budget,
        )
        #: Session-lifetime solver result cache (None when disabled).
        self.solver_cache = SolverResultCache() \
            if self.options.solver_cache else None
        #: The compiled execution engine (repro.interp.compile), shared by
        #: every machine this session creates — functions are lowered once
        #: and the closures are reused across runs.  None selects the
        #: tree-walking interpreter (``--no-compile`` ablation).
        self.compiled = CompiledProgram(self.module) \
            if self.options.compiled_execution else None
        #: Input coupling classes for the worklist-dedup eligibility
        #: gate (None — analysis latched or subsumption off — means no
        #: entry is ever deduped; the UNSAT-core tier is independent).
        self.independence = coupling_classes(
            source, toplevel, self.options.depth, filename=filename,
        ) if self.options.subsumption else None
        #: The structured trace bus (repro.obs.trace).  Disabled — and
        #: free — until run() attaches a sink (``trace_file``), or a
        #: caller attaches one programmatically before run().
        self.trace = TraceBus()
        if self.solver_cache is not None:
            self.solver_cache.trace = self.trace
        #: Identifies (program, toplevel, search configuration, constraint
        #: encoding) so a checkpoint written by a different session — or
        #: by the same session under an older constraint encoding, whose
        #: recorded ``done`` verdicts and models may be stale — is
        #: rejected and its branches re-solved.
        self.fingerprint = {
            "source": hashlib.sha256(source.encode()).hexdigest(),
            "toplevel": toplevel,
            "options": self.options.digest(),
            "encoding": ENCODING_VERSION,
        }

    # -- the paper's Fig. 2 -------------------------------------------------

    def run(self):
        """Execute the run_DART loop; returns a :class:`DartResult`.

        The default "dfs" strategy is the paper's Fig. 5 single-stack
        depth-first search.  The "bfs" and "random" strategies (footnote 4)
        use a *generational worklist* instead: after each run, every newly
        discovered flippable branch spawns a pending input vector, and the
        frontier is drained in FIFO or random order.  (A plain reordering
        of Fig. 5's single stack would silently discard unexplored deep
        branches whenever a shallow one is flipped; the worklist keeps the
        alternative orders sound and complete.)
        """
        jsonl = None
        if self.options.trace_file is not None:
            jsonl = self.trace.attach(JsonlTraceSink(self.options.trace_file))
        # Fault injection: install the options' plan unless a harness
        # (the chaos driver) already installed an injector — its probe
        # counters must survive across resumed sessions so each
        # scheduled fault fires exactly once per schedule.
        owned_injector = None
        if self.options.fault_plan and fault_points.ACTIVE is None:
            owned_injector = fault_points.install(
                FaultInjector(self.options.fault_plan))
        session = _Session(self)
        if self.trace.enabled:
            self.trace.emit(
                tr.SESSION_STARTED, toplevel=self.toplevel,
                strategy=self.options.strategy, seed=self.options.seed,
                depth=self.options.depth, jobs=self.options.jobs,
            )
        result = None
        try:
            with session.signal_guard():
                if self.options.strategy == "dfs":
                    # dfs is inherently sequential (each plan depends on
                    # the previous run's path): jobs is ignored.
                    result = session.run_figure5()
                elif self.options.jobs > 1:
                    # Imported lazily: multiprocessing machinery is only
                    # paid for by sessions that ask for it.
                    from repro.dart.parallel import (
                        run_parallel_generational,
                    )
                    result = run_parallel_generational(session)
                else:
                    result = session.run_generational()
            if self.options.export_suite is not None:
                # Export before the sinks detach, so the suite_exported
                # and artifact_deduped events reach the live trace and
                # the counters land in this session's stats.  An
                # interrupted or exhausted campaign exports what it
                # found — that is the point of doing it here.
                from repro.suite import export_suite
                export_suite(self, result, self.options.export_suite)
            return result
        finally:
            session.stats.finish()
            if self.trace.enabled:
                coverage = result.coverage if result is not None else None
                # Which engine ran the search: "dfs" (Fig. 5), "pool"
                # (the persistent worker pool) or "serial" (the
                # single-process worklist drain).  jobs stays out of the
                # checkpoint digest, so the trace is the only place a
                # run's parallelism is attributable after the fact.
                if self.options.strategy == "dfs":
                    engine = "dfs"
                elif self.options.jobs > 1:
                    engine = "pool"
                else:
                    engine = "serial"
                self.trace.emit(
                    tr.SESSION_FINISHED,
                    status=result.status if result is not None else "error",
                    engine=engine,
                    iterations=session.stats.iterations,
                    wall_s=round(session.stats.elapsed, 6),
                    **({"coverage": {
                        "covered_directions": coverage.covered_directions,
                        "total_directions": coverage.total_directions,
                        "percent": round(coverage.percent, 2),
                        "total_branches": coverage.total_branches,
                        "branches_both_arms": coverage.branches_both_arms,
                        "c1_percent": round(coverage.c1_percent, 2),
                    }} if coverage is not None else {}),
                )
                self.trace.flush()
            session.detach_sinks()
            if owned_injector is not None:
                fault_points.uninstall()
            elif fault_points.ACTIVE is not None:
                # A harness-owned injector outlives the session; drop the
                # references to this session's bus and stats.
                fault_points.ACTIVE.bind(None, None)
            if jsonl is not None:
                self.trace.detach(jsonl)
                jsonl.close()

    def _machine(self, hooks, flags, deadline=None, interrupt_check=None):
        machine_options = MachineOptions(
            max_steps=self.options.max_steps,
            transparent_memory=self.options.transparent_memory,
            memory=self.options.memory_options(),
            deadline=deadline,
            watchdog_interval=self.options.watchdog_interval,
            interrupt_check=interrupt_check,
            trace=self.trace,
        )
        return Machine(self.module, machine_options, hooks, flags,
                       compiled=self.compiled)

    # -- replay -----------------------------------------------------------

    def replay(self, inputs, kinds=None):
        """Re-execute the program on a recorded input vector.

        Useful for confirming a reported error independently of the
        search.  ``inputs`` is either an :class:`ErrorReport` (preferred —
        it carries the input kinds, so pointer-choice slots are rebuilt
        with the right domains) or a raw value list, optionally with an
        aligned ``kinds`` list.  Returns the fault raised, or None if the
        run completes.
        """
        if isinstance(inputs, ErrorReport):
            kinds = inputs.kinds
            inputs = inputs.inputs
        im = InputVector()
        for ordinal, value in enumerate(inputs):
            kind = kinds[ordinal] if kinds is not None \
                and ordinal < len(kinds) else "int"
            im.record(ordinal, kind, value)

        class _ReplayHooks(DirectedHooks):
            def acquire_input(self, kind):
                ordinal = self._next_ordinal
                self._next_ordinal += 1
                if ordinal < len(self.im):
                    return self.im[ordinal].value, None
                return 0, None

            def on_branch(self, taken, constraint, location):
                pass

        hooks = _ReplayHooks(
            im, [], CompletenessFlags(), random.Random(0), self.options
        )
        machine = self._machine(hooks, CompletenessFlags())
        try:
            machine.run(DRIVER_ENTRY)
        except ExecutionFault as fault:
            return fault
        return None




class _BudgetReached(Exception):
    """Internal control flow: iteration or time budget exhausted."""


class _RunInterrupted(Exception):
    """Internal control flow: a signal arrived mid-run; abandon the run."""


class _Pending:
    """A worklist item of the generational search."""

    __slots__ = ("stack", "im", "bound")

    def __init__(self, stack, im, bound):
        self.stack = stack
        self.im = im
        #: First branch index this item is allowed to expand (its parent
        #: already enumerated everything shallower).
        self.bound = bound


class _RunOutcome:
    """What one contained execution produced."""

    __slots__ = ("hooks", "fault", "mismatch", "quarantined")

    def __init__(self, hooks, fault=None, mismatch=False, quarantined=False):
        self.hooks = hooks
        self.fault = fault
        self.mismatch = mismatch
        self.quarantined = quarantined


class _Session:
    """One run() invocation's mutable state, shared by both engines."""

    def __init__(self, dart):
        self.dart = dart
        self.options = dart.options
        self.cache = dart.solver_cache
        self.trace = dart.trace
        #: Flight recorder: with tracing active, the last ``trace_ring``
        #: events, snapshotted into quarantine records.  Attached only
        #: when another sink already enabled the bus, so the ring alone
        #: never turns tracing on.
        self.ring = None
        if self.trace.enabled and self.options.trace_ring:
            self.ring = self.trace.attach(
                RingBufferSink(self.options.trace_ring))
        self.flags = CompletenessFlags()
        self.flags.trace = self.trace
        self.stats = RunStats()
        self.stats.phases.enabled = self.options.profile_phases
        #: compile_seconds high-water mark already attributed to the
        #: compile phase (the compiled program outlives the session).
        self._compile_seconds_seen = (
            dart.compiled.compile_seconds if dart.compiled is not None
            else 0.0
        )
        if fault_points.ACTIVE is not None:
            # Injected faults count into this session's statistics and
            # trace stream (a harness-owned injector is re-bound per
            # resumed session).
            fault_points.ACTIVE.bind(self.trace, self.stats)
        self.errors = []
        self._seen_error_keys = set()
        #: PathWitness list: distinct (path, error-class) executions,
        #: retained when witness collection is on (collect_witnesses or
        #: an export_suite destination) — the exporter's raw material.
        self.witnesses = []
        self._witnessed = set()
        self._collect_witnesses = (
            self.options.collect_witnesses
            or self.options.export_suite is not None
        )
        self.rng = random.Random(self.options.seed)
        self.status = EXHAUSTED
        self.resumed = False
        self._deadline = None
        if self.options.time_limit is not None:
            self._deadline = time.perf_counter() + self.options.time_limit
        self._interrupted = False
        #: True when the session exited through the truncation path
        #: (budget / deadline / signal): the search is unfinished and a
        #: checkpoint was saved.
        self._truncated = False
        self._engine = "dfs" if self.options.strategy == "dfs" \
            else "generational"
        #: dfs: the (stack, im) plan the next run will execute.
        self._dfs_plan = ([], InputVector())
        #: generational: the live worklist (mutated in place).
        self._worklist = []
        self._clean_drain = True
        #: generational: (fingerprint, error salt) keys of every child
        #: enqueued this drain — the worklist-dedup seen set (reset on
        #: random restart, checkpointed so a resume keeps deduping).
        self._dedup_seen = set()

    # -- graceful interruption ----------------------------------------------

    @contextlib.contextmanager
    def signal_guard(self):
        """Install SIGINT/SIGTERM handlers for the session's duration.

        A caught signal sets a flag that the budget check (between runs)
        and the machine watchdog (mid-run, amortized) both observe: the
        session checkpoints and returns a partial ``interrupted`` result
        instead of dying with a traceback.  Only active when the options
        ask for it, and silently skipped off the main thread (where
        ``signal.signal`` is unavailable).
        """
        if not self.options.handle_signals:
            yield
            return
        previous = {}

        def _handler(signum, frame):
            self._interrupted = True

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except ValueError:  # not the main thread
                break
        try:
            yield
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _interrupt_probe(self):
        """Called by the machine watchdog; aborts the run on a signal."""
        if self._interrupted:
            raise _RunInterrupted()

    def detach_sinks(self):
        """Drop the session's ring sink from the shared bus (run() end)."""
        if self.ring is not None:
            self.trace.detach(self.ring)
            self.ring = None

    # -- shared plumbing ----------------------------------------------------

    def _check_budget(self):
        if self._interrupted:
            raise _BudgetReached()
        if self.stats.iterations >= self.options.max_iterations:
            raise _BudgetReached()
        if self._deadline is not None \
                and time.perf_counter() > self._deadline:
            raise _BudgetReached()

    def _run_deadline(self):
        """The wall-clock deadline for the next run, or None.

        The tighter of the per-run limit and the session deadline — so a
        single pathological run can no longer blow past ``time_limit``;
        the watchdog trips at most one check interval late.
        """
        deadline = None
        if self.options.run_time_limit is not None:
            deadline = time.perf_counter() + self.options.run_time_limit
        if self._deadline is not None \
                and (deadline is None or self._deadline < deadline):
            deadline = self._deadline
        return deadline

    def _execute(self, im, predicted_stack):
        """One instrumented run inside the fault boundary.

        Program faults (:class:`ExecutionFault`) are *results* — real
        bugs found by a real execution.  Everything else escaping the
        machine is an internal failure: it is classified, the input
        vector is quarantined, the completeness claim is degraded, and
        the search continues — one bad run costs one iteration, not the
        session.  Signals (KeyboardInterrupt, SystemExit) still
        propagate.
        """
        self.stats.iterations += 1
        planned = bool(predicted_stack)
        # The execute window covers per-run setup (hooks, machine) as
        # well as the run itself: both are per-execution costs.
        started = time.perf_counter()
        hooks = DirectedHooks(
            im, predicted_stack, self.flags, self.rng, self.options
        )
        machine = self.dart._machine(
            hooks, self.flags, deadline=self._run_deadline(),
            interrupt_check=self._interrupt_probe
            if self.options.handle_signals else None,
        )
        trace = self.trace
        if trace.enabled:
            trace.emit(tr.RUN_STARTED, iteration=self.stats.iterations,
                       planned=planned)
        outcome = _RunOutcome(hooks)
        try:
            machine.run(DRIVER_ENTRY)
        except ForcingMismatch:
            outcome.mismatch = True
            self.stats.forcing_failures += 1
            if trace.enabled:
                trace.emit(tr.FORCING_MISMATCH,
                           iteration=self.stats.iterations)
        except ExecutionFault as caught:
            outcome.fault = caught
        except _RunInterrupted:
            # A signal arrived mid-run: abandon the partial run quietly;
            # the budget check right after will checkpoint and return.
            outcome.quarantined = True
        except RunTimeout as caught:
            outcome.quarantined = True
            self._quarantine(RUN_TIMEOUT, im, caught)
        except (RecursionError, MemoryError) as caught:
            outcome.quarantined = True
            self._quarantine(RESOURCE_EXHAUSTED, im, caught)
        except Exception as caught:  # noqa: BLE001 — the fault boundary
            outcome.quarantined = True
            self._quarantine(INTERNAL_ERROR, im, caught)
        self.stats.branches_executed += machine.branches_executed
        self.stats.instructions_executed += machine.steps
        self.stats.instructions_symbolic += machine.symbolic_steps
        self.stats.conjuncts_widened += machine.widener.widened
        self.stats.conjuncts_dropped_unfaithful += machine.widener.dropped
        self.stats.covered_branches |= machine.covered_branches
        new_path = False
        if not outcome.mismatch and not outcome.quarantined:
            new_path = self.stats.note_path(hooks.record.path_key())
            self.stats.path_length.observe(machine.branches_executed)
            if planned:
                # The predicted prefix was reached and the run finished:
                # the flip was successfully forced (funnel stage 3).
                self.stats.runs_forced += 1
            if self._collect_witnesses:
                self._witness(im, hooks, machine, outcome.fault)
        wall = time.perf_counter() - started
        # IR lowering happens lazily inside the run window (first call of
        # each function); carve it out of execute so both the phase
        # profile and the trace attribute compilation honestly.
        compiled = self.dart.compiled
        compile_delta = 0.0
        if compiled is not None:
            compile_delta = \
                compiled.compile_seconds - self._compile_seconds_seen
            self._compile_seconds_seen = compiled.compile_seconds
            if compile_delta > 0.0:
                wall = max(wall - compile_delta, 0.0)
                if trace.enabled:
                    trace.emit(tr.COMPILE, wall_s=round(compile_delta, 6),
                               functions=compiled.functions_compiled)
        if self.stats.phases.enabled:
            if compile_delta > 0.0:
                self.stats.phases.add(COMPILE, compile_delta)
            self.stats.phases.add(EXECUTE, wall)
        if trace.enabled:
            if outcome.mismatch:
                status = "mismatch"
            elif outcome.quarantined:
                status = "quarantined"
            elif outcome.fault is not None:
                status = "fault"
            else:
                status = "ok"
            trace.emit(
                tr.RUN_FINISHED, iteration=self.stats.iterations,
                status=status, planned=planned, new_path=new_path,
                wall_s=round(wall, 6), steps=machine.steps,
                branches=machine.branches_executed,
            )
        return outcome

    def _witness(self, im, hooks, machine, fault):
        """Retain this run for suite export if it is worth keeping.

        Keyed by (path signature, error class): the first run of every
        distinct path is kept, and an *error* run is kept even when its
        branch path was already seen ok (a division fault and the clean
        run share the same branch bits — the error class tells them
        apart).  Only program-function coverage is stored; driver
        scaffolding is not part of the replay contract.
        """
        error = None
        if fault is not None:
            error = {
                "kind": fault.kind,
                "message": getattr(fault, "message", str(fault)),
                "location": str(fault.location)
                if fault.location is not None else None,
            }
        path_key = hooks.record.path_key()
        error_key = (error["kind"], str(error["location"])) \
            if error is not None else None
        witness_key = (path_key, error_key)
        if witness_key in self._witnessed:
            return
        self._witnessed.add(witness_key)
        self.witnesses.append(PathWitness(
            im.values(), [slot.kind for slot in im], path_key,
            {entry for entry in machine.covered_branches
             if is_program_branch(entry)},
            error=error, iteration=self.stats.iterations,
        ))
        self.stats.witnesses_recorded += 1

    def _quarantine(self, classification, im, exc):
        """Contain an internal failure: record it and degrade honestly.

        Mirroring the paper's ``forcing_ok`` degradation, the ``all
        linear`` completeness flag is cleared — a path this session could
        not finish executing is a path it cannot claim to have covered,
        so Theorem 1(b) verdicts stay sound.
        """
        self.flags.clear_linear()
        detail = "{}: {}".format(type(exc).__name__, exc)
        tb = traceback.extract_tb(exc.__traceback__)
        if tb:
            frame = tb[-1]
            detail += " [{}:{} in {}]".format(
                frame.filename.rsplit("/", 1)[-1], frame.lineno, frame.name
            )
        trace_tail = self.ring.tail() if self.ring is not None else None
        self.stats.quarantined.append(QuarantineRecord(
            classification, im.values(), [slot.kind for slot in im],
            self.stats.iterations, detail, trace_tail=trace_tail,
        ))
        if self.trace.enabled:
            self.trace.emit(tr.QUARANTINE, classification=classification,
                            iteration=self.stats.iterations, detail=detail)

    def _plan(self, func, *args, **kwargs):
        """Run one planning call (candidate loop) with phase attribution.

        The whole call — slicing, query building, cache, solver — is one
        ``plan`` trace event; for the phase timer its wall minus the
        cache sections recorded inside goes to ``solve``, keeping the
        phases disjoint.
        """
        phases = self.stats.phases
        trace = self.trace
        timed = phases.enabled or trace.enabled
        if not timed:
            return func(*args, **kwargs)
        cache_before = phases.seconds.get(CACHE_PHASE, 0.0)
        started = time.perf_counter()
        result = func(*args, **kwargs)
        wall = time.perf_counter() - started
        if phases.enabled:
            cache_delta = phases.seconds.get(CACHE_PHASE, 0.0) - cache_before
            phases.add(SOLVE, max(wall - cache_delta, 0.0))
        if trace.enabled:
            trace.emit(tr.PLAN, iteration=self.stats.iterations,
                       wall_s=round(wall, 6))
        return result

    def _record_error(self, fault, im, hooks):
        """Record a found bug; returns True when the session should stop."""
        self.status = BUG_FOUND
        key = (fault.kind, str(fault.location))
        if key not in self._seen_error_keys:
            self._seen_error_keys.add(key)
            self.errors.append(
                ErrorReport(fault, im.values(), self.stats.iterations,
                            hooks.record.path_key(),
                            kinds=[slot.kind for slot in im])
            )
        return self.options.stop_on_first_error

    def _result(self):
        # A signal that truncated the search wins over a sticky
        # BUG_FOUND from an earlier error: the session is unfinished and
        # resumable, and callers (the CLI's exit 130, the chaos
        # harness's resume loop) must be able to tell.  A signal that
        # arrived but did *not* cut the search short (the stop-on-first
        # early return, a clean drain) changes nothing.
        if self._interrupted and (self._truncated
                                  or self.status == EXHAUSTED):
            self.status = INTERRUPTED
        coverage = BranchCoverage(self.dart.module,
                                  self.stats.covered_branches)
        # Surface the rollup through the stats summary too, so JSON
        # reports built from RunStats alone carry the C1 numbers.
        self.stats.coverage = coverage.to_dict()
        return DartResult(
            self.status, self.errors, self.stats, self.flags.snapshot(),
            coverage=coverage,
            resumed=self.resumed,
            witnesses=self.witnesses,
        )

    def _finished_complete(self):
        if self.flags.complete:
            if not self.errors:
                self.status = COMPLETE
            return True
        return False

    # -- checkpointing -------------------------------------------------------

    def _make_checkpoint(self):
        checkpoint = persist.SessionCheckpoint(
            fingerprint=self.dart.fingerprint,
            engine=self._engine,
            rng_state=self.rng.getstate(),
            flags=self.flags.snapshot(),
            counters={name: getattr(self.stats, name)
                      for name in RunStats.COUNTERS},
            distinct_paths=sorted(self.stats.distinct_paths),
            covered_branches=sorted(self.stats.covered_branches),
            errors=[error.to_dict() for error in self.errors],
            quarantined=[record.to_dict()
                         for record in self.stats.quarantined],
            clean_drain=self._clean_drain,
            witnesses=[witness.to_dict() for witness in self.witnesses],
        )
        if self._engine == "dfs":
            checkpoint.dfs_pending = self._dfs_plan
        else:
            checkpoint.worklist = [
                (item.stack, item.im, item.bound) for item in self._worklist
            ]
            checkpoint.dedup_seen = sorted(self._dedup_seen, key=repr)
        return checkpoint

    def _save_checkpoint(self):
        if self.options.state_file is None:
            return
        started = time.perf_counter()
        try:
            persist.save_checkpoint(self.options.state_file,
                                    self._make_checkpoint())
        except OSError as exc:
            # A failed write (ENOSPC, permissions, torn disk) costs
            # durability, never the session: the previous checkpoint —
            # if any — is still intact on disk (the write is atomic),
            # the search continues, and the failure is counted and
            # traced so it cannot pass silently.
            self.stats.checkpoint_failures += 1
            if self.trace.enabled:
                self.trace.emit(tr.CHECKPOINT_FAILED,
                                iteration=self.stats.iterations,
                                error=type(exc).__name__,
                                detail=str(exc)[:200])
            return
        wall = time.perf_counter() - started
        if self.stats.phases.enabled:
            self.stats.phases.add(CHECKPOINT, wall)
        if self.trace.enabled:
            self.trace.emit(tr.CHECKPOINT,
                            iteration=self.stats.iterations,
                            wall_s=round(wall, 6))

    def _autosave(self):
        """Periodic checkpoint at the between-runs boundary.

        Called at the top of each engine's run loop, where the session
        state (worklist, RNG, counters) is consistent: the checkpoint
        describes exactly "N runs done, these remain".
        """
        injector = fault_points.ACTIVE
        if injector is not None:
            # Fault seam: deliver a real SIGINT at the between-runs
            # boundary — the signal guard must turn it into a clean
            # checkpoint-and-return, never a traceback.
            injector.between_runs()
        every = self.options.checkpoint_every
        if self.options.state_file is None or not every:
            return
        if self.stats.iterations and self.stats.iterations % every == 0:
            self._save_checkpoint()

    def _restore(self, checkpoint):
        """Adopt a validated checkpoint's state; returns the work to do."""
        self.rng.setstate(checkpoint.rng_state)
        (self.flags.all_linear, self.flags.all_locs_definite,
         self.flags.forcing_ok) = checkpoint.flags[:3]
        # Checkpoints written before the widening layer carry the flag
        # triple; all_faithful then stays at its True reset value (their
        # fingerprint predates the "encoding" field, so in practice they
        # are rejected upstream anyway).
        if len(checkpoint.flags) > 3:
            self.flags.all_faithful = checkpoint.flags[3]
        for name in RunStats.COUNTERS:
            setattr(self.stats, name, checkpoint.counters.get(name, 0))
        self.stats.distinct_paths = {
            tuple(path) for path in checkpoint.distinct_paths
        }
        self.stats.covered_branches = set(checkpoint.covered_branches)
        self.stats.quarantined = [
            QuarantineRecord.from_dict(payload)
            for payload in checkpoint.quarantined
        ]
        for payload in checkpoint.errors:
            fault = RestoredFault(payload["kind"], payload["message"],
                                  payload["location"])
            self._seen_error_keys.add((fault.kind, str(fault.location)))
            self.errors.append(ErrorReport(
                fault, payload["inputs"], payload["iteration"],
                tuple(payload["path"]) if payload["path"] is not None
                else None,
                kinds=payload["kinds"],
            ))
        if self.errors:
            self.status = BUG_FOUND
        for payload in checkpoint.witnesses:
            witness = PathWitness.from_dict(payload)
            self._witnessed.add((witness.path, witness.error_key))
            self.witnesses.append(witness)
        self.resumed = True
        self._clean_drain = checkpoint.clean_drain
        self._dedup_seen = set(checkpoint.dedup_seen)

    def _resume(self):
        """Load this session's checkpoint, if a valid one exists.

        A missing, version-mismatched or — most importantly —
        *fingerprint*-mismatched checkpoint (different program, toplevel
        or search configuration) yields None and the search starts
        cleanly from scratch, never silently replaying stale state.

        A **corrupt** checkpoint (the file exists but is torn, bit-rotted
        or structurally broken) also reseeds cleanly, but not silently:
        prior search state was *lost*, so the session records a
        quarantine-style ``checkpoint-corrupt`` entry and degrades its
        completeness claim — a reseeded session cannot know what the
        lost state had already covered, so it must never report
        ``complete``.
        """
        path = self.options.state_file
        if path is None:
            return None
        checkpoint, reason = persist.load_checkpoint_ex(
            path, self.dart.fingerprint)
        if checkpoint is not None and checkpoint.engine == self._engine:
            self._restore(checkpoint)
            return checkpoint
        if reason == "corrupt":
            self._reject_checkpoint(path)
            return None
        if checkpoint is not None:
            # Valid checkpoint for the other engine: legitimate mismatch,
            # restart cleanly without touching it further.
            return None
        if self._engine == "dfs":
            # Compatibility: a v1 (stack, im) file — the paper's literal
            # "stack kept in a file" — still seeds the directed search.
            legacy = persist.load_state(path)
            if legacy is not None:
                checkpoint = persist.SessionCheckpoint(
                    fingerprint=self.dart.fingerprint, engine="dfs",
                    rng_state=self.rng.getstate(),
                    flags=self.flags.snapshot(), counters={},
                    distinct_paths=[], covered_branches=[], errors=[],
                    quarantined=[], dfs_pending=legacy,
                )
                self.resumed = True
                return checkpoint
        return None

    def _reject_checkpoint(self, path):
        """Contain a corrupt checkpoint: count, record, degrade, reseed.

        Mirrors :meth:`_quarantine` for state loss instead of run loss:
        the session continues from scratch, but the lost coverage makes
        any completeness claim unsound, so ``all_linear`` is cleared and
        a ``checkpoint-corrupt`` record preserves the evidence.
        """
        self.stats.checkpoints_rejected += 1
        self.flags.clear_linear()
        detail = ("checkpoint {} failed validation (torn, bit-rotted or "
                  "structurally broken); reseeding from scratch".format(path))
        trace_tail = self.ring.tail() if self.ring is not None else None
        self.stats.quarantined.append(QuarantineRecord(
            CHECKPOINT_CORRUPT, [], [], self.stats.iterations, detail,
            trace_tail=trace_tail,
        ))
        if self.trace.enabled:
            self.trace.emit(tr.CHECKPOINT_REJECTED, detail=detail)

    def _clear_checkpoint(self):
        if self.options.state_file is not None:
            persist.clear_state(self.options.state_file)

    # -- engine 1: the paper's Figs. 2 + 5 ------------------------------------

    def run_figure5(self):
        checkpoint = self._resume()
        resumed = checkpoint.dfs_pending if checkpoint is not None else None
        try:
            while True:  # the outer "repeat" — random restarts
                if resumed is not None:
                    predicted_stack, im = resumed
                    resumed = None
                else:
                    im = InputVector()
                    predicted_stack = []
                search_finished = False
                while True:  # the inner "while (directed)"
                    self._dfs_plan = (predicted_stack, im)
                    self._autosave()
                    self._check_budget()
                    outcome = self._execute(im, predicted_stack)
                    if outcome.mismatch:
                        # §2.3: restart with a fresh random input vector.
                        self.flags.forcing_ok = True
                        break
                    if outcome.quarantined:
                        # The run died inside the fault boundary; its path
                        # record cannot be trusted, so fall back to a
                        # random restart — the one-run cost of the fault.
                        break
                    if outcome.fault is not None and self._record_error(
                        outcome.fault, im, outcome.hooks
                    ):
                        self._clear_checkpoint()
                        return self._result()
                    plan = self._plan(
                        solve_path_constraint,
                        outcome.hooks.record, outcome.hooks.finished_stack(),
                        im, self.dart.solver, "dfs", self.rng, self.flags,
                        self.stats, escalation=self.options.solver_escalation,
                        cache=self.cache,
                        slicing=self.options.constraint_slicing,
                        trace=self.trace,
                        subsume=self.options.subsumption,
                    )
                    if plan is None:
                        search_finished = True
                        break
                    im = plan.im
                    predicted_stack = plan.stack
                # the "until all_linear and all_locs_definite" condition
                if search_finished and self._finished_complete():
                    self._clear_checkpoint()
                    return self._result()
                self.stats.random_restarts += 1
        except _BudgetReached:
            # §2.3: the stack is "kept in a file between executions" —
            # checkpoint the pending plan so the search resumes later.
            self._truncated = True
            self._save_checkpoint()
            return self._result()

    # -- engine 2: generational worklist (footnote 4 done soundly) -----------

    def _pop(self, pending):
        if self.options.strategy == "bfs":
            return pending.pop(0)
        return pending.pop(self.rng.randrange(len(pending)))

    def _admit_children(self, children, salt):
        """Insert-time worklist dedup (the subsumption layer's half two).

        Yields the ``(stack, im, bound)`` of every child to enqueue and
        drops the rest: a child is dropped when an entry with the same
        future fingerprint *and* the same recorded-error salt was
        already enqueued this drain — entries differing in recorded
        errors are never deduped (``salt`` is the parent run's error
        key, or None).  Dedup only fires while the session is fully
        modeled (every completeness flag intact): after any degradation
        a fingerprint can no longer claim two futures equivalent, so
        everything is admitted.  Dropped children are counted
        (``worklist_deduped``) and traced (``worklist_dedup``).
        """
        flags = self.flags
        dedup_ok = (flags.all_linear and flags.all_faithful
                    and flags.all_locs_definite)
        seen = self._dedup_seen
        for stack, im, bound, fp in children:
            if fp is not None and dedup_ok:
                key = (fp, salt)
                if key in seen:
                    self.stats.worklist_deduped += 1
                    if self.trace.enabled:
                        self.trace.emit(tr.WORKLIST_DEDUP, bound=bound)
                    continue
                seen.add(key)
            yield stack, im, bound

    def run_generational(self):
        solver = self.dart.solver
        escalation = self.options.solver_escalation
        checkpoint = self._resume()
        pending = None
        if checkpoint is not None and checkpoint.worklist is not None:
            pending = [
                _Pending(stack, im, bound)
                for stack, im, bound in checkpoint.worklist
            ]
        try:
            while True:  # random restarts, as in Fig. 2
                if pending is None:
                    pending = [_Pending([], InputVector(), 0)]
                    self._clean_drain = True
                    self._dedup_seen = set()
                self._worklist = pending
                self.stats.worklist_depth.set(len(pending))
                while pending:
                    self._autosave()
                    self._check_budget()
                    item = self._pop(pending)
                    # Live gauge update on every pop and push (below), so
                    # the depth — and its peak — stays honest for serial
                    # sessions, matching the parallel engine.
                    self.stats.worklist_depth.set(len(pending))
                    outcome = self._execute(item.im, item.stack)
                    if outcome.mismatch:
                        # The invariant guarantees a completeness flag was
                        # already cleared; drop the stale item.
                        self.flags.forcing_ok = True
                        self._clean_drain = False
                        continue
                    if outcome.quarantined:
                        # Contained failure: this item is lost (one run's
                        # worth of work), the rest of the frontier lives.
                        self._clean_drain = False
                        continue
                    if outcome.fault is not None and self._record_error(
                        outcome.fault, item.im, outcome.hooks
                    ):
                        self._clear_checkpoint()
                        return self._result()
                    children = self._plan(
                        expand_worklist_children,
                        outcome.hooks.finished_stack(),
                        outcome.hooks.record.constraints,
                        item.im, item.bound, solver, self.flags,
                        self.stats, escalation, cache=self.cache,
                        slicing=self.options.constraint_slicing,
                        trace=self.trace,
                        subsume=self.options.subsumption,
                        independence=self.dart.independence,
                    )
                    salt = (outcome.fault.kind, str(outcome.fault.location)) \
                        if outcome.fault is not None else None
                    pending.extend(
                        _Pending(stack, im, bound)
                        for stack, im, bound
                        in self._admit_children(children, salt)
                    )
                    self.stats.worklist_depth.set(len(pending))
                if self._clean_drain and self._finished_complete():
                    self._clear_checkpoint()
                    return self._result()
                self.stats.random_restarts += 1
                pending = None
        except _BudgetReached:
            self._truncated = True
            self._save_checkpoint()
            return self._result()


def dart_check(source, toplevel, options=None, **option_kwargs):
    """One-call DART: build the driver, run the search, return the result.

    Either pass a :class:`DartOptions` or keyword overrides, e.g.::

        result = dart_check(source, "h", depth=2, max_iterations=500)
    """
    if options is None:
        options = DartOptions(**option_kwargs)
    elif option_kwargs:
        raise ValueError("pass either options or keyword overrides, not both")
    return Dart(source, toplevel, options).run()
