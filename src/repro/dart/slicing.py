"""Constraint independence slicing (variable-sharing groups, union-find).

``solve_path_constraint`` (Fig. 5) hands the solver the *entire*
path-constraint prefix for every candidate branch flip, but most conjuncts
share no variables with the negated one: a path through k independent
conditionals yields solver queries that are k times larger than necessary.
This module partitions a prefix into variable-sharing groups with a
union-find and extracts only the group touching the negated conjunct.

**Soundness.** The run's current input vector ``IM`` satisfies the whole
prefix — the program just executed that path under it.  The sliced query
mentions exactly the variables of the negated conjunct's group, so the
solver's model reassigns only those; the ``IM + IM'`` merge (Fig. 5)
preserves every other slot, which keeps every untouched group satisfied by
the very values that already satisfied it.  The concatenation (untouched
groups under ``IM``) ∧ (sliced group under ``IM'``) therefore satisfies the
full predicted path constraint.  Slicing can change *which* model the
solver picks (it no longer re-solves independent groups), so it is part of
the options digest — but never whether a branch is feasible: a group is
satisfiable in isolation iff it is satisfiable conjoined with other
satisfiable groups over disjoint variables.

Completeness is likewise unaffected: UNSAT of the sliced group implies
UNSAT of any superset, so ``done`` marking stays correct.
"""


class UnionFind:
    """Plain union-find with path halving (no ranks; unions are few)."""

    __slots__ = ("parent",)

    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent
        root = parent.setdefault(item, item)
        while root != parent[root]:
            parent[root] = parent[parent[root]]
            root = parent[root]
        if item != root:
            parent[item] = root
        return root

    def union(self, a, b):
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a


class ConstraintSlicer:
    """Slices prefixes of one run's constraint list into variable groups.

    Built once per completed run from the aligned constraint list
    (``None`` entries are concrete-fallback branches and never join any
    group).  ``slice(j, negated)`` returns the conjuncts of
    ``constraints[:j]`` in the variable-sharing group of ``negated``, plus
    ``negated`` itself, in prefix order.

    The union-find is grown incrementally while candidate indices ascend
    (the generational engines); a descending candidate (dfs) rebuilds it,
    which is still O(prefix) per candidate — the cost the unsliced query
    construction paid anyway, and noise next to a solver call.
    """

    def __init__(self, constraints):
        self._constraints = constraints
        # Variable tuples, computed once per run (satellite of the same
        # hoisting that moved im.domains() out of the candidate loop).
        self._vars = [
            tuple(c.variables()) if c is not None else ()
            for c in constraints
        ]
        self._uf = UnionFind()
        self._processed = 0

    def _advance(self, j):
        """Ensure all constraints[:j] have been unioned (monotone)."""
        if j < self._processed:
            self._uf = UnionFind()
            self._processed = 0
        uf = self._uf
        for i in range(self._processed, j):
            variables = self._vars[i]
            if variables:
                first = variables[0]
                uf.find(first)
                for var in variables[1:]:
                    uf.union(first, var)
        self._processed = j

    def slice(self, j, negated):
        """The sliced solver query for flipping conditional ``j``."""
        self._advance(j)
        uf = self._uf
        # The negated conjunct may span several prefix groups; flipping it
        # links them, so every one of its variables' roots is in scope.
        roots = {uf.find(var) for var in negated.variables()}
        query = []
        if roots:
            vars_by_index = self._vars
            constraints = self._constraints
            for i in range(j):
                variables = vars_by_index[i]
                if variables and uf.find(variables[0]) in roots:
                    query.append(constraints[i])
        query.append(negated)
        return query
