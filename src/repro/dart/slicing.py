"""Constraint independence slicing (variable-sharing groups, union-find).

``solve_path_constraint`` (Fig. 5) hands the solver the *entire*
path-constraint prefix for every candidate branch flip, but most conjuncts
share no variables with the negated one: a path through k independent
conditionals yields solver queries that are k times larger than necessary.
This module partitions a prefix into variable-sharing groups with a
union-find and extracts only the group touching the negated conjunct.

**Soundness.** The untouched-group argument: the sliced query mentions
exactly the variables of the negated conjunct's group, so the solver's
model reassigns only those; the ``IM + IM'`` merge (Fig. 5) preserves
every other slot, which keeps every untouched group satisfied by the very
values that already satisfied it.  The concatenation (untouched groups
under ``IM``) ∧ (sliced group under ``IM'``) therefore satisfies the full
predicted path constraint.  Slicing can change *which* model the solver
picks (it no longer re-solves independent groups), so it is part of the
options digest — but never whether a branch is feasible: a group is
satisfiable in isolation iff it is satisfiable conjoined with other
satisfiable groups over disjoint variables.

That argument leans on a premise the recording layer now enforces: the
run's input vector ``IM`` satisfies every recorded prefix conjunct.  It
holds trivially for ideal-integer conjuncts the run executed under, and
the machine-integer widening layer (:mod:`repro.symbolic.widen`) keeps it
for wrap-/unsigned-affected comparisons by rewriting them through
run-anchored wrap quotients instead of recording a conjunct that is
*false of its own run* (the hole differential fuzzing surfaced — see
``tests/corpus/seed*.json``: leaving such a conjunct out of the sliced
query produced "next input" plans that violated the very prefix they
claimed to satisfy).  The faithfulness barrier below is therefore a
**fallback-only** safety net: it re-checks every prefix conjunct against
the run's assignment and force-includes the groups of any that still
fail — which, with widening in place, is the empty set unless the
widener itself had to drop a conjunct (``all_faithful`` cleared) or an
invariant was violated.  The net stays because its cost is one evaluate
per conjunct and it converts a potential unsound plan into an explicit,
solvable obligation.

Completeness is likewise unaffected: UNSAT of the sliced group implies
UNSAT of any superset, so ``done`` marking stays correct.
"""


class UnionFind:
    """Plain union-find with path halving (no ranks; unions are few)."""

    __slots__ = ("parent",)

    def __init__(self):
        self.parent = {}

    def find(self, item):
        parent = self.parent
        root = parent.setdefault(item, item)
        while root != parent[root]:
            parent[root] = parent[parent[root]]
            root = parent[root]
        if item != root:
            parent[item] = root
        return root

    def union(self, a, b):
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a != root_b:
            self.parent[root_b] = root_a


class ConstraintSlicer:
    """Slices prefixes of one run's constraint list into variable groups.

    Built once per completed run from the aligned constraint list
    (``None`` entries are concrete-fallback branches and never join any
    group).  ``slice(j, negated)`` returns the conjuncts of
    ``constraints[:j]`` in the variable-sharing group of ``negated``, plus
    ``negated`` itself, in prefix order.

    The union-find is grown incrementally while candidate indices ascend
    (the generational engines); a descending candidate (dfs) rebuilds it,
    which is still O(prefix) per candidate — the cost the unsliced query
    construction paid anyway, and noise next to a solver call.
    """

    def __init__(self, constraints, assignment=None):
        self._constraints = constraints
        # Variable tuples, computed once per run (satellite of the same
        # hoisting that moved im.domains() out of the candidate loop).
        self._vars = [
            tuple(c.variables()) if c is not None else ()
            for c in constraints
        ]
        self._uf = UnionFind()
        self._processed = 0
        #: Prefix positions whose conjunct the run's own inputs do NOT
        #: satisfy.  Widening keeps this empty in practice (see the
        #: module docstring); any stragglers — a dropped conjunct's
        #: neighbors after an invariant violation — still join every
        #: sliced query as the last line of defense.
        self._unfaithful = []
        if assignment is not None:
            for index, conjunct in enumerate(constraints):
                if conjunct is None:
                    continue
                try:
                    faithful = conjunct.evaluate(assignment)
                except KeyError:
                    faithful = False
                if not faithful:
                    self._unfaithful.append(index)

    def _advance(self, j):
        """Ensure all constraints[:j] have been unioned (monotone)."""
        if j < self._processed:
            self._uf = UnionFind()
            self._processed = 0
        uf = self._uf
        for i in range(self._processed, j):
            variables = self._vars[i]
            if variables:
                first = variables[0]
                uf.find(first)
                for var in variables[1:]:
                    uf.union(first, var)
        self._processed = j

    def group_indices(self, j, var):
        """Indices of ``constraints[:j]`` in ``var``'s sharing group.

        Powers the worklist-dedup fingerprint (see
        :func:`repro.dart.solve._child_fingerprint`): the group is the
        set of prefix conjuncts that pinned ``var``'s current value, so
        two entries agreeing on it (and on the value) constrain that
        part of their futures identically.
        """
        self._advance(j)
        uf = self._uf
        root = uf.find(var)
        vars_by_index = self._vars
        return [
            i for i in range(j)
            if vars_by_index[i] and uf.find(vars_by_index[i][0]) == root
        ]

    def slice(self, j, negated):
        """The sliced solver query for flipping conditional ``j``."""
        self._advance(j)
        uf = self._uf
        # The negated conjunct may span several prefix groups; flipping it
        # links them, so every one of its variables' roots is in scope.
        roots = {uf.find(var) for var in negated.variables()}
        # Conjuncts the current inputs fail to satisfy cannot rely on the
        # untouched-group argument: pull their groups into the query so
        # the solver re-satisfies them explicitly.  An unfaithful conjunct
        # with no variables at all is constant-false — no model can mend
        # it, so adding it (correctly) turns the query UNSAT.
        query = []
        for index in self._unfaithful:
            if index < j:
                if self._vars[index]:
                    for var in self._vars[index]:
                        roots.add(uf.find(var))
                else:
                    query.append(self._constraints[index])
        if roots:
            vars_by_index = self._vars
            constraints = self._constraints
            for i in range(j):
                variables = vars_by_index[i]
                if variables and uf.find(variables[0]) in roots:
                    query.append(constraints[i])
        query.append(negated)
        return query
