"""Parallel generational search: the worklist sharded across processes.

The worklist-based strategies ("bfs" and "random") drain a frontier of
*independent* pending input vectors — each item re-executes the program
from scratch and expands its own children.  That independence makes the
frontier embarrassingly parallel: with ``DartOptions(jobs=N)`` each
generation is sharded across a process pool, every worker executing the
instrumented run *and* the child-expanding solver calls for its items.
(The "dfs" strategy is inherently sequential — each plan is derived from
the previous run's path — and always stays single-process.)

Design constraints, mirroring the serial engines:

* **Determinism.** Results are merged in dispatch order, not completion
  order, and every item's undefined-slot randomization is seeded from
  ``(session seed, global iteration index)`` — a given ``(program,
  options)`` pair explores the same tree on every invocation, regardless
  of worker scheduling.  ("random" shuffles each generation's frontier
  with the session RNG, again deterministically.)
* **Per-worker fault boundary.** A worker wraps each run in the same
  quarantine classification as the serial engine (run-timeout /
  resource-exhausted / internal-error) and *returns* the failure as data;
  a worker process dying outright (the in-process boundary cannot catch a
  segfault of the interpreter itself) quarantines the whole batch and the
  pool is rebuilt — one generation is the blast radius, never the
  session.
* **Checkpoint integration.** Between generations the remaining frontier
  *is* the worklist, so the v2 ``SessionCheckpoint`` machinery applies
  unchanged; serial and parallel sessions can resume each other's
  checkpoints (``jobs`` is excluded from the options digest exactly so a
  resumed search may change its parallelism).

**Soundness.** Sharding changes *when* independent items run, never what
each computes: a worker executes the same instrumented run and the same
child expansion the serial engine would, under the same per-item seed,
and the dispatch-order merge leaves the parent's worklist, statistics
and error set identical to a serial drain of the same frontier (pinned
differentially by ``tests/test_parallel.py`` and the fuzzer's
config-invariance oracle).  A lost worker degrades honestly: its batch
is quarantined and ``all_linear`` cleared, so a session that lost runs
never claims Theorem 1(b) completeness.

Workers rebuild the compiled module from source once per process
(initializer), keep their own solver and result cache, and report
metrics-registry snapshots that the parent folds into the session's
``RunStats`` (a deterministic merge — see `repro.obs.metrics`).
"""

import os
import random
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.dart import persist
from repro.dart.coverage import is_program_branch
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import (
    BUG_FOUND,
    INTERNAL_ERROR,
    RESOURCE_EXHAUSTED,
    RUN_TIMEOUT,
    ErrorReport,
    PathWitness,
    QuarantineRecord,
    RunStats,
)
from repro.dart.solve import expand_worklist_children
from repro.faults import points as fault_points
from repro.interp.compile import CompiledProgram
from repro.interp.faults import ExecutionFault, RestoredFault, RunTimeout
from repro.interp.machine import Machine, MachineOptions
from repro.obs import trace as tr
from repro.obs.profile import CACHE as CACHE_PHASE
from repro.obs.profile import COMPILE, EXECUTE, SOLVE
from repro.obs.trace import ListSink, TraceBus
from repro.solver import Solver, SolverResultCache
from repro.symbolic.flags import CompletenessFlags

#: An empty worker metrics snapshot (the second-layer fault fallback).
_EMPTY_METRICS = {"counters": {}, "gauges": {}, "histograms": {}}


def _item_seed(base_seed, iteration):
    """Deterministic RNG seed for one work item (stable across jobs)."""
    return base_seed * 1_000_003 + iteration


# -- worker side --------------------------------------------------------------

_CONTEXT = None


class _WorkerContext:
    """Per-process state: the compiled module, solver, and result cache."""

    def __init__(self, source, toplevel, options, filename):
        self.options = options
        self.module = build_test_program(
            source, toplevel, depth=options.depth, filename=filename,
            max_init_depth=options.max_init_depth,
        )
        self.solver = Solver(seed=options.seed,
                             node_budget=options.solver_node_budget)
        self.cache = SolverResultCache() if options.solver_cache else None
        #: Per-process compiled engine (closures are not picklable, so
        #: each worker lowers its own module copy once).
        self.compiled = CompiledProgram(self.module) \
            if options.compiled_execution else None
        #: compile_seconds already attributed to the compile phase.
        self._compile_seconds_seen = 0.0

    def run_item(self, payload):
        """Execute one pending item and expand its children.

        With tracing requested the worker runs a private bus with an
        in-memory sink and ships the raw events back; the parent
        re-emits them in dispatch order (re-stamping sequence numbers
        and the global iteration), so the merged stream is identical
        run-for-run to a serial session's ordering.  Metrics and phase
        timings are shipped as registry/timer snapshots and folded in
        with the deterministic (commutative, associative) merges.
        """
        options = self.options
        stack = persist._decode_stack(payload["stack"])
        im = persist._decode_im(payload["im"])
        flags = CompletenessFlags()
        stats = RunStats()
        stats.phases.enabled = bool(payload.get("profile"))
        bus = None
        sink = None
        if payload.get("trace"):
            bus = TraceBus()
            sink = bus.attach(ListSink())
            flags.trace = bus
        if self.cache is not None:
            self.cache.trace = bus
        rng = random.Random(payload["seed"])
        hooks = DirectedHooks(im, stack, flags, rng, options)
        deadline = None
        if options.run_time_limit is not None:
            deadline = time.perf_counter() + options.run_time_limit
        planned = bool(stack)
        started = time.perf_counter()
        machine = Machine(
            self.module,
            MachineOptions(
                max_steps=options.max_steps,
                transparent_memory=options.transparent_memory,
                memory=options.memory_options(),
                deadline=deadline,
                watchdog_interval=options.watchdog_interval,
                trace=bus,
            ),
            hooks, flags,
            compiled=self.compiled,
        )
        if bus is not None:
            bus.emit(tr.RUN_STARTED, iteration=0, planned=planned)
        out = {"status": "ok", "children": (), "error": None,
               "quarantine": None, "path": None, "planned": planned,
               "inputs": None, "kinds": None}
        fault = None
        try:
            machine.run(DRIVER_ENTRY)
        except ForcingMismatch:
            out["status"] = "mismatch"
        except ExecutionFault as caught:
            fault = caught
        except RunTimeout as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(RUN_TIMEOUT, im, caught)
        except (RecursionError, MemoryError) as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(
                RESOURCE_EXHAUSTED, im, caught)
        except Exception as caught:  # noqa: BLE001 — the fault boundary
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(INTERNAL_ERROR, im, caught)
        wall = time.perf_counter() - started
        compiled = self.compiled
        compile_delta = 0.0
        if compiled is not None:
            compile_delta = \
                compiled.compile_seconds - self._compile_seconds_seen
            self._compile_seconds_seen = compiled.compile_seconds
            if compile_delta > 0.0:
                wall = max(wall - compile_delta, 0.0)
                if bus is not None:
                    bus.emit(tr.COMPILE, wall_s=round(compile_delta, 6),
                             functions=compiled.functions_compiled)
        if stats.phases.enabled:
            if compile_delta > 0.0:
                stats.phases.add(COMPILE, compile_delta)
            stats.phases.add(EXECUTE, wall)
        stats.branches_executed = machine.branches_executed
        stats.instructions_executed = machine.steps
        stats.instructions_symbolic = machine.symbolic_steps
        stats.conjuncts_widened = machine.widener.widened
        stats.conjuncts_dropped_unfaithful = machine.widener.dropped
        if bus is not None:
            if out["status"] == "ok":
                event_status = "fault" if fault is not None else "ok"
            else:
                event_status = out["status"]
            bus.emit(
                tr.RUN_FINISHED, iteration=0, status=event_status,
                planned=planned, new_path=False, wall_s=round(wall, 6),
                steps=machine.steps, branches=machine.branches_executed,
            )
            if out["quarantine"] is not None and options.trace_ring:
                out["quarantine"]["trace_tail"] = \
                    sink.events[-options.trace_ring:]
        if out["status"] == "ok":
            out["path"] = list(hooks.record.path_key())
            # The final input vector (slot kinds included), so the
            # parent can witness this run for suite export; the parent
            # decides whether to keep it (deduplication is global).
            out["inputs"] = im.values()
            out["kinds"] = [slot.kind for slot in im]
            stats.path_length.observe(machine.branches_executed)
            if fault is not None:
                out["error"] = {
                    "kind": fault.kind,
                    "message": getattr(fault, "message", str(fault)),
                    "location": str(fault.location)
                    if fault.location is not None else None,
                    "inputs": im.values(),
                    "kinds": [slot.kind for slot in im],
                }
            children = self._expand(payload, hooks, im, flags, stats, bus)
            out["children"] = [
                {"stack": persist._encode_stack(child_stack),
                 "im": persist._encode_im(child_im),
                 "bound": child_bound}
                for child_stack, child_im, child_bound in children
            ]
        out["covered"] = list(machine.covered_branches)
        out["flags"] = flags.snapshot()
        out["metrics"] = stats.registry.to_dict()
        out["phases"] = stats.phases.snapshot()
        out["events"] = sink.events if sink is not None else ()
        return out

    def _expand(self, payload, hooks, im, flags, stats, bus):
        """The child-expanding planning call, with phase attribution
        mirroring the serial engine's ``_Session._plan``."""
        options = self.options
        phases = stats.phases
        timed = phases.enabled or bus is not None
        if timed:
            cache_before = phases.seconds.get(CACHE_PHASE, 0.0)
            started = time.perf_counter()
        children = expand_worklist_children(
            hooks.finished_stack(), hooks.record.constraints, im,
            payload["bound"], self.solver, flags, stats,
            options.solver_escalation, cache=self.cache,
            slicing=options.constraint_slicing, trace=bus,
        )
        if timed:
            wall = time.perf_counter() - started
            if phases.enabled:
                cache_delta = \
                    phases.seconds.get(CACHE_PHASE, 0.0) - cache_before
                phases.add(SOLVE, max(wall - cache_delta, 0.0))
            if bus is not None:
                bus.emit(tr.PLAN, iteration=0, wall_s=round(wall, 6))
        return children

    @staticmethod
    def _quarantine(classification, im, exc):
        detail = "{}: {}".format(type(exc).__name__, exc)
        tb = traceback.extract_tb(exc.__traceback__)
        if tb:
            frame = tb[-1]
            detail += " [{}:{} in {}]".format(
                frame.filename.rsplit("/", 1)[-1], frame.lineno, frame.name
            )
        return {
            "classification": classification,
            "inputs": im.values(),
            "kinds": [slot.kind for slot in im],
            "detail": detail,
        }


def _worker_init(source, toplevel, options, filename):
    global _CONTEXT
    # Workers never inject faults themselves: under a fork start method
    # the parent's installed injector would be inherited with a *copy*
    # of its probe counters, making fault placement depend on worker
    # scheduling.  The only worker-side fault is the kill switch, which
    # the parent decides and ships in the payload.
    fault_points.uninstall()
    _CONTEXT = _WorkerContext(source, toplevel, options, filename)


def _worker_run(payload):
    if payload.get("kill"):
        # Fault injection (``worker.kill``): die the way a segfaulting
        # interpreter would — no cleanup, no exception, no return value.
        # The parent sees BrokenProcessPool and must recover.
        os._exit(3)
    try:
        return _CONTEXT.run_item(payload)
    except Exception as exc:  # pragma: no cover — second-layer boundary
        return {"status": "quarantined", "children": (), "error": None,
                "path": None, "covered": (), "inputs": None, "kinds": None,
                "flags": (True, True, True, True),
                "metrics": _EMPTY_METRICS, "phases": {}, "events": (),
                "planned": False,
                "quarantine": {
                    "classification": INTERNAL_ERROR,
                    "inputs": [], "kinds": [],
                    "detail": "worker: {}: {}".format(
                        type(exc).__name__, exc),
                }}


# -- parent side --------------------------------------------------------------

class _ParallelEngine:
    """Drives a _Session through generation-synchronous parallel rounds."""

    def __init__(self, session):
        self.session = session
        self.options = session.options
        self.dart = session.dart
        self._executor = None

    # Imported lazily to avoid a module cycle (runner imports this module
    # inside run()).
    def _pending_type(self):
        from repro.dart.runner import _Pending
        return _Pending

    def _new_executor(self):
        return ProcessPoolExecutor(
            max_workers=self.options.jobs,
            initializer=_worker_init,
            initargs=(self.dart.source, self.dart.toplevel, self.options,
                      self.dart.filename),
        )

    def run(self):
        from repro.dart.runner import _BudgetReached
        session = self.session
        checkpoint = session._resume()
        frontier = None
        if checkpoint is not None and checkpoint.worklist is not None:
            frontier = list(checkpoint.worklist)  # (stack, im, bound)
        self._executor = self._new_executor()
        try:
            while True:  # random restarts, as in Fig. 2
                if frontier is None:
                    frontier = [([], InputVector(), 0)]
                    session._clean_drain = True
                while frontier:
                    self._note_worklist(frontier)
                    session._autosave()
                    session._check_budget()
                    remaining = (self.options.max_iterations
                                 - session.stats.iterations)
                    batch = frontier[:remaining]
                    rest = frontier[remaining:]
                    done, children = self._run_generation(batch, rest)
                    if done:
                        session._clear_checkpoint()
                        return session._result()
                    frontier = rest + children
                    if self.options.strategy == "random":
                        session.rng.shuffle(frontier)
                if session._clean_drain and session._finished_complete():
                    session._clear_checkpoint()
                    return session._result()
                session.stats.random_restarts += 1
                frontier = None
        except _BudgetReached:
            session._save_checkpoint()
            return session._result()
        finally:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def _note_worklist(self, frontier):
        """Expose the live frontier to the checkpoint machinery."""
        pending = self._pending_type()
        self.session._worklist = [
            pending(stack, im, bound) for stack, im, bound in frontier
        ]
        self.session.stats.worklist_depth.set(len(frontier))

    def _run_generation(self, batch, rest):
        """Dispatch one generation; returns (stop, merged children)."""
        session = self.session
        trace_on = session.trace.enabled
        if trace_on:
            session.trace.emit(tr.GENERATION, size=len(batch))
        injector = fault_points.ACTIVE
        payloads = []
        for stack, im, bound in batch:
            session.stats.iterations += 1
            payload = {
                "stack": persist._encode_stack(stack),
                "im": persist._encode_im(im),
                "bound": bound,
                "seed": _item_seed(self.options.seed,
                                   session.stats.iterations),
                "trace": trace_on,
                "profile": session.stats.phases.enabled,
            }
            if injector is not None \
                    and injector.worker_kill(session.stats.iterations):
                # Parent-side kill decision, keyed on the global
                # iteration (worker processes share no probe counter);
                # the worker dies before touching the item.
                payload["kill"] = True
            payloads.append(payload)
        try:
            results = list(self._executor.map(_worker_run, payloads))
        except BrokenProcessPool:
            results = self._retry_generation(payloads, batch)
            if results is None:
                return False, []
        children = []
        first_iteration = session.stats.iterations - len(batch) + 1
        for index, result in enumerate(results):
            stop = self._merge(result, first_iteration + index, children)
            if stop:
                return True, children
        return False, children

    def _retry_generation(self, payloads, batch):
        """Second chance after a lost worker process.

        A dead worker takes its whole generation's results with it, but
        the items themselves are still known — they were dispatched, not
        consumed.  So the in-flight flip candidates are *re-queued*: the
        pool is rebuilt and the same payloads (same per-item seeds, so
        the merged outcome is exactly what an undisturbed generation
        would have produced) are dispatched once more.  Injected kill
        flags are stripped first — the modeled crash is transient, which
        is precisely the failure shape a retry recovers from.  Only when
        the crash *reproduces* on the fresh pool does the generation get
        quarantined (the previous behaviour, now the second layer):
        deterministic crashes must not retry forever.

        Returns the worker results, or None when the generation was
        given up and quarantined.
        """
        session = self.session
        session.stats.pool_retries += 1
        if session.trace.enabled:
            session.trace.emit(tr.POOL_RETRY, size=len(payloads),
                               iteration=session.stats.iterations)
        self._executor.shutdown(wait=False, cancel_futures=True)
        self._executor = self._new_executor()
        retries = []
        for payload in payloads:
            payload = dict(payload)
            payload.pop("kill", None)
            retries.append(payload)
        try:
            return list(self._executor.map(_worker_run, retries))
        except BrokenProcessPool:
            # Crash reproduced: quarantine the generation, rebuild the
            # pool, keep the session alive — the paper's
            # crash-loses-one-run containment, at generation granularity.
            session.flags.clear_linear()
            session._clean_drain = False
            for index, (stack, im, bound) in enumerate(batch):
                session.stats.quarantined.append(QuarantineRecord(
                    INTERNAL_ERROR, im.values(),
                    [slot.kind for slot in im],
                    session.stats.iterations - len(batch) + 1 + index,
                    "worker process died twice (BrokenProcessPool)",
                ))
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._new_executor()
            return None

    def _ship_events(self, result, iteration, new_path):
        """Re-emit one worker's events on the parent bus, in dispatch
        order, patching in what only the parent knows: the global
        iteration number and whether the run's path was globally new."""
        trace = self.session.trace
        if not trace.enabled:
            return
        for event in result.get("events") or ():
            event = dict(event)
            if "iteration" in event:
                event["iteration"] = iteration
            if event.get("type") == tr.RUN_FINISHED:
                event["new_path"] = new_path
            trace.forward(event)

    def _witness(self, result, iteration):
        """Record one worker run as a suite-export witness.

        Mirrors ``_Session._witness``: keyed on (path, error class),
        applied in dispatch order, so serial and parallel sessions of
        the same search retain identical witness lists.
        """
        session = self.session
        error = result["error"]
        witness_error = None
        if error is not None:
            witness_error = {
                "kind": error["kind"],
                "message": error["message"],
                "location": error["location"],
            }
        path_key = tuple(result["path"])
        error_key = (witness_error["kind"], str(witness_error["location"])) \
            if witness_error is not None else None
        witness_key = (path_key, error_key)
        if witness_key in session._witnessed:
            return
        session._witnessed.add(witness_key)
        session.witnesses.append(PathWitness(
            result["inputs"], result["kinds"], path_key,
            {entry for entry in
             ((item[0], item[1], item[2]) for item in result["covered"])
             if is_program_branch(entry)},
            error=witness_error, iteration=iteration,
        ))
        session.stats.witnesses_recorded += 1

    def _merge(self, result, iteration, children):
        """Fold one worker result into the session (dispatch order)."""
        session = self.session
        all_linear, all_locs, _forcing, all_faithful = result["flags"]
        if not all_linear:
            session.flags.clear_linear()
        if not all_locs:
            session.flags.clear_locs()
        if not all_faithful:
            session.flags.clear_faithful()
        # Deterministic instrument merge: counters add, gauges max,
        # histograms add elementwise; dispatch order makes it stable,
        # commutativity makes it independent of worker scheduling.
        session.stats.registry.merge(result["metrics"])
        if result.get("phases"):
            session.stats.phases.merge(result["phases"])
        session.stats.covered_branches.update(
            (entry[0], entry[1], entry[2]) for entry in result["covered"]
        )
        status = result["status"]
        if status == "mismatch":
            # The worker's hooks cleared forcing_ok and raised; the serial
            # engine restores the flag and drops the stale item, and so do
            # we — the mismatch only taints this drain's completeness.
            session.stats.forcing_failures += 1
            session._clean_drain = False
            self._ship_events(result, iteration, False)
            return False
        if status == "quarantined":
            record = result["quarantine"]
            session.flags.clear_linear()
            session.stats.quarantined.append(QuarantineRecord(
                record["classification"], record["inputs"],
                record["kinds"], iteration, record["detail"],
                trace_tail=record.get("trace_tail"),
            ))
            session._clean_drain = False
            self._ship_events(result, iteration, False)
            if session.trace.enabled:
                session.trace.emit(
                    tr.QUARANTINE,
                    classification=record["classification"],
                    iteration=iteration, detail=record["detail"],
                )
            return False
        new_path = session.stats.note_path(tuple(result["path"]))
        if result.get("planned"):
            session.stats.runs_forced += 1
        if session._collect_witnesses and result.get("inputs") is not None:
            self._witness(result, iteration)
        self._ship_events(result, iteration, new_path)
        children.extend(
            (persist._decode_stack(child["stack"]),
             persist._decode_im(child["im"]),
             child["bound"])
            for child in result["children"]
        )
        error = result["error"]
        if error is not None:
            fault = RestoredFault(error["kind"], error["message"],
                                  error["location"])
            session.status = BUG_FOUND
            key = (fault.kind, str(fault.location))
            if key not in session._seen_error_keys:
                session._seen_error_keys.add(key)
                session.errors.append(ErrorReport(
                    fault, error["inputs"], iteration,
                    tuple(result["path"]), kinds=error["kinds"],
                ))
            return self.options.stop_on_first_error
        return False


def run_parallel_generational(session):
    """Entry point used by :meth:`repro.dart.runner.Dart.run`."""
    return _ParallelEngine(session).run()
