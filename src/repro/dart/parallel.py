"""Parallel generational search: the worklist sharded across processes.

The worklist-based strategies ("bfs" and "random") drain a frontier of
*independent* pending input vectors — each item re-executes the program
from scratch and expands its own children.  That independence makes the
frontier embarrassingly parallel: with ``DartOptions(jobs=N)`` each
generation is sharded across a process pool, every worker executing the
instrumented run *and* the child-expanding solver calls for its items.
(The "dfs" strategy is inherently sequential — each plan is derived from
the previous run's path — and always stays single-process.)

Design constraints, mirroring the serial engines:

* **Determinism.** Results are merged in dispatch order, not completion
  order, and every item's undefined-slot randomization is seeded from
  ``(session seed, global iteration index)`` — a given ``(program,
  options)`` pair explores the same tree on every invocation, regardless
  of worker scheduling.  ("random" shuffles each generation's frontier
  with the session RNG, again deterministically.)
* **Per-worker fault boundary.** A worker wraps each run in the same
  quarantine classification as the serial engine (run-timeout /
  resource-exhausted / internal-error) and *returns* the failure as data;
  a worker process dying outright (the in-process boundary cannot catch a
  segfault of the interpreter itself) quarantines the whole batch and the
  pool is rebuilt — one generation is the blast radius, never the
  session.
* **Checkpoint integration.** Between generations the remaining frontier
  *is* the worklist, so the v2 ``SessionCheckpoint`` machinery applies
  unchanged; serial and parallel sessions can resume each other's
  checkpoints (``jobs`` is excluded from the options digest exactly so a
  resumed search may change its parallelism).

Workers rebuild the compiled module from source once per process
(initializer), keep their own solver and result cache, and report
statistics deltas that the parent folds into the session's ``RunStats``.
"""

import random
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.dart import persist
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import (
    BUG_FOUND,
    INTERNAL_ERROR,
    RESOURCE_EXHAUSTED,
    RUN_TIMEOUT,
    ErrorReport,
    QuarantineRecord,
    RunStats,
)
from repro.dart.solve import expand_worklist_children
from repro.interp.faults import ExecutionFault, RestoredFault, RunTimeout
from repro.interp.machine import Machine, MachineOptions
from repro.solver import Solver, SolverResultCache
from repro.symbolic.flags import CompletenessFlags

#: Counter names a worker reports as deltas (a strict subset of
#: RunStats.COUNTERS: the parent owns iterations/restarts/forcing).
_WORKER_COUNTERS = (
    "solver_calls", "solver_sat", "solver_unsat", "solver_unknown",
    "solver_retries", "solver_escalations", "branches_executed",
    "machine_steps", "solver_constraints", "sliced_conjuncts_dropped",
    "cache_hits", "cache_unsat_shortcuts", "cache_model_reuses",
    "cache_misses",
)


def _item_seed(base_seed, iteration):
    """Deterministic RNG seed for one work item (stable across jobs)."""
    return base_seed * 1_000_003 + iteration


# -- worker side --------------------------------------------------------------

_CONTEXT = None


class _WorkerContext:
    """Per-process state: the compiled module, solver, and result cache."""

    def __init__(self, source, toplevel, options, filename):
        self.options = options
        self.module = build_test_program(
            source, toplevel, depth=options.depth, filename=filename,
            max_init_depth=options.max_init_depth,
        )
        self.solver = Solver(seed=options.seed,
                             node_budget=options.solver_node_budget)
        self.cache = SolverResultCache() if options.solver_cache else None

    def run_item(self, payload):
        """Execute one pending item and expand its children."""
        options = self.options
        stack = persist._decode_stack(payload["stack"])
        im = persist._decode_im(payload["im"])
        flags = CompletenessFlags()
        stats = RunStats()
        rng = random.Random(payload["seed"])
        hooks = DirectedHooks(im, stack, flags, rng, options)
        deadline = None
        if options.run_time_limit is not None:
            deadline = time.perf_counter() + options.run_time_limit
        machine = Machine(
            self.module,
            MachineOptions(
                max_steps=options.max_steps,
                transparent_memory=options.transparent_memory,
                memory=options.memory_options(),
                deadline=deadline,
                watchdog_interval=options.watchdog_interval,
            ),
            hooks, flags,
        )
        out = {"status": "ok", "children": (), "error": None,
               "quarantine": None, "path": None}
        fault = None
        try:
            machine.run(DRIVER_ENTRY)
        except ForcingMismatch:
            out["status"] = "mismatch"
        except ExecutionFault as caught:
            fault = caught
        except RunTimeout as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(RUN_TIMEOUT, im, caught)
        except (RecursionError, MemoryError) as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(
                RESOURCE_EXHAUSTED, im, caught)
        except Exception as caught:  # noqa: BLE001 — the fault boundary
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(INTERNAL_ERROR, im, caught)
        stats.branches_executed = machine.branches_executed
        stats.machine_steps = machine.steps
        if out["status"] == "ok":
            out["path"] = list(hooks.record.path_key())
            if fault is not None:
                out["error"] = {
                    "kind": fault.kind,
                    "message": getattr(fault, "message", str(fault)),
                    "location": str(fault.location)
                    if fault.location is not None else None,
                    "inputs": im.values(),
                    "kinds": [slot.kind for slot in im],
                }
            children = expand_worklist_children(
                hooks.finished_stack(), hooks.record.constraints, im,
                payload["bound"], self.solver, flags, stats,
                options.solver_escalation, cache=self.cache,
                slicing=options.constraint_slicing,
            )
            out["children"] = [
                {"stack": persist._encode_stack(child_stack),
                 "im": persist._encode_im(child_im),
                 "bound": child_bound}
                for child_stack, child_im, child_bound in children
            ]
        out["covered"] = list(machine.covered_branches)
        out["flags"] = flags.snapshot()
        out["counters"] = {
            name: getattr(stats, name)
            for name in _WORKER_COUNTERS if getattr(stats, name)
        }
        return out

    @staticmethod
    def _quarantine(classification, im, exc):
        detail = "{}: {}".format(type(exc).__name__, exc)
        tb = traceback.extract_tb(exc.__traceback__)
        if tb:
            frame = tb[-1]
            detail += " [{}:{} in {}]".format(
                frame.filename.rsplit("/", 1)[-1], frame.lineno, frame.name
            )
        return {
            "classification": classification,
            "inputs": im.values(),
            "kinds": [slot.kind for slot in im],
            "detail": detail,
        }


def _worker_init(source, toplevel, options, filename):
    global _CONTEXT
    _CONTEXT = _WorkerContext(source, toplevel, options, filename)


def _worker_run(payload):
    try:
        return _CONTEXT.run_item(payload)
    except Exception as exc:  # pragma: no cover — second-layer boundary
        return {"status": "quarantined", "children": (), "error": None,
                "path": None, "covered": (), "flags": (True, True, True),
                "counters": {},
                "quarantine": {
                    "classification": INTERNAL_ERROR,
                    "inputs": [], "kinds": [],
                    "detail": "worker: {}: {}".format(
                        type(exc).__name__, exc),
                }}


# -- parent side --------------------------------------------------------------

class _ParallelEngine:
    """Drives a _Session through generation-synchronous parallel rounds."""

    def __init__(self, session):
        self.session = session
        self.options = session.options
        self.dart = session.dart
        self._executor = None

    # Imported lazily to avoid a module cycle (runner imports this module
    # inside run()).
    def _pending_type(self):
        from repro.dart.runner import _Pending
        return _Pending

    def _new_executor(self):
        return ProcessPoolExecutor(
            max_workers=self.options.jobs,
            initializer=_worker_init,
            initargs=(self.dart.source, self.dart.toplevel, self.options,
                      self.dart.filename),
        )

    def run(self):
        from repro.dart.runner import _BudgetReached
        session = self.session
        checkpoint = session._resume()
        frontier = None
        if checkpoint is not None and checkpoint.worklist is not None:
            frontier = list(checkpoint.worklist)  # (stack, im, bound)
        self._executor = self._new_executor()
        try:
            while True:  # random restarts, as in Fig. 2
                if frontier is None:
                    frontier = [([], InputVector(), 0)]
                    session._clean_drain = True
                while frontier:
                    self._note_worklist(frontier)
                    session._autosave()
                    session._check_budget()
                    remaining = (self.options.max_iterations
                                 - session.stats.iterations)
                    batch = frontier[:remaining]
                    rest = frontier[remaining:]
                    done, children = self._run_generation(batch, rest)
                    if done:
                        session._clear_checkpoint()
                        return session._result()
                    frontier = rest + children
                    if self.options.strategy == "random":
                        session.rng.shuffle(frontier)
                if session._clean_drain and session._finished_complete():
                    session._clear_checkpoint()
                    return session._result()
                session.stats.random_restarts += 1
                frontier = None
        except _BudgetReached:
            session._save_checkpoint()
            return session._result()
        finally:
            self._executor.shutdown(wait=False, cancel_futures=True)

    def _note_worklist(self, frontier):
        """Expose the live frontier to the checkpoint machinery."""
        pending = self._pending_type()
        self.session._worklist = [
            pending(stack, im, bound) for stack, im, bound in frontier
        ]

    def _run_generation(self, batch, rest):
        """Dispatch one generation; returns (stop, merged children)."""
        session = self.session
        payloads = []
        for stack, im, bound in batch:
            session.stats.iterations += 1
            payloads.append({
                "stack": persist._encode_stack(stack),
                "im": persist._encode_im(im),
                "bound": bound,
                "seed": _item_seed(self.options.seed,
                                   session.stats.iterations),
            })
        try:
            results = list(self._executor.map(_worker_run, payloads))
        except BrokenProcessPool:
            # A worker process died outright (beyond the in-process fault
            # boundary).  Quarantine the generation, rebuild the pool, and
            # keep the session alive — the paper's crash-loses-one-run
            # containment, at generation granularity.
            session.flags.clear_linear()
            session._clean_drain = False
            for index, (stack, im, bound) in enumerate(batch):
                session.stats.quarantined.append(QuarantineRecord(
                    INTERNAL_ERROR, im.values(),
                    [slot.kind for slot in im],
                    session.stats.iterations - len(batch) + 1 + index,
                    "worker process died (BrokenProcessPool)",
                ))
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._new_executor()
            return False, []
        children = []
        first_iteration = session.stats.iterations - len(batch) + 1
        for index, result in enumerate(results):
            stop = self._merge(result, first_iteration + index, children)
            if stop:
                return True, children
        return False, children

    def _merge(self, result, iteration, children):
        """Fold one worker result into the session (dispatch order)."""
        session = self.session
        all_linear, all_locs, _forcing = result["flags"]
        if not all_linear:
            session.flags.clear_linear()
        if not all_locs:
            session.flags.clear_locs()
        for name, value in result["counters"].items():
            setattr(session.stats, name,
                    getattr(session.stats, name) + value)
        session.stats.covered_branches.update(
            (entry[0], entry[1], entry[2]) for entry in result["covered"]
        )
        status = result["status"]
        if status == "mismatch":
            # The worker's hooks cleared forcing_ok and raised; the serial
            # engine restores the flag and drops the stale item, and so do
            # we — the mismatch only taints this drain's completeness.
            session.stats.forcing_failures += 1
            session._clean_drain = False
            return False
        if status == "quarantined":
            record = result["quarantine"]
            session.flags.clear_linear()
            session.stats.quarantined.append(QuarantineRecord(
                record["classification"], record["inputs"],
                record["kinds"], iteration, record["detail"],
            ))
            session._clean_drain = False
            return False
        session.stats.note_path(tuple(result["path"]))
        children.extend(
            (persist._decode_stack(child["stack"]),
             persist._decode_im(child["im"]),
             child["bound"])
            for child in result["children"]
        )
        error = result["error"]
        if error is not None:
            fault = RestoredFault(error["kind"], error["message"],
                                  error["location"])
            session.status = BUG_FOUND
            key = (fault.kind, str(fault.location))
            if key not in session._seen_error_keys:
                session._seen_error_keys.add(key)
                session.errors.append(ErrorReport(
                    fault, error["inputs"], iteration,
                    tuple(result["path"]), kinds=error["kinds"],
                ))
            return self.options.stop_on_first_error
        return False


def run_parallel_generational(session):
    """Entry point used by :meth:`repro.dart.runner.Dart.run`."""
    return _ParallelEngine(session).run()
