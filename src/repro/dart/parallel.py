"""Parallel generational search: a persistent, pipelined worker pool.

The worklist-based strategies ("bfs" and "random") drain a frontier of
*independent* pending input vectors — each item re-executes the program
from scratch and expands its own children.  That independence makes the
frontier embarrassingly parallel: with ``DartOptions(jobs=N)``, N
long-lived worker processes consume a shared work queue of flip
candidates, solver calls overlap interpretation (one worker can be
solving while another executes), and an idle worker steals whatever
item is next in the queue — there are no generation barriers and no
per-generation pool respawn.  (The "dfs" strategy is inherently
sequential — each plan is derived from the previous run's path — and
always stays single-process.)

Design constraints, mirroring the serial engines (the full argument
lives in ``docs/PARALLELISM.md``):

* **Determinism.** The dispatcher tops the pipeline up to a fixed
  window (``2*jobs``) only at drain start and after each commit, and
  results are committed strictly in dispatch order through a reorder
  buffer — so the dispatch *and* commit sequences are independent of
  worker timing.  For "bfs" the dispatch order provably equals the
  serial FIFO order (children enter the frontier at their parent's
  commit, and commits happen in dispatch order), and every item's
  undefined-slot randomization is seeded from ``(session seed, global
  iteration index)`` — a given ``(program, options)`` pair explores the
  same tree on every invocation, regardless of worker scheduling.
* **Shared solver cache.** Workers share decided solver results
  through a parent-side cache server (:mod:`repro.solver.shared`):
  identical queries are solved once pool-wide, concurrent duplicates
  wait on the first solver instead of re-solving, and a per-item local
  cache keeps the serial cache's UNSAT-superset/model-reuse tiers —
  partitioned exactly so that every worker result stays a pure
  function of its payload.
* **Per-worker fault boundary.** A worker wraps each run in the same
  quarantine classification as the serial engine (run-timeout /
  resource-exhausted / internal-error) and *returns* the failure as
  data.  A worker process dying outright (the in-process boundary
  cannot catch a segfault of the interpreter itself) is detected by
  the parent: the items the dead worker had claimed are re-dispatched
  once (``pool_retries``), a replacement worker is spawned, and only a
  *second* death on the same item quarantines it — one item is the
  blast radius, never the session.
* **Checkpoint integration.** Commits are the between-runs boundary:
  the uncommitted tail of the pipeline plus the pending frontier *is*
  the worklist, so the v2 ``SessionCheckpoint`` machinery applies
  unchanged and serial and pool sessions resume each other's
  checkpoints (``jobs`` is excluded from the options digest exactly so
  a resumed search may change its parallelism).

**Soundness.** Pipelining changes *when* independent items run, never
what each computes: a worker executes the same instrumented run and the
same child expansion the serial engine would, under the same per-item
seed, and the dispatch-order commit leaves the parent's worklist,
statistics and error set identical to a serial drain of the same
frontier (pinned differentially by ``tests/test_parallel.py`` and the
fuzzer's config-invariance oracle).  A lost run degrades honestly: it
is quarantined and ``all_linear`` cleared, so a session that lost runs
never claims Theorem 1(b) completeness.

Workers rebuild the compiled module from source once per process, keep
their own solver, and report metrics-registry snapshots that the parent
folds into the session's ``RunStats`` at commit (a deterministic merge
— see `repro.obs.metrics`).
"""

import multiprocessing
import os
import random
import signal
import time
import traceback
from queue import Empty

from repro.dart import persist
from repro.dart.coverage import is_program_branch
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.independence import coupling_classes
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks, ForcingMismatch
from repro.dart.report import (
    BUG_FOUND,
    INTERNAL_ERROR,
    RESOURCE_EXHAUSTED,
    RUN_TIMEOUT,
    ErrorReport,
    PathWitness,
    QuarantineRecord,
    RunStats,
)
from repro.dart.solve import expand_worklist_children
from repro.faults import points as fault_points
from repro.interp.compile import CompiledProgram
from repro.interp.faults import ExecutionFault, RestoredFault, RunTimeout
from repro.interp.machine import Machine, MachineOptions
from repro.obs import trace as tr
from repro.obs.profile import CACHE as CACHE_PHASE
from repro.obs.profile import COMPILE, EXECUTE, SOLVE
from repro.obs.trace import ListSink, TraceBus
from repro.solver import Solver, SolverResultCache
from repro.solver.shared import CacheServer, SharedCacheClient
from repro.symbolic.flags import CompletenessFlags

#: An empty worker metrics snapshot (the second-layer fault fallback).
_EMPTY_METRICS = {"counters": {}, "gauges": {}, "histograms": {}}

#: Worker processes are forked: the pool respawns workers mid-session
#: (death recovery), and fork keeps that cheap and keeps the module
#: import state consistent with the parent.
try:
    _MP = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover — non-POSIX fallback
    _MP = multiprocessing.get_context()


def _item_seed(base_seed, iteration):
    """Deterministic RNG seed for one work item (stable across jobs)."""
    return base_seed * 1_000_003 + iteration


# -- worker side --------------------------------------------------------------


class _WorkerContext:
    """Per-process state: the compiled module, solver, and result cache."""

    def __init__(self, source, toplevel, options, filename, cache=None):
        self.options = options
        self.module = build_test_program(
            source, toplevel, depth=options.depth, filename=filename,
            max_init_depth=options.max_init_depth,
        )
        self.solver = Solver(seed=options.seed,
                             node_budget=options.solver_node_budget)
        if cache is not None:
            self.cache = cache
        else:
            self.cache = SolverResultCache() if options.solver_cache \
                else None
        #: Per-process compiled engine (closures are not picklable, so
        #: each worker lowers its own module copy once).
        self.compiled = CompiledProgram(self.module) \
            if options.compiled_execution else None
        #: Dedup-eligibility classes, recomputed per worker exactly as
        #: the parent session does (the analysis is deterministic, so
        #: every process gates fingerprints identically).
        self.independence = coupling_classes(
            source, toplevel, options.depth, filename=filename,
        ) if options.subsumption else None
        #: compile_seconds already attributed to the compile phase.
        self._compile_seconds_seen = 0.0

    def run_item(self, payload):
        """Execute one pending item and expand its children.

        With tracing requested the worker runs a private bus with an
        in-memory sink and ships the raw events back; the parent
        re-emits them in commit order (re-stamping sequence numbers
        and the global iteration), so the merged stream is identical
        run-for-run to a serial session's ordering.  Metrics and phase
        timings are shipped as registry/timer snapshots and folded in
        with the deterministic (commutative, associative) merges.
        """
        options = self.options
        stack = persist._decode_stack(payload["stack"])
        im = persist._decode_im(payload["im"])
        flags = CompletenessFlags()
        stats = RunStats()
        stats.phases.enabled = bool(payload.get("profile"))
        bus = None
        sink = None
        if payload.get("trace"):
            bus = TraceBus()
            sink = bus.attach(ListSink())
            flags.trace = bus
        if self.cache is not None:
            self.cache.trace = bus
        rng = random.Random(payload["seed"])
        hooks = DirectedHooks(im, stack, flags, rng, options)
        deadline = None
        if options.run_time_limit is not None:
            deadline = time.perf_counter() + options.run_time_limit
        planned = bool(stack)
        started = time.perf_counter()
        machine = Machine(
            self.module,
            MachineOptions(
                max_steps=options.max_steps,
                transparent_memory=options.transparent_memory,
                memory=options.memory_options(),
                deadline=deadline,
                watchdog_interval=options.watchdog_interval,
                trace=bus,
            ),
            hooks, flags,
            compiled=self.compiled,
        )
        if bus is not None:
            bus.emit(tr.RUN_STARTED, iteration=0, planned=planned)
        out = {"status": "ok", "children": (), "error": None,
               "quarantine": None, "path": None, "planned": planned,
               "inputs": None, "kinds": None}
        fault = None
        try:
            machine.run(DRIVER_ENTRY)
        except ForcingMismatch:
            out["status"] = "mismatch"
        except ExecutionFault as caught:
            fault = caught
        except RunTimeout as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(RUN_TIMEOUT, im, caught)
        except (RecursionError, MemoryError) as caught:
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(
                RESOURCE_EXHAUSTED, im, caught)
        except Exception as caught:  # noqa: BLE001 — the fault boundary
            out["status"] = "quarantined"
            out["quarantine"] = self._quarantine(INTERNAL_ERROR, im, caught)
        wall = time.perf_counter() - started
        compiled = self.compiled
        compile_delta = 0.0
        if compiled is not None:
            compile_delta = \
                compiled.compile_seconds - self._compile_seconds_seen
            self._compile_seconds_seen = compiled.compile_seconds
            if compile_delta > 0.0:
                wall = max(wall - compile_delta, 0.0)
                if bus is not None:
                    bus.emit(tr.COMPILE, wall_s=round(compile_delta, 6),
                             functions=compiled.functions_compiled)
        if stats.phases.enabled:
            if compile_delta > 0.0:
                stats.phases.add(COMPILE, compile_delta)
            stats.phases.add(EXECUTE, wall)
        stats.branches_executed = machine.branches_executed
        stats.instructions_executed = machine.steps
        stats.instructions_symbolic = machine.symbolic_steps
        stats.conjuncts_widened = machine.widener.widened
        stats.conjuncts_dropped_unfaithful = machine.widener.dropped
        if bus is not None:
            if out["status"] == "ok":
                event_status = "fault" if fault is not None else "ok"
            else:
                event_status = out["status"]
            bus.emit(
                tr.RUN_FINISHED, iteration=0, status=event_status,
                planned=planned, new_path=False, wall_s=round(wall, 6),
                steps=machine.steps, branches=machine.branches_executed,
            )
            if out["quarantine"] is not None and options.trace_ring:
                out["quarantine"]["trace_tail"] = \
                    sink.events[-options.trace_ring:]
        if out["status"] == "ok":
            out["path"] = list(hooks.record.path_key())
            # The final input vector (slot kinds included), so the
            # parent can witness this run for suite export; the parent
            # decides whether to keep it (deduplication is global).
            out["inputs"] = im.values()
            out["kinds"] = [slot.kind for slot in im]
            stats.path_length.observe(machine.branches_executed)
            if fault is not None:
                out["error"] = {
                    "kind": fault.kind,
                    "message": getattr(fault, "message", str(fault)),
                    "location": str(fault.location)
                    if fault.location is not None else None,
                    "inputs": im.values(),
                    "kinds": [slot.kind for slot in im],
                }
            children = self._expand(payload, hooks, im, flags, stats, bus)
            # The future fingerprint rides along so the *parent* can
            # dedupe at insert time against its drain-global seen set
            # (workers only ever see their own item).
            out["children"] = [
                {"stack": persist._encode_stack(child_stack),
                 "im": persist._encode_im(child_im),
                 "bound": child_bound,
                 "fp": child_fp}
                for child_stack, child_im, child_bound, child_fp
                in children
            ]
        out["covered"] = list(machine.covered_branches)
        out["flags"] = flags.snapshot()
        out["metrics"] = stats.registry.to_dict()
        out["phases"] = stats.phases.snapshot()
        out["events"] = sink.events if sink is not None else ()
        return out

    def _expand(self, payload, hooks, im, flags, stats, bus):
        """The child-expanding planning call, with phase attribution
        mirroring the serial engine's ``_Session._plan``."""
        options = self.options
        phases = stats.phases
        timed = phases.enabled or bus is not None
        if timed:
            cache_before = phases.seconds.get(CACHE_PHASE, 0.0)
            started = time.perf_counter()
        children = expand_worklist_children(
            hooks.finished_stack(), hooks.record.constraints, im,
            payload["bound"], self.solver, flags, stats,
            options.solver_escalation, cache=self.cache,
            slicing=options.constraint_slicing, trace=bus,
            subsume=options.subsumption,
            independence=self.independence,
        )
        if timed:
            wall = time.perf_counter() - started
            if phases.enabled:
                cache_delta = \
                    phases.seconds.get(CACHE_PHASE, 0.0) - cache_before
                phases.add(SOLVE, max(wall - cache_delta, 0.0))
            if bus is not None:
                bus.emit(tr.PLAN, iteration=0, wall_s=round(wall, 6))
        return children

    @staticmethod
    def _quarantine(classification, im, exc):
        detail = "{}: {}".format(type(exc).__name__, exc)
        tb = traceback.extract_tb(exc.__traceback__)
        if tb:
            frame = tb[-1]
            detail += " [{}:{} in {}]".format(
                frame.filename.rsplit("/", 1)[-1], frame.lineno, frame.name
            )
        return {
            "classification": classification,
            "inputs": im.values(),
            "kinds": [slot.kind for slot in im],
            "detail": detail,
        }


def _failed_run(detail):
    """The second-layer fallback result: a quarantined run as data."""
    return {"status": "quarantined", "children": (), "error": None,
            "path": None, "covered": (), "inputs": None, "kinds": None,
            "flags": (True, True, True, True),
            "metrics": _EMPTY_METRICS, "phases": {}, "events": (),
            "planned": False,
            "quarantine": {
                "classification": INTERNAL_ERROR,
                "inputs": [], "kinds": [],
                "detail": detail,
            }}


def _pool_worker(wid, spec, work_q, result_q, cache_conn):
    """One long-lived worker: claim, execute, expand, report, repeat.

    The claim message is sent *before* the item runs, over the same
    queue as the result, so the parent always learns who owns an item
    before (or together with) its outcome — the invariant the
    death-recovery sweep relies on.  ``None`` on the work queue is the
    shutdown sentinel.
    """
    # Workers never inject faults themselves: under a fork start method
    # the parent's installed injector would be inherited with a *copy*
    # of its probe counters, making fault placement depend on worker
    # scheduling.  The only worker-side fault is the kill switch, which
    # the parent decides and ships in the payload.
    fault_points.uninstall()
    # Forked workers inherit the parent's signal_guard handlers, which
    # only set a flag the worker never reads — that would make SIGTERM
    # (process.terminate()) a no-op and a terminal Ctrl-C (delivered to
    # the whole foreground group) kill workers mid-item.  Reset both:
    # the parent alone handles interrupts and winds the pool down.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover — exotic platform
        pass
    source, toplevel, options, filename = spec
    client = SharedCacheClient(cache_conn) \
        if (cache_conn is not None and options.solver_cache) else None
    try:
        context = _WorkerContext(source, toplevel, options, filename,
                                 cache=client)
    except Exception:  # pragma: no cover — broken program spec
        os._exit(4)
    while True:
        job = work_q.get()
        if job is None:
            break
        index, payload = job
        result_q.put(("claim", wid, index))
        if payload.get("kill"):
            # Fault injection (``worker.kill``): die the way a
            # segfaulting interpreter would — no result, no exception.
            # The claim is flushed first (close + join_thread drains the
            # feeder and releases the queue's write lock) so the parent
            # can attribute the loss and other workers never deadlock.
            result_q.close()
            result_q.join_thread()
            os._exit(3)
        if client is not None:
            client.begin_item()
        started = time.perf_counter()
        try:
            out = context.run_item(payload)
        except Exception as exc:  # pragma: no cover — second layer
            out = _failed_run("worker: {}: {}".format(
                type(exc).__name__, exc))
        busy = time.perf_counter() - started
        result_q.put(("result", wid, index, out, round(busy, 6)))


# -- parent side --------------------------------------------------------------


class _PoolEngine:
    """Drives a _Session through the persistent pipelined worker pool.

    The parent is the only scheduler: it pops items from the frontier at
    deterministic fill points, assigns each a global dispatch index (its
    eventual iteration number), and commits buffered results strictly in
    index order.  Workers race only over *which* of the already-chosen
    items each executes — never over what the search explores.
    """

    def __init__(self, session):
        self.session = session
        self.options = session.options
        self.dart = session.dart
        #: Pipeline window: enough in-flight items to keep every worker
        #: busy while the head-of-line result is awaited, small enough
        #: that a budget stop wastes little speculative work.
        self.window = max(2 * self.options.jobs, 2)
        self._work_q = None
        self._result_q = None
        self._server = None
        self._workers = {}  # wid -> Process
        self._slots = []  # wid per round-robin slot (steal nominees)
        self._next_wid = 0  # allocator when no cache server exists
        self._items = {}  # index -> (stack, im, bound), until commit
        self._payloads = {}  # index -> dispatched payload (re-dispatch)
        self._nominees = {}  # index -> nominated wid (steal accounting)
        self._claims = {}  # index -> wid of the latest claim
        self._buffer = {}  # index -> result, until its commit turn
        self._retried = set()  # indices already re-dispatched once
        self._next_dispatch = 1
        self._next_commit = 1
        self._busy_s = 0.0
        self._started_at = None

    # Imported lazily to avoid a module cycle (runner imports this module
    # inside run()).
    def _pending_type(self):
        from repro.dart.runner import _Pending
        return _Pending

    # -- pool lifecycle -----------------------------------------------------

    def _spawn_worker(self):
        cache_conn = None
        if self._server is not None:
            wid, cache_conn = self._server.register_worker()
        else:
            wid = self._next_wid
            self._next_wid += 1
        spec = (self.dart.source, self.dart.toplevel, self.options,
                self.dart.filename)
        process = _MP.Process(
            target=_pool_worker,
            args=(wid, spec, self._work_q, self._result_q, cache_conn),
            daemon=True,
        )
        process.start()
        if cache_conn is not None:
            # The child inherited its end over the fork; drop the
            # parent's duplicate so EOF detection works.
            cache_conn.close()
        self._workers[wid] = process
        return wid

    def _start_pool(self):
        self._work_q = _MP.Queue()
        self._result_q = _MP.Queue()
        if self.options.solver_cache:
            self._server = CacheServer()
            self._server.start()
        self._started_at = time.perf_counter()
        for _ in range(self.options.jobs):
            self._slots.append(self._spawn_worker())
        if self.session.trace.enabled:
            self.session.trace.emit(tr.POOL_STARTED,
                                    jobs=self.options.jobs,
                                    window=self.window)

    def _stop_pool(self):
        session = self.session
        for _ in range(len(self._workers)):
            try:
                self._work_q.put(None)
            except (OSError, ValueError):  # pragma: no cover
                break
        for process in self._workers.values():
            process.join(timeout=1.0)
        for process in self._workers.values():
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._workers.clear()
        for q in (self._work_q, self._result_q):
            q.close()
            q.cancel_join_thread()
        elapsed = time.perf_counter() - self._started_at \
            if self._started_at is not None else 0.0
        if self._server is not None:
            self._server.stop()
        if session.trace.enabled:
            budget = elapsed * max(self.options.jobs, 1)
            session.trace.emit(
                tr.POOL_STOPPED,
                dispatched=self._next_dispatch - 1,
                committed=self._next_commit - 1,
                steals=session.stats.pool_steals,
                workers_lost=session.stats.pool_workers_lost,
                utilization=round(self._busy_s / budget, 4)
                if budget > 0 else 0.0,
            )

    # -- the drain loop -----------------------------------------------------

    def run(self):
        from repro.dart.runner import _BudgetReached
        session = self.session
        checkpoint = session._resume()
        frontier = None
        if checkpoint is not None and checkpoint.worklist is not None:
            frontier = list(checkpoint.worklist)  # (stack, im, bound)
        self._next_dispatch = session.stats.iterations + 1
        self._next_commit = session.stats.iterations + 1
        self._start_pool()
        try:
            while True:  # random restarts, as in Fig. 2
                if frontier is None:
                    frontier = [([], InputVector(), 0)]
                    session._clean_drain = True
                    session._dedup_seen = set()
                if self._drain(frontier):
                    session._clear_checkpoint()
                    return session._result()
                if session._clean_drain and session._finished_complete():
                    session._clear_checkpoint()
                    return session._result()
                session.stats.random_restarts += 1
                frontier = None
        except _BudgetReached:
            session._truncated = True
            session._save_checkpoint()
            return session._result()
        finally:
            self._stop_pool()

    def _drain(self, pending):
        """Pipeline one frontier to empty; True = stop-on-first-error.

        Loop shape mirrors ``_Session.run_generational``: the worklist
        note, the autosave and the budget check happen once per commit,
        at the same session state a serial engine would see them (N runs
        committed, these remain) — so checkpoint cadence, the
        between-runs fault seam and budget truncation are
        engine-agnostic.
        """
        session = self.session
        while True:
            self._fill(pending)
            if self._next_commit == self._next_dispatch and not pending:
                return False  # pipeline and frontier drained
            self._note_worklist(pending)
            session._autosave()
            session._check_budget()
            result = self._await(self._next_commit)
            index = self._next_commit
            self._next_commit += 1
            stack, im, bound = self._items.pop(index)
            self._payloads.pop(index, None)
            self._nominees.pop(index, None)
            self._claims.pop(index, None)
            self._retried.discard(index)
            session.stats.iterations += 1  # == index, by construction
            if self._commit(result, index, im, pending):
                return True

    def _fill(self, pending):
        """Top the pipeline up to the window (deterministic schedule).

        Called only at drain start and after each commit, and pops are
        FIFO ("bfs") or session-RNG draws ("random") — so the dispatch
        sequence is a function of the committed prefix alone, never of
        worker timing.  The kill seam is consulted here, exactly once
        per dispatch index (re-dispatches never re-probe it).
        """
        session = self.session
        options = self.options
        injector = fault_points.ACTIVE
        while pending \
                and (self._next_dispatch - self._next_commit) < self.window \
                and self._next_dispatch <= options.max_iterations:
            if options.strategy == "random":
                item = pending.pop(session.rng.randrange(len(pending)))
            else:
                item = pending.pop(0)
            index = self._next_dispatch
            self._next_dispatch += 1
            stack, im, bound = item
            payload = {
                "stack": persist._encode_stack(stack),
                "im": persist._encode_im(im),
                "bound": bound,
                "seed": _item_seed(options.seed, index),
                "trace": session.trace.enabled,
                "profile": session.stats.phases.enabled,
            }
            if injector is not None and injector.worker_kill(index):
                # Parent-side kill decision, keyed on the dispatch index
                # (worker processes share no probe counter); the worker
                # dies right after claiming the item.
                payload["kill"] = True
            self._items[index] = item
            self._payloads[index] = payload
            if self._slots:
                self._nominees[index] = \
                    self._slots[(index - 1) % len(self._slots)]
            self._work_q.put((index, payload))
        session.stats.pool_inflight.set(
            self._next_dispatch - self._next_commit)

    def _note_worklist(self, pending):
        """Expose the uncommitted tail + frontier to the checkpointer."""
        pending_type = self._pending_type()
        session = self.session
        worklist = [
            pending_type(*self._items[index])
            for index in range(self._next_commit, self._next_dispatch)
        ]
        worklist.extend(pending_type(stack, im, bound)
                        for stack, im, bound in pending)
        session._worklist = worklist
        session.stats.worklist_depth.set(len(worklist))

    def _await(self, index):
        """Block until the head-of-line result is buffered."""
        while index not in self._buffer:
            self._pump(block=True)
            self._reap_deaths()
        return self._buffer.pop(index)

    def _pump(self, block=False):
        """Drain every available worker message into the parent state."""
        try:
            message = self._result_q.get(timeout=0.05) if block \
                else self._result_q.get_nowait()
        except Empty:
            return
        while True:
            self._on_message(message)
            try:
                message = self._result_q.get_nowait()
            except Empty:
                return

    def _on_message(self, message):
        session = self.session
        kind = message[0]
        if kind == "claim":
            _, wid, index = message
            if index < self._next_commit:
                return  # stale: a duplicate of an already-committed item
            first_claim = index not in self._claims
            self._claims[index] = wid
            nominee = self._nominees.get(index)
            if first_claim and nominee is not None and wid != nominee:
                session.stats.pool_steals += 1
                if session.trace.enabled:
                    session.trace.emit(tr.POOL_STEAL, index=index,
                                       worker=wid, nominee=nominee)
        elif kind == "result":
            _, wid, index, out, busy = message
            if index < self._next_commit or index in self._buffer:
                return  # duplicate (conservative re-dispatch): results
                # are pure functions of the payload, so dropping one of
                # two identical copies is lossless.
            self._busy_s += busy
            self._buffer[index] = out

    def _reap_deaths(self):
        """Detect dead workers; re-dispatch their claims, respawn.

        A worker flushes its claim before any injected kill, so once
        ``is_alive()`` turns False the claim is readable — messages are
        drained first, then every uncommitted, unbuffered item claimed
        by a dead worker is re-dispatched (kill flag stripped: the
        modeled crash is transient).  Unclaimed in-flight items are
        conservatively re-dispatched too — a real crash between taking
        a job and flushing the claim would otherwise strand its item —
        and the reorder buffer dedupes any resulting double execution.
        An item whose retry *also* dies is quarantined as data
        (deterministic crashes must not retry forever).
        """
        dead = [(wid, process) for wid, process in self._workers.items()
                if not process.is_alive()]
        if not dead:
            return
        session = self.session
        self._pump()
        lost = set()
        for wid, process in dead:
            process.join()
            del self._workers[wid]
            session.stats.pool_workers_lost += 1
            if self._server is not None:
                self._server.release_worker(wid)
            if session.trace.enabled:
                session.trace.emit(tr.WORKER_LOST, worker=wid,
                                   exitcode=process.exitcode)
            replacement = self._spawn_worker()
            for slot, occupant in enumerate(self._slots):
                if occupant == wid:
                    self._slots[slot] = replacement
            for index, claimant in self._claims.items():
                if claimant == wid and index >= self._next_commit \
                        and index not in self._buffer:
                    lost.add(index)
        for index in range(self._next_commit, self._next_dispatch):
            if index not in self._claims and index not in self._buffer:
                lost.add(index)
        if not lost:
            return
        session.stats.pool_retries += 1
        if session.trace.enabled:
            session.trace.emit(tr.POOL_RETRY, size=len(lost),
                               iteration=session.stats.iterations)
        for index in sorted(lost):
            if index in self._retried:
                # Second death on the same item: give it up as a
                # quarantined run; the commit path degrades the
                # completeness claim like any other quarantine.
                stack, im, bound = self._items[index]
                result = _failed_run("worker process died twice")
                result["quarantine"]["inputs"] = im.values()
                result["quarantine"]["kinds"] = [slot.kind for slot in im]
                result["planned"] = bool(stack)
                self._buffer[index] = result
                continue
            self._retried.add(index)
            self._claims.pop(index, None)
            payload = dict(self._payloads[index])
            payload.pop("kill", None)
            self._payloads[index] = payload
            self._work_q.put((index, payload))

    # -- commit (dispatch-order merge) --------------------------------------

    def _ship_events(self, result, iteration, new_path):
        """Re-emit one worker's events on the parent bus, in commit
        order, patching in what only the parent knows: the global
        iteration number and whether the run's path was globally new."""
        trace = self.session.trace
        if not trace.enabled:
            return
        for event in result.get("events") or ():
            event = dict(event)
            if "iteration" in event:
                event["iteration"] = iteration
            if event.get("type") == tr.RUN_FINISHED:
                event["new_path"] = new_path
            trace.forward(event)

    def _witness(self, result, iteration):
        """Record one worker run as a suite-export witness.

        Mirrors ``_Session._witness``: keyed on (path, error class),
        applied in commit order, so serial and pool sessions of the
        same search retain identical witness lists.
        """
        session = self.session
        error = result["error"]
        witness_error = None
        if error is not None:
            witness_error = {
                "kind": error["kind"],
                "message": error["message"],
                "location": error["location"],
            }
        path_key = tuple(result["path"])
        error_key = (witness_error["kind"], str(witness_error["location"])) \
            if witness_error is not None else None
        witness_key = (path_key, error_key)
        if witness_key in session._witnessed:
            return
        session._witnessed.add(witness_key)
        session.witnesses.append(PathWitness(
            result["inputs"], result["kinds"], path_key,
            {entry for entry in
             ((item[0], item[1], item[2]) for item in result["covered"])
             if is_program_branch(entry)},
            error=witness_error, iteration=iteration,
        ))
        session.stats.witnesses_recorded += 1

    def _commit(self, result, iteration, im, pending):
        """Fold one worker result into the session (commit order)."""
        session = self.session
        all_linear, all_locs, _forcing, all_faithful = result["flags"]
        if not all_linear:
            session.flags.clear_linear()
        if not all_locs:
            session.flags.clear_locs()
        if not all_faithful:
            session.flags.clear_faithful()
        # Deterministic instrument merge: counters add, gauges max,
        # histograms add elementwise; commit order makes it stable,
        # commutativity makes it independent of worker scheduling.
        session.stats.registry.merge(result["metrics"])
        if result.get("phases"):
            session.stats.phases.merge(result["phases"])
        session.stats.covered_branches.update(
            (entry[0], entry[1], entry[2]) for entry in result["covered"]
        )
        status = result["status"]
        if status == "mismatch":
            # The worker's hooks cleared forcing_ok and raised; the serial
            # engine restores the flag and drops the stale item, and so do
            # we — the mismatch only taints this drain's completeness.
            session.stats.forcing_failures += 1
            session._clean_drain = False
            self._ship_events(result, iteration, False)
            return False
        if status == "quarantined":
            record = result["quarantine"]
            session.flags.clear_linear()
            session.stats.quarantined.append(QuarantineRecord(
                record["classification"], record["inputs"],
                record["kinds"], iteration, record["detail"],
                trace_tail=record.get("trace_tail"),
            ))
            session._clean_drain = False
            self._ship_events(result, iteration, False)
            if session.trace.enabled:
                session.trace.emit(
                    tr.QUARANTINE,
                    classification=record["classification"],
                    iteration=iteration, detail=record["detail"],
                )
            return False
        new_path = session.stats.note_path(tuple(result["path"]))
        if result.get("planned"):
            session.stats.runs_forced += 1
        if session._collect_witnesses and result.get("inputs") is not None:
            self._witness(result, iteration)
        self._ship_events(result, iteration, new_path)
        error = result["error"]
        # Insert-time worklist dedup, exactly the serial engine's
        # (session._admit_children): the salt is this run's recorded
        # error key, so children of error-differing runs never collapse.
        # Commit order makes the seen-set evolution — and therefore the
        # dedup decisions, counters and events — identical to a serial
        # drain of the same frontier.
        salt = (error["kind"], str(error["location"])) \
            if error is not None else None
        children = (
            (persist._decode_stack(child["stack"]),
             persist._decode_im(child["im"]),
             child["bound"], child.get("fp"))
            for child in result["children"]
        )
        pending.extend(session._admit_children(children, salt))
        if error is not None:
            fault = RestoredFault(error["kind"], error["message"],
                                  error["location"])
            session.status = BUG_FOUND
            key = (fault.kind, str(fault.location))
            if key not in session._seen_error_keys:
                session._seen_error_keys.add(key)
                session.errors.append(ErrorReport(
                    fault, error["inputs"], iteration,
                    tuple(result["path"]), kinds=error["kinds"],
                ))
            return self.options.stop_on_first_error
        return False


def run_parallel_generational(session):
    """Entry point used by :meth:`repro.dart.runner.Dart.run`."""
    return _PoolEngine(session).run()
