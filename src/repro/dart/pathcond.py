"""Path constraints and the branch stack (Sections 2.2–2.3).

``stack[i] = (branch, done)`` records, for the (i+1)-th conditional executed,
which branch was taken (1 = then, 0 = else) and whether both branches have
already been explored with this history (Fig. 4's bookkeeping).

``path_constraint[i]`` is the symbolic conjunct asserted by that conditional
— a :class:`repro.symbolic.expr.CmpExpr`, possibly the bit-precise
:class:`repro.symbolic.widen.WidenedCmp` subclass when the comparison was
rewritten through run-anchored wrap quotients — or None when the predicate
had no symbolic content (a concrete-fallback branch, which cannot be
flipped by solving, including the last-resort case where no faithful
encoding existed and the widener dropped the conjunct).  The two lists are
always index-aligned, as in Fig. 5.

Every non-None conjunct is **faithful**: true of the very run that
recorded it.  The widening layer enforces this at record time; the slicer
re-checks it as a fallback-only barrier (see :mod:`repro.dart.slicing`).
"""


class StackEntry:
    """One conditional's record in the inter-run branch stack."""

    __slots__ = ("branch", "done")

    def __init__(self, branch, done=False):
        self.branch = branch
        self.done = done

    def flipped(self):
        return StackEntry(1 - self.branch, self.done)

    def copy(self):
        return StackEntry(self.branch, self.done)

    def __eq__(self, other):
        return (
            isinstance(other, StackEntry)
            and other.branch == self.branch
            and other.done == self.done
        )

    def __repr__(self):
        return "({}, {})".format(self.branch, 1 if self.done else 0)


class PathRecord:
    """The per-run pair of aligned lists: branch stack + path constraint."""

    def __init__(self):
        self.stack = []
        self.constraints = []

    def __len__(self):
        return len(self.stack)

    def append(self, branch, constraint):
        self.stack.append(StackEntry(branch))
        self.constraints.append(constraint)

    def path_key(self):
        """A hashable identifier for the executed path (for statistics)."""
        return tuple(entry.branch for entry in self.stack)
