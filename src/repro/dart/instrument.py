"""One instrumented execution (Fig. 3) and the stack check (Fig. 4).

:class:`DirectedHooks` plugs into the machine: it feeds the input vector
``IM`` to the ``__dart_*`` intrinsics (randomizing undefined slots) and, at
every conditional, appends the symbolic conjunct to the path constraint and
runs ``compare_and_update_stack`` against the branch outcomes predicted by
the previous run.  A prediction mismatch clears ``forcing_ok`` and raises
:class:`ForcingMismatch`, which the runner converts into a random restart —
the paper's graceful degradation when a solved input does not have the
expected effect.
"""

from repro.dart.inputs import domain_for_kind, random_value
from repro.dart.pathcond import PathRecord, StackEntry
from repro.symbolic.expr import InputVar


class ForcingMismatch(Exception):
    """The execution diverged from the predicted branch history."""

    def __init__(self, index, expected, actual):
        super().__init__(
            "conditional {} took branch {} but {} was predicted".format(
                index, actual, expected
            )
        )
        self.index = index
        self.expected = expected
        self.actual = actual


class DirectedHooks:
    """Machine hooks implementing the instrumented program's bookkeeping."""

    def __init__(self, im, predicted_stack, flags, rng, options):
        #: IM — mutated in place as undefined slots get randomized.
        self.im = im
        #: The (branch, done) records inherited from the previous run.
        self.stack = [entry.copy() for entry in predicted_stack]
        #: This run's aligned (stack, path constraint) record.
        self.record = PathRecord()
        self.flags = flags
        self._rng = rng
        self._options = options
        self._next_ordinal = 0

    # -- inputs ------------------------------------------------------------

    def acquire_input(self, kind):
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        value = self.im.value_or_none(ordinal, kind)
        if value is None:
            value = random_value(kind, self._rng)
            self.im.record(ordinal, kind, value)
        if kind == "ptr_choice" and not self._options.directed_pointer_choices:
            # Paper mode: the coin toss is plain randomness, invisible to
            # the symbolic execution (and hence never directable).  An
            # untracked input costs the completeness guarantee, so the
            # session can never falsely claim full path coverage.
            self.flags.clear_linear()
            return value, None
        lo, hi = domain_for_kind(kind)
        return value, InputVar(ordinal, kind, lo, hi)

    @property
    def inputs_consumed(self):
        return self._next_ordinal

    # -- conditionals ---------------------------------------------------------

    def on_branch(self, taken, constraint, location):
        branch = 1 if taken else 0
        k = len(self.record)
        self.record.append(branch, constraint)
        self._compare_and_update_stack(branch, k)

    def _compare_and_update_stack(self, branch, k):
        """Fig. 4, verbatim."""
        stack = self.stack
        if k < len(stack):
            if stack[k].branch != branch:
                self.flags.clear_forcing()
                raise ForcingMismatch(k, stack[k].branch, branch)
            if k == len(stack) - 1:
                stack[k].branch = branch
                stack[k].done = True
        else:
            stack.append(StackEntry(branch, done=False))

    def finished_stack(self):
        """The stack after a completed run.

        The run's own record and the inherited stack agree on every index
        by construction (mismatches raise); the inherited stack carries the
        ``done`` bits, extended by the new conditionals appended above.
        """
        return self.stack
