"""Test-driver generation (Section 3.2, Figs. 7–8).

Given a program and its extracted interface, this module *generates mini-C
source code* for a driver that simulates the most general environment:

* one ``__dart_init_<type>`` function per type reachable from the
  interface, implementing the recursive ``random_init`` of Fig. 8 —
  basic types read an input intrinsic, pointers toss the NULL-or-fresh
  coin (itself an input) and allocate with ``malloc``, structs and arrays
  recurse over their members (recursive types like lists yield data
  structures of unbounded size, exactly as the paper notes);
* a stub for every external function that returns a freshly initialized
  value of its return type (§3.4's side-effect-free environment model);
* a ``__dart_main`` that initializes external variables, then calls the
  toplevel function ``depth`` times with freshly initialized arguments
  (Fig. 7).

The driver text is appended to the program text and the combination is
compiled into a single self-executable module — "there is no need to write
any test driver or harness code".
"""

from repro.minic import compile_program
from repro.minic import typesys as ts
from repro.minic.errors import SemanticError
from repro.dart.interface import extract_interface

#: The generated entry point (never "main", to avoid colliding with one).
DRIVER_ENTRY = "__dart_main"

_BASIC_INTRINSICS = {
    (4, True): "__dart_int",
    (4, False): "__dart_uint",
    (2, True): "__dart_short",
    (2, False): "__dart_ushort",
    (1, True): "__dart_char",
    (1, False): "__dart_uchar",
}


def render_declarator(ctype, name):
    """Render ``ctype name`` as C declaration syntax."""
    if isinstance(ctype, ts.PointerType):
        return render_declarator(ctype.pointee, "*" + name)
    if isinstance(ctype, ts.ArrayType):
        return render_declarator(
            ctype.element, "{}[{}]".format(name, ctype.length)
        )
    return "{} {}".format(_base_name(ctype), name).rstrip()


def render_type(ctype):
    """Render an abstract type (for casts and sizeof)."""
    return render_declarator(ctype, "").rstrip()


def _base_name(ctype):
    if isinstance(ctype, ts.StructType):
        return "{} {}".format(
            "union" if ctype.is_union else "struct", ctype.tag
        )
    return str(ctype)


def _mangle(ctype):
    if isinstance(ctype, ts.IntType):
        return {
            (4, True): "int",
            (4, False): "uint",
            (2, True): "short",
            (2, False): "ushort",
            (1, True): "char",
            (1, False): "uchar",
        }[(ctype.size, ctype.signed)]
    if isinstance(ctype, ts.PointerType):
        return "p_" + _mangle_pointee(ctype.pointee)
    if isinstance(ctype, ts.ArrayType):
        return "a{}_{}".format(ctype.length, _mangle(ctype.element))
    if isinstance(ctype, ts.StructType):
        return "s_" + ctype.tag
    if isinstance(ctype, ts.VoidType):
        return "void"
    raise SemanticError("cannot generate driver code for {}".format(ctype))


def _mangle_pointee(ctype):
    if isinstance(ctype, ts.VoidType):
        return "void"
    return _mangle(ctype)


class DriverGenerator:
    """Emits the driver source for one interface.

    ``max_init_depth`` optionally bounds the recursion of ``random_init``:
    beyond that many pointer indirections the driver forces NULL (and does
    not consume a coin input).  The paper's driver is unbounded — recursive
    types yield "data structures of unbounded sizes" — which is the default
    (None); the bound is the practical variant used for library sweeps,
    where a directed search on the coins would otherwise grow structures
    without limit.
    """

    def __init__(self, interface, depth, max_init_depth=None):
        self._interface = interface
        self._depth = depth
        self._max_init_depth = max_init_depth
        self._emitted = {}  # mangled name -> function text
        self._order = []

    @property
    def _bounded(self):
        return self._max_init_depth is not None

    def _init_params(self):
        return ", int __dart_d" if self._bounded else ""

    def _init_args(self, expr):
        return "({}, __dart_d)".format(expr) if self._bounded \
            else "({})".format(expr)

    def _init_call_root(self, fn, expr):
        """An init call from main or a stub (recursion depth 0)."""
        if self._bounded:
            return "{}({}, 0);".format(fn, expr)
        return "{}({});".format(fn, expr)

    # -- init-function synthesis ------------------------------------------

    def _init_fn(self, ctype):
        """Ensure ``__dart_init_<m>`` exists for ``ctype``; returns its name."""
        name = "__dart_init_" + _mangle(ctype)
        if name in self._emitted:
            return name
        self._emitted[name] = None  # reserve: breaks recursive-type cycles
        body = self._init_body(ctype)
        text = "void {}({}{}) {{\n{}}}\n".format(
            name,
            render_declarator(ts.PointerType(ctype), "m"),
            self._init_params(),
            body,
        )
        self._emitted[name] = text
        self._order.append(name)
        return name

    def _init_body(self, ctype):
        if isinstance(ctype, ts.IntType):
            intrinsic = _BASIC_INTRINSICS[(ctype.size, ctype.signed)]
            return "    *m = {}();\n".format(intrinsic)
        if isinstance(ctype, ts.PointerType):
            return self._init_pointer_body(ctype.pointee)
        if isinstance(ctype, ts.StructType):
            fields = ctype.fields
            if ctype.is_union and fields:
                # Union members alias: initializing them all would leave
                # only the last write; fill the widest member instead so
                # every byte of the union is a (symbolically tracked)
                # input.
                widest = max(fields, key=lambda f: f.ctype.size)
                fields = [widest]
            lines = []
            for field in fields:
                fn = self._init_fn(field.ctype)
                lines.append(
                    "    {}{};\n".format(
                        fn, self._init_args("&(m->{})".format(field.name))
                    )
                )
            return "".join(lines)
        if isinstance(ctype, ts.ArrayType):
            fn = self._init_fn(ctype.element)
            return (
                "    int __dart_i;\n"
                "    for (__dart_i = 0; __dart_i < {}; __dart_i++) {{\n"
                "        {}{};\n"
                "    }}\n"
            ).format(
                ctype.length, fn, self._init_args("&((*m)[__dart_i])")
            )
        raise SemanticError(
            "cannot generate initialization for type {}".format(ctype)
        )

    def _init_pointer_body(self, pointee):
        """Fig. 8's pointer case: NULL or a freshly allocated, recursively
        initialized cell, chosen by a coin that is itself an input."""
        guard = "__dart_ptr_choice()"
        if self._bounded:
            # Short-circuit keeps the coin unconsumed past the bound.
            guard = "__dart_d < {} && __dart_ptr_choice()".format(
                self._max_init_depth
            )
        if pointee.is_void() or not pointee.is_complete():
            # Opaque target: allocate raw bytes, nothing to initialize.
            return (
                "    if ({}) {{\n"
                "        *m = malloc(8);\n"
                "    }} else {{\n"
                "        *m = NULL;\n"
                "    }}\n"
            ).format(guard)
        fn = self._init_fn(pointee)
        cast = "({})".format(render_type(ts.PointerType(pointee)))
        nested = "{}(*m, __dart_d + 1);" if self._bounded else "{}(*m);"
        return (
            "    if ({}) {{\n"
            "        *m = {} malloc(sizeof({}));\n"
            "        {}\n"
            "    }} else {{\n"
            "        *m = NULL;\n"
            "    }}\n"
        ).format(guard, cast, render_type(pointee), nested.format(fn))

    # -- external function stubs --------------------------------------------

    def _stub(self, name, ftype):
        params = []
        for index, ptype in enumerate(ftype.param_types):
            params.append(render_declarator(ptype, "__dart_p{}".format(index)))
        params_text = ", ".join(params) if params else "void"
        ret = ftype.return_type
        if ret.is_void():
            body = "    return;\n"
            header = "void {}({})".format(name, params_text)
        else:
            fn = self._init_fn(ret)
            body = (
                "    {};\n"
                "    {}\n"
                "    return __dart_tmp;\n"
            ).format(
                render_declarator(ret, "__dart_tmp"),
                self._init_call_root(fn, "&__dart_tmp"),
            )
            header = render_declarator(
                ret, "{}({})".format(name, params_text)
            )
        return "{} {{\n{}}}\n".format(header, body)

    # -- main ------------------------------------------------------------------

    def generate(self):
        chunks = [
            "\n/* ---- DART-generated test driver (Figs. 7-8) ---- */\n"
        ]
        stubs = []
        for name, ftype in sorted(self._interface.external_functions.items()):
            stubs.append(self._stub(name, ftype))
        main_lines = ["void {}(void) {{\n".format(DRIVER_ENTRY)]
        main_lines.append("    int __dart_depth_i;\n")
        arg_decls = []
        arg_names = []
        for index, ptype in enumerate(self._interface.param_types):
            arg = "__dart_arg{}".format(index)
            arg_names.append(arg)
            arg_decls.append(
                "        {};\n".format(render_declarator(ptype, arg))
            )
        for name, ctype in sorted(
            self._interface.external_variables.items()
        ):
            fn = self._init_fn(ctype)
            main_lines.append(
                "    {}\n".format(self._init_call_root(fn, "&" + name))
            )
        main_lines.append(
            "    for (__dart_depth_i = 0; __dart_depth_i < {}; "
            "__dart_depth_i++) {{\n".format(self._depth)
        )
        main_lines.extend(arg_decls)
        for index, ptype in enumerate(self._interface.param_types):
            fn = self._init_fn(ptype)
            main_lines.append(
                "        {}\n".format(
                    self._init_call_root(fn, "&" + arg_names[index])
                )
            )
        main_lines.append(
            "        {}({});\n".format(
                self._interface.toplevel, ", ".join(arg_names)
            )
        )
        main_lines.append("    }\n")
        main_lines.append("}\n")
        for name in self._order:
            chunks.append(self._emitted[name])
        chunks.extend(stubs)
        chunks.append("".join(main_lines))
        return "".join(chunks)


def generate_driver(interface, depth=1, max_init_depth=None):
    """Generate mini-C driver source text for ``interface``."""
    return DriverGenerator(interface, depth, max_init_depth).generate()


def build_test_program(source, toplevel, depth=1, filename="<program>",
                       max_init_depth=None):
    """Interface extraction + driver generation + compilation, in one step.

    Returns the compiled :class:`repro.minic.ir.Module` of the combined
    program+driver, whose entry point is :data:`DRIVER_ENTRY`.
    """
    interface, _ = extract_interface(source, toplevel, filename=filename)
    driver = generate_driver(interface, depth=depth,
                             max_init_depth=max_init_depth)
    return compile_program(source + driver, filename=filename)
