"""Inter-run state persistence and v2 session checkpoints.

The paper's architecture re-executes the instrumented *process* for every
run, so the branch stack and the input vector are "kept in a file between
executions" (Section 2.3) and a crash loses at most one execution.  Our
runs share a Python process, so the same durability is provided by
*session checkpoints*: pass ``DartOptions(state_file=...)`` and the runner
periodically serializes everything needed to resume — engine kind, the
pending worklist, the RNG state, statistics, discovered errors, covered
branches — plus a **program fingerprint** (source hash + toplevel +
options digest) so a stale checkpoint from a different program or
configuration is rejected instead of silently replayed, and a checksum so
a torn or corrupted file is detected.

Two formats live here:

* **v1** (``save_state``/``load_state``): the bare dfs (stack, IM) pair,
  kept for compatibility with the paper's literal "stack in a file".
* **v2** (``save_checkpoint``/``load_checkpoint``): the full session
  checkpoint used by the runner::

      {"version": 2, "checksum": "<sha256 of the body>",
       "body": {"fingerprint": {...}, "engine": ..., "rng": ...,
                "counters": {...}, "errors": [...], ...}}

Writes are atomic and durable: the payload goes to a temp file which is
fsynced (as is the containing directory) before ``os.replace``, a failed
write unlinks the temp file so an ENOSPC can never leave a stale
``.tmp`` beside a valid checkpoint, and SIGINT/SIGTERM are deferred for
the duration of the write so an interrupt cannot tear the sequence —
the signal is re-delivered to the previous handler the moment the write
completes.  The write and load paths carry fault-injection seams
(:mod:`repro.faults.points`): ENOSPC, partial writes and post-save
corruption are all injectable, and the chaos harness asserts the
invariants above hold under them.
"""

import contextlib
import errno
import hashlib
import json
import os
import signal

from repro.dart.inputs import InputVector
from repro.dart.pathcond import StackEntry
from repro.faults import points as fault_points

_VERSION = 1
_CHECKPOINT_VERSION = 2


# -- shared encoding helpers -------------------------------------------------

def _encode_stack(stack):
    return [[entry.branch, 1 if entry.done else 0] for entry in stack]


def _decode_stack(payload):
    return [StackEntry(int(branch), bool(done)) for branch, done in payload]


def _encode_im(im):
    return [[slot.kind, slot.value] for slot in im]


def _decode_im(payload):
    im = InputVector()
    for ordinal, (kind, value) in enumerate(payload):
        im.record(ordinal, kind, int(value))
    return im


def encode_input_vector(im):
    """Public JSON encoding of an :class:`InputVector`: ``[[kind, value],
    ...]`` in ordinal order — the format checkpoints, fuzz repros and
    exported suite artifacts (:mod:`repro.suite`) all share."""
    return _encode_im(im)


def decode_input_vector(payload):
    """Inverse of :func:`encode_input_vector` (kinds preserved, so
    pointer-choice slots are rebuilt with the right domains)."""
    return _decode_im(payload)


@contextlib.contextmanager
def _defer_signals():
    """Hold SIGINT/SIGTERM for the duration of the block.

    A signal arriving mid-write is recorded and re-delivered to the
    *previous* handler immediately after the block, so the atomic-write
    sequence (write temp, fsync, rename) can never be torn by an
    interrupt: either the old checkpoint survives intact or the new one
    is complete.  Off the main thread (where ``signal.signal`` is
    unavailable) the block runs unprotected — exactly the prior
    behaviour.
    """
    deferred = []
    previous = {}

    def _defer(signum, frame):
        deferred.append((signum, frame))

    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, _defer)
    except ValueError:  # not the main thread
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        for signum, frame in deferred:
            handler = previous.get(signum)
            if callable(handler):
                # Includes Python's default_int_handler, which raises
                # KeyboardInterrupt — exactly the deferred delivery.
                handler(signum, frame)
            elif handler != signal.SIG_IGN:
                # SIG_DFL: re-deliver with the default disposition now
                # that the original handler is restored.
                os.kill(os.getpid(), signum)


def _atomic_write(path, payload):
    """Durably replace ``path`` with ``payload`` as JSON, or change
    nothing: temp file + fsync (file and directory) + rename, with the
    temp file unlinked on any failure."""
    tmp_path = path + ".tmp"
    with _defer_signals():
        handle = open(tmp_path, "w")
        try:
            injector = fault_points.ACTIVE
            if injector is not None:
                mode = injector.checkpoint_write()
                if mode == "partial":
                    handle.write(json.dumps(payload)[: 40])
                    handle.flush()
                if mode is not None:
                    raise OSError(errno.ENOSPC, "injected: no space left "
                                                "on device", tmp_path)
                injector.mid_checkpoint()
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        except BaseException:
            handle.close()
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        handle.close()
        os.replace(tmp_path, path)
        _fsync_directory(os.path.dirname(os.path.abspath(path)))


def _fsync_directory(directory):
    """Persist the rename itself (best effort where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _body_checksum(body):
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- v1: the paper's bare (stack, IM) pair -----------------------------------

def save_state(path, stack, im):
    """Atomically write the predicted stack and input vector."""
    _atomic_write(path, {
        "version": _VERSION,
        "stack": _encode_stack(stack),
        "im": _encode_im(im),
    })


def load_state(path):
    """Read a saved (stack, im) pair; returns None if absent/invalid."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return None
    try:
        stack = _decode_stack(payload["stack"])
        im = _decode_im(payload["im"])
    except (KeyError, TypeError, ValueError):
        return None
    return stack, im


def clear_state(path):
    """Remove the state file (called when a search finishes cleanly)."""
    try:
        os.remove(path)
    except OSError:
        pass


# -- v2: full session checkpoints --------------------------------------------

class SessionCheckpoint:
    """Everything a suspended session needs to resume exactly.

    The runner builds one of these every K runs / on budget exhaustion /
    on SIGINT, and consumes one at session start.  All fields are plain
    JSON-serializable data; the runner owns the translation to and from
    its live objects (see ``_Session.checkpoint`` / ``_restore``).
    """

    def __init__(self, fingerprint, engine, rng_state, flags, counters,
                 distinct_paths, covered_branches, errors, quarantined,
                 dfs_pending=None, worklist=None, clean_drain=True,
                 witnesses=None, dedup_seen=None):
        #: {"source": sha256, "toplevel": name, "options": digest}.
        self.fingerprint = fingerprint
        #: "dfs" or "generational" — a checkpoint never crosses engines.
        self.engine = engine
        #: ``random.Random().getstate()`` (tuples converted on load).
        self.rng_state = rng_state
        #: (all_linear, all_locs_definite, forcing_ok).
        self.flags = flags
        #: RunStats integer counters, keyed by attribute name.
        self.counters = counters
        #: List of path keys (tuples of branch bits).
        self.distinct_paths = distinct_paths
        #: List of (function, pc, taken) triples.
        self.covered_branches = covered_branches
        #: ErrorReport.to_dict() payloads.
        self.errors = errors
        #: QuarantineRecord.to_dict() payloads.
        self.quarantined = quarantined
        #: dfs engine: the next (stack, im) plan, or None.
        self.dfs_pending = dfs_pending
        #: generational engine: list of (stack, im, bound) items, or None.
        self.worklist = worklist
        #: generational engine: False once a mismatch tainted this drain.
        self.clean_drain = clean_drain
        #: PathWitness.to_dict() payloads (witness collection on), or [].
        #: Optional: checkpoints written before the suite subsystem carry
        #: no ``witnesses`` key and decode to an empty list.
        self.witnesses = witnesses if witnesses is not None else []
        #: generational engine: ``[fingerprint, error-salt-or-None]``
        #: pairs of every child enqueued this drain (the worklist-dedup
        #: seen set), so a resume keeps deduping against work already
        #: spent.  Optional — absent decodes to an empty list.
        self.dedup_seen = dedup_seen if dedup_seen is not None else []

    # -- encoding ---------------------------------------------------------

    def to_body(self):
        body = {
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "rng": [self.rng_state[0], list(self.rng_state[1]),
                    self.rng_state[2]],
            "flags": list(self.flags),
            "counters": dict(self.counters),
            "distinct_paths": [list(path) for path in self.distinct_paths],
            "covered_branches": [list(entry)
                                 for entry in self.covered_branches],
            "errors": list(self.errors),
            "quarantined": list(self.quarantined),
            "clean_drain": self.clean_drain,
        }
        if self.witnesses:
            body["witnesses"] = list(self.witnesses)
        if self.dfs_pending is not None:
            stack, im = self.dfs_pending
            body["dfs"] = {"stack": _encode_stack(stack),
                           "im": _encode_im(im)}
        if self.worklist is not None:
            body["worklist"] = [
                {"stack": _encode_stack(stack), "im": _encode_im(im),
                 "bound": bound}
                for stack, im, bound in self.worklist
            ]
        if self.dedup_seen:
            body["dedup_seen"] = [
                [fp, list(salt) if salt is not None else None]
                for fp, salt in self.dedup_seen
            ]
        return body

    @classmethod
    def from_body(cls, body):
        rng = body["rng"]
        dfs_pending = None
        if "dfs" in body:
            dfs_pending = (_decode_stack(body["dfs"]["stack"]),
                           _decode_im(body["dfs"]["im"]))
        worklist = None
        if "worklist" in body:
            worklist = [
                (_decode_stack(item["stack"]), _decode_im(item["im"]),
                 int(item["bound"]))
                for item in body["worklist"]
            ]
        return cls(
            fingerprint=dict(body["fingerprint"]),
            engine=body["engine"],
            rng_state=(rng[0], tuple(rng[1]), rng[2]),
            flags=tuple(bool(flag) for flag in body["flags"]),
            counters={key: int(value)
                      for key, value in body["counters"].items()},
            distinct_paths=[tuple(path) for path in body["distinct_paths"]],
            covered_branches=[
                (entry[0], int(entry[1]), bool(entry[2]))
                for entry in body["covered_branches"]
            ],
            errors=list(body["errors"]),
            quarantined=list(body["quarantined"]),
            dfs_pending=dfs_pending,
            worklist=worklist,
            clean_drain=bool(body.get("clean_drain", True)),
            witnesses=list(body.get("witnesses", ())),
            dedup_seen=[
                (entry[0], tuple(entry[1]) if entry[1] is not None else None)
                for entry in body.get("dedup_seen", ())
            ],
        )


def save_checkpoint(path, checkpoint):
    """Atomically write a v2 session checkpoint with a body checksum."""
    body = checkpoint.to_body()
    _atomic_write(path, {
        "version": _CHECKPOINT_VERSION,
        "checksum": _body_checksum(body),
        "body": body,
    })
    injector = fault_points.ACTIVE
    if injector is not None:
        # Post-save corruption (torn storage, bit rot): the *next* load
        # must catch it via the checksum and reseed cleanly.
        injector.saved_checkpoint(path)


def load_checkpoint_ex(path, fingerprint):
    """Read and validate a v2 checkpoint; ``(checkpoint, reason)``.

    The checkpoint is None whenever it must not be used, and ``reason``
    tells the caller how much to trust the world:

    * ``"ok"`` — a valid, matching checkpoint (first element non-None).
    * ``"missing"`` — no file at all: a clean first start.
    * ``"version"`` — a valid file in a different format (e.g. a v1
      state file); legitimate, restart cleanly.
    * ``"fingerprint"`` — a valid checkpoint for a *different* program,
      toplevel or configuration; legitimate, restart cleanly.
    * ``"corrupt"`` — the file exists but is unreadable, structurally
      wrong, or fails its checksum: state was **lost**, and the caller
      must degrade (quarantine-style record, completeness cleared)
      rather than silently pretend it started fresh.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        return None, "missing"
    except (OSError, ValueError):
        return None, "corrupt"
    if not isinstance(payload, dict):
        return None, "corrupt"
    if payload.get("version") != _CHECKPOINT_VERSION:
        # Recognizably a *different* format (the v1 state file, a future
        # version) is a legitimate mismatch; anything else is damage.
        if isinstance(payload.get("version"), int):
            return None, "version"
        return None, "corrupt"
    body = payload.get("body")
    if not isinstance(body, dict):
        return None, "corrupt"
    if _body_checksum(body) != payload.get("checksum"):
        return None, "corrupt"
    if body.get("fingerprint") != fingerprint:
        return None, "fingerprint"
    try:
        return SessionCheckpoint.from_body(body), "ok"
    except (KeyError, IndexError, TypeError, ValueError):
        return None, "corrupt"


def load_checkpoint(path, fingerprint):
    """Read and validate a v2 checkpoint; None when it must not be used.

    Rejected (returning None, so the caller restarts cleanly): a missing
    or unreadable file, a version mismatch, a checksum mismatch (torn or
    corrupted write), and — crucially — a **fingerprint mismatch**: a
    checkpoint written for a different program source, toplevel function
    or search-relevant configuration.  Callers that need to distinguish
    *why* use :func:`load_checkpoint_ex`.
    """
    checkpoint, _ = load_checkpoint_ex(path, fingerprint)
    return checkpoint
