"""Inter-run state persistence and v2 session checkpoints.

The paper's architecture re-executes the instrumented *process* for every
run, so the branch stack and the input vector are "kept in a file between
executions" (Section 2.3) and a crash loses at most one execution.  Our
runs share a Python process, so the same durability is provided by
*session checkpoints*: pass ``DartOptions(state_file=...)`` and the runner
periodically serializes everything needed to resume — engine kind, the
pending worklist, the RNG state, statistics, discovered errors, covered
branches — plus a **program fingerprint** (source hash + toplevel +
options digest) so a stale checkpoint from a different program or
configuration is rejected instead of silently replayed, and a checksum so
a torn or corrupted file is detected.

Two formats live here:

* **v1** (``save_state``/``load_state``): the bare dfs (stack, IM) pair,
  kept for compatibility with the paper's literal "stack in a file".
* **v2** (``save_checkpoint``/``load_checkpoint``): the full session
  checkpoint used by the runner::

      {"version": 2, "checksum": "<sha256 of the body>",
       "body": {"fingerprint": {...}, "engine": ..., "rng": ...,
                "counters": {...}, "errors": [...], ...}}

Writes are atomic (write to a temp file, then ``os.replace``).
"""

import hashlib
import json
import os

from repro.dart.inputs import InputVector
from repro.dart.pathcond import StackEntry

_VERSION = 1
_CHECKPOINT_VERSION = 2


# -- shared encoding helpers -------------------------------------------------

def _encode_stack(stack):
    return [[entry.branch, 1 if entry.done else 0] for entry in stack]


def _decode_stack(payload):
    return [StackEntry(int(branch), bool(done)) for branch, done in payload]


def _encode_im(im):
    return [[slot.kind, slot.value] for slot in im]


def _decode_im(payload):
    im = InputVector()
    for ordinal, (kind, value) in enumerate(payload):
        im.record(ordinal, kind, int(value))
    return im


def _atomic_write(path, payload):
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)


def _body_checksum(body):
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# -- v1: the paper's bare (stack, IM) pair -----------------------------------

def save_state(path, stack, im):
    """Atomically write the predicted stack and input vector."""
    _atomic_write(path, {
        "version": _VERSION,
        "stack": _encode_stack(stack),
        "im": _encode_im(im),
    })


def load_state(path):
    """Read a saved (stack, im) pair; returns None if absent/invalid."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return None
    try:
        stack = _decode_stack(payload["stack"])
        im = _decode_im(payload["im"])
    except (KeyError, TypeError, ValueError):
        return None
    return stack, im


def clear_state(path):
    """Remove the state file (called when a search finishes cleanly)."""
    try:
        os.remove(path)
    except OSError:
        pass


# -- v2: full session checkpoints --------------------------------------------

class SessionCheckpoint:
    """Everything a suspended session needs to resume exactly.

    The runner builds one of these every K runs / on budget exhaustion /
    on SIGINT, and consumes one at session start.  All fields are plain
    JSON-serializable data; the runner owns the translation to and from
    its live objects (see ``_Session.checkpoint`` / ``_restore``).
    """

    def __init__(self, fingerprint, engine, rng_state, flags, counters,
                 distinct_paths, covered_branches, errors, quarantined,
                 dfs_pending=None, worklist=None, clean_drain=True):
        #: {"source": sha256, "toplevel": name, "options": digest}.
        self.fingerprint = fingerprint
        #: "dfs" or "generational" — a checkpoint never crosses engines.
        self.engine = engine
        #: ``random.Random().getstate()`` (tuples converted on load).
        self.rng_state = rng_state
        #: (all_linear, all_locs_definite, forcing_ok).
        self.flags = flags
        #: RunStats integer counters, keyed by attribute name.
        self.counters = counters
        #: List of path keys (tuples of branch bits).
        self.distinct_paths = distinct_paths
        #: List of (function, pc, taken) triples.
        self.covered_branches = covered_branches
        #: ErrorReport.to_dict() payloads.
        self.errors = errors
        #: QuarantineRecord.to_dict() payloads.
        self.quarantined = quarantined
        #: dfs engine: the next (stack, im) plan, or None.
        self.dfs_pending = dfs_pending
        #: generational engine: list of (stack, im, bound) items, or None.
        self.worklist = worklist
        #: generational engine: False once a mismatch tainted this drain.
        self.clean_drain = clean_drain

    # -- encoding ---------------------------------------------------------

    def to_body(self):
        body = {
            "fingerprint": self.fingerprint,
            "engine": self.engine,
            "rng": [self.rng_state[0], list(self.rng_state[1]),
                    self.rng_state[2]],
            "flags": list(self.flags),
            "counters": dict(self.counters),
            "distinct_paths": [list(path) for path in self.distinct_paths],
            "covered_branches": [list(entry)
                                 for entry in self.covered_branches],
            "errors": list(self.errors),
            "quarantined": list(self.quarantined),
            "clean_drain": self.clean_drain,
        }
        if self.dfs_pending is not None:
            stack, im = self.dfs_pending
            body["dfs"] = {"stack": _encode_stack(stack),
                           "im": _encode_im(im)}
        if self.worklist is not None:
            body["worklist"] = [
                {"stack": _encode_stack(stack), "im": _encode_im(im),
                 "bound": bound}
                for stack, im, bound in self.worklist
            ]
        return body

    @classmethod
    def from_body(cls, body):
        rng = body["rng"]
        dfs_pending = None
        if "dfs" in body:
            dfs_pending = (_decode_stack(body["dfs"]["stack"]),
                           _decode_im(body["dfs"]["im"]))
        worklist = None
        if "worklist" in body:
            worklist = [
                (_decode_stack(item["stack"]), _decode_im(item["im"]),
                 int(item["bound"]))
                for item in body["worklist"]
            ]
        return cls(
            fingerprint=dict(body["fingerprint"]),
            engine=body["engine"],
            rng_state=(rng[0], tuple(rng[1]), rng[2]),
            flags=tuple(bool(flag) for flag in body["flags"]),
            counters={key: int(value)
                      for key, value in body["counters"].items()},
            distinct_paths=[tuple(path) for path in body["distinct_paths"]],
            covered_branches=[
                (entry[0], int(entry[1]), bool(entry[2]))
                for entry in body["covered_branches"]
            ],
            errors=list(body["errors"]),
            quarantined=list(body["quarantined"]),
            dfs_pending=dfs_pending,
            worklist=worklist,
            clean_drain=bool(body.get("clean_drain", True)),
        )


def save_checkpoint(path, checkpoint):
    """Atomically write a v2 session checkpoint with a body checksum."""
    body = checkpoint.to_body()
    _atomic_write(path, {
        "version": _CHECKPOINT_VERSION,
        "checksum": _body_checksum(body),
        "body": body,
    })


def load_checkpoint(path, fingerprint):
    """Read and validate a v2 checkpoint; None when it must not be used.

    Rejected (returning None, so the caller restarts cleanly): a missing
    or unreadable file, a version mismatch, a checksum mismatch (torn or
    corrupted write), and — crucially — a **fingerprint mismatch**: a
    checkpoint written for a different program source, toplevel function
    or search-relevant configuration.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) \
            or payload.get("version") != _CHECKPOINT_VERSION:
        return None
    body = payload.get("body")
    if not isinstance(body, dict):
        return None
    if _body_checksum(body) != payload.get("checksum"):
        return None
    if body.get("fingerprint") != fingerprint:
        return None
    try:
        return SessionCheckpoint.from_body(body)
    except (KeyError, IndexError, TypeError, ValueError):
        return None
