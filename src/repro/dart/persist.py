"""Inter-run state persistence.

The paper's architecture re-executes the instrumented *process* for every
run, so the branch stack and the input vector are "kept in a file between
executions" (Section 2.3).  Our runs share a Python process and normally
pass the state in memory, but the same file format is supported so that a
directed search can be suspended (budget exhausted, process killed) and
resumed later: pass ``DartOptions(state_file=...)`` and re-run.

The file holds one JSON object::

    {"version": 1,
     "stack": [[branch, done], ...],
     "im": [[kind, value], ...]}
"""

import json
import os

from repro.dart.inputs import InputVector
from repro.dart.pathcond import StackEntry

_VERSION = 1


def save_state(path, stack, im):
    """Atomically write the predicted stack and input vector."""
    payload = {
        "version": _VERSION,
        "stack": [[entry.branch, 1 if entry.done else 0]
                  for entry in stack],
        "im": [[slot.kind, slot.value] for slot in im],
    }
    tmp_path = path + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp_path, path)


def load_state(path):
    """Read a saved (stack, im) pair; returns None if absent/invalid."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        return None
    try:
        stack = [
            StackEntry(int(branch), bool(done))
            for branch, done in payload["stack"]
        ]
        im = InputVector()
        for ordinal, (kind, value) in enumerate(payload["im"]):
            im.record(ordinal, kind, int(value))
    except (KeyError, TypeError, ValueError):
        return None
    return stack, im


def clear_state(path):
    """Remove the state file (called when a search finishes cleanly)."""
    try:
        os.remove(path)
    except OSError:
        pass
