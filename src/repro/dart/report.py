"""Result and report types for DART and random-testing sessions."""

import time

#: Session outcome statuses (Theorem 1's three cases, plus budget cutoffs).
BUG_FOUND = "bug_found"  # case (a): a sound error was found
COMPLETE = "complete"  # case (b): all feasible paths explored, no bug
EXHAUSTED = "exhausted"  # budget/time ran out (case (c) in the limit)


class ErrorReport:
    """One detected program error, with everything needed to replay it."""

    def __init__(self, fault, inputs, iteration, path=None):
        #: The ExecutionFault instance (abort, assertion, segfault, ...).
        self.fault = fault
        #: The input vector (list of raw values) that triggers the error.
        self.inputs = inputs
        #: 1-based run index at which the error was found.
        self.iteration = iteration
        #: Branch signature of the erroneous path, when available.
        self.path = path

    @property
    def kind(self):
        return self.fault.kind

    @property
    def location(self):
        return self.fault.location

    def describe(self):
        return "{} (run {}, inputs {})".format(
            self.fault.describe(), self.iteration, self.inputs
        )

    def __repr__(self):
        return "ErrorReport({!r})".format(self.describe())


class RunStats:
    """Counters accumulated over a session."""

    def __init__(self):
        self.iterations = 0
        self.paths_explored = 0
        self.distinct_paths = set()
        self.solver_calls = 0
        self.solver_sat = 0
        self.solver_unsat = 0
        self.solver_unknown = 0
        self.forcing_failures = 0
        self.random_restarts = 0
        self.branches_executed = 0
        self.machine_steps = 0
        self.covered_branches = set()
        self.started_at = time.perf_counter()
        self.elapsed = 0.0

    def finish(self):
        self.elapsed = time.perf_counter() - self.started_at

    def note_path(self, path_key):
        self.paths_explored += 1
        self.distinct_paths.add(path_key)

    def summary(self):
        return {
            "iterations": self.iterations,
            "paths": self.paths_explored,
            "distinct_paths": len(self.distinct_paths),
            "solver_calls": self.solver_calls,
            "solver_sat": self.solver_sat,
            "solver_unsat": self.solver_unsat,
            "solver_unknown": self.solver_unknown,
            "forcing_failures": self.forcing_failures,
            "random_restarts": self.random_restarts,
            "branches": self.branches_executed,
            "steps": self.machine_steps,
            "elapsed_s": round(self.elapsed, 4),
        }


class DartResult:
    """Outcome of a DART (or random-testing) session."""

    def __init__(self, status, errors, stats, flags_snapshot,
                 coverage=None):
        self.status = status
        self.errors = errors
        self.stats = stats
        #: (all_linear, all_locs_definite, forcing_ok) at session end.
        self.flags = flags_snapshot
        #: Branch-direction coverage of the program under test
        #: (:class:`repro.dart.coverage.BranchCoverage`), or None.
        self.coverage = coverage

    @property
    def found_error(self):
        return bool(self.errors)

    @property
    def iterations(self):
        return self.stats.iterations

    @property
    def complete(self):
        """True when termination proves full path coverage (Theorem 1(b))."""
        return self.status == COMPLETE

    def first_error(self):
        return self.errors[0] if self.errors else None

    def describe(self):
        if self.status == BUG_FOUND:
            return "Bug found after {} run(s): {}".format(
                self.errors[0].iteration, self.errors[0].describe()
            )
        if self.status == COMPLETE:
            return (
                "No bug; all {} feasible paths explored in {} run(s)"
            ).format(len(self.stats.distinct_paths), self.iterations)
        return "Budget exhausted after {} run(s); {} error(s) found".format(
            self.iterations, len(self.errors)
        )

    def __repr__(self):
        return "DartResult({!r})".format(self.describe())
