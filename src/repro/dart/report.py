"""Result and report types for DART and random-testing sessions.

Session statistics are no longer an ad-hoc bag of ints: every counter of
:class:`RunStats` is an instrument in a
:class:`repro.obs.metrics.MetricsRegistry` (attribute access is a thin
facade), which gives all of them deterministic cross-worker merging,
JSON round-trips, and sits histograms (solver latency, path length) and
the opt-in :class:`repro.obs.profile.PhaseTimer` next to them in one
catalog — see ``docs/OBSERVABILITY.md``.
"""

import time

from repro.obs.metrics import (
    PATH_LENGTH_BUCKETS,
    SOLVER_LATENCY_BUCKETS_S,
    MetricsRegistry,
)
from repro.obs.profile import PhaseTimer

#: Session outcome statuses (Theorem 1's three cases, plus budget cutoffs).
BUG_FOUND = "bug_found"  # case (a): a sound error was found
COMPLETE = "complete"  # case (b): all feasible paths explored, no bug
EXHAUSTED = "exhausted"  # budget/time ran out (case (c) in the limit)
INTERRUPTED = "interrupted"  # SIGINT/SIGTERM: checkpointed partial result

#: Quarantine classifications for runs aborted at the fault boundary.
INTERNAL_ERROR = "internal-error"  # harness bug escaped the machine
RUN_TIMEOUT = "run-timeout"  # the per-run wall-clock watchdog tripped
RESOURCE_EXHAUSTED = "resource-exhausted"  # RecursionError / MemoryError
#: Quarantine-style classification for a checkpoint file that existed
#: but failed structural validation (torn write, bit rot): the session
#: reseeds from scratch instead of crashing, records one of these, and
#: no longer claims completeness — whatever the lost checkpoint held
#: (errors, quarantines) cannot be vouched for.
CHECKPOINT_CORRUPT = "checkpoint-corrupt"


class ErrorReport:
    """One detected program error, with everything needed to replay it."""

    def __init__(self, fault, inputs, iteration, path=None, kinds=None):
        #: The ExecutionFault instance (abort, assertion, segfault, ...).
        self.fault = fault
        #: The input vector (list of raw values) that triggers the error.
        self.inputs = inputs
        #: 1-based run index at which the error was found.
        self.iteration = iteration
        #: Branch signature of the erroneous path, when available.
        self.path = path
        #: Input kinds aligned with ``inputs`` ("int", "ptr_choice", ...);
        #: replay needs them to rebuild slots with the right domains.
        self.kinds = list(kinds) if kinds is not None \
            else ["int"] * len(inputs)

    @property
    def kind(self):
        return self.fault.kind

    @property
    def location(self):
        return self.fault.location

    def describe(self):
        return "{} (run {}, inputs {})".format(
            self.fault.describe(), self.iteration, self.inputs
        )

    def to_dict(self):
        """A JSON-ready representation (also the checkpoint format)."""
        return {
            "kind": self.fault.kind,
            "message": getattr(self.fault, "message", str(self.fault)),
            "location": str(self.fault.location)
            if self.fault.location is not None else None,
            "inputs": list(self.inputs),
            "kinds": list(self.kinds),
            "iteration": self.iteration,
            "path": list(self.path) if self.path is not None else None,
        }

    def __repr__(self):
        return "ErrorReport({!r})".format(self.describe())


class QuarantineRecord:
    """One run aborted at the fault boundary, kept for post-mortem.

    The paper's process-per-run architecture loses at most one execution
    to a crash; this record is the in-process equivalent — the triggering
    input vector plus a classification and a compact traceback summary,
    so a harness bug (or a pathological run) costs one iteration instead
    of the session.
    """

    def __init__(self, classification, inputs, kinds, iteration, detail,
                 trace_tail=None):
        #: One of INTERNAL_ERROR, RUN_TIMEOUT, RESOURCE_EXHAUSTED.
        self.classification = classification
        #: The input vector values at the moment the run died.
        self.inputs = list(inputs)
        #: Input kinds aligned with ``inputs``.
        self.kinds = list(kinds)
        #: 1-based run index of the quarantined execution.
        self.iteration = iteration
        #: Exception type, message and innermost harness frame.
        self.detail = detail
        #: With tracing enabled: the last trace events before the fault
        #: (the ring-buffer flight recorder), or None.
        self.trace_tail = trace_tail

    def describe(self):
        return "{} (run {}, inputs {}): {}".format(
            self.classification, self.iteration, self.inputs, self.detail
        )

    def to_dict(self):
        payload = {
            "classification": self.classification,
            "inputs": list(self.inputs),
            "kinds": list(self.kinds),
            "iteration": self.iteration,
            "detail": self.detail,
        }
        if self.trace_tail is not None:
            payload["trace_tail"] = list(self.trace_tail)
        return payload

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["classification"], payload["inputs"], payload["kinds"],
            payload["iteration"], payload["detail"],
            trace_tail=payload.get("trace_tail"),
        )

    def __repr__(self):
        return "QuarantineRecord({!r})".format(self.describe())


class PathWitness:
    """One distinct (path, error-class) execution retained for export.

    The searches discard concrete input vectors as soon as a run's
    children are expanded; with witness collection enabled
    (``DartOptions(collect_witnesses=True)`` or an ``export_suite``
    destination) the session instead keeps, for every *new* path — and
    for every error even on an already-seen path — the input vector,
    the branch signature and the per-run covered-branch set, which is
    exactly what :mod:`repro.suite` needs to emit a standalone
    replayable regression artifact.
    """

    __slots__ = ("inputs", "kinds", "path", "covered", "error", "iteration")

    def __init__(self, inputs, kinds, path, covered, error=None,
                 iteration=0):
        #: The concrete input vector (raw slot values).
        self.inputs = list(inputs)
        #: Input kinds aligned with ``inputs`` ("int", "ptr_choice", ...).
        self.kinds = list(kinds)
        #: Branch signature of the run (tuple of branch bits).
        self.path = tuple(path)
        #: (function, pc, taken) triples this single run exercised,
        #: restricted to program (non-driver) functions.
        self.covered = set(covered)
        #: {"kind", "message", "location"} when the run faulted, or None.
        self.error = error
        #: 1-based run index at which the witness was recorded.
        self.iteration = iteration

    @property
    def error_key(self):
        """The error-class key (kind, location), or None for an ok run."""
        if self.error is None:
            return None
        return (self.error["kind"], str(self.error["location"]))

    def to_dict(self):
        """JSON-ready form (also the checkpoint encoding)."""
        return {
            "inputs": list(self.inputs),
            "kinds": list(self.kinds),
            "path": list(self.path),
            "covered": sorted([entry[0], entry[1], entry[2]]
                              for entry in self.covered),
            "error": dict(self.error) if self.error is not None else None,
            "iteration": self.iteration,
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            payload["inputs"], payload["kinds"],
            tuple(payload["path"]),
            {(entry[0], int(entry[1]), bool(entry[2]))
             for entry in payload["covered"]},
            error=payload.get("error"),
            iteration=int(payload.get("iteration", 0)),
        )

    def __repr__(self):
        what = "error {}".format(self.error["kind"]) if self.error \
            else "ok"
        return "PathWitness({}, {} branch(es), run {})".format(
            what, len(self.path), self.iteration)


class RunStats:
    """Counters accumulated over a session, backed by a metrics registry."""

    #: Integer counters (checkpointed verbatim, in this order).
    COUNTERS = (
        "iterations", "paths_explored", "solver_calls", "solver_sat",
        "solver_unsat", "solver_unknown", "solver_retries",
        "solver_escalations", "forcing_failures", "random_restarts",
        # Instruction throughput: ``instructions_executed`` counts RAM-
        # machine steps across all runs (the numerator of the
        # instructions/sec throughput metric); ``instructions_symbolic``
        # counts the subset whose result carried a symbolic expression —
        # the taint-gated slow path both execution engines share.
        "branches_executed", "instructions_executed",
        "instructions_symbolic",
        # Solver-throughput subsystem (slicing + result cache):
        # ``solver_constraints`` totals the conjuncts of *actual* solver
        # calls (avg query size = solver_constraints / solver_calls);
        # ``sliced_conjuncts_dropped`` counts prefix conjuncts slicing
        # kept away from the solver; the ``cache_*`` counters record how
        # each query was answered (hit tiers) or not (miss → real call).
        "solver_constraints", "sliced_conjuncts_dropped",
        "cache_hits", "cache_unsat_shortcuts", "cache_model_reuses",
        "cache_misses",
        # The branch-flip funnel (attempted -> sat -> forced -> new path):
        # ``flips_attempted`` counts conjuncts negated and queried (solver
        # or cache), ``flips_sat`` the feasible ones, ``runs_forced`` the
        # planned runs that reached their predicted path, and
        # ``runs_new_path`` the runs that discovered an unseen path.
        "flips_attempted", "flips_sat", "runs_forced", "runs_new_path",
        # The faithfulness funnel (machine-integer widening):
        # ``conjuncts_widened`` counts comparisons whose ideal-integer
        # reading misstated their own run and were rewritten through
        # run-anchored wrap quotients (repro.symbolic.widen);
        # ``conjuncts_dropped_unfaithful`` counts the last-resort drops
        # where no faithful encoding existed (clears ``all_faithful``).
        "conjuncts_widened", "conjuncts_dropped_unfaithful",
        # Robustness funnel (fault injection + recovery; see
        # docs/ROBUSTNESS.md): ``faults_injected`` counts faults the
        # chaos layer fired into this session; ``solver_failures``
        # counts solver calls that raised and were degraded to UNKNOWN
        # (the flip falls back to the random-branch strategy);
        # ``cache_failures`` counts cache accesses that raised and
        # self-healed by clearing the cache; ``checkpoint_failures``
        # counts checkpoint writes that failed without losing the prior
        # checkpoint; ``checkpoints_rejected`` counts corrupt state
        # files downgraded to a clean reseed; ``pool_retries`` counts
        # recovery rounds in which the worker pool re-dispatched the
        # items a dead worker had claimed (one round per batch of
        # simultaneous deaths, not one per item).
        "faults_injected", "solver_failures", "cache_failures",
        "checkpoint_failures", "checkpoints_rejected", "pool_retries",
        # Persistent worker pool (repro.dart.parallel):
        # ``pool_steals`` counts queued items claimed by a worker other
        # than the dispatcher's round-robin nominee (timing-dependent by
        # nature — it measures pipelining, never results);
        # ``pool_workers_lost`` counts worker processes that died and
        # were replaced.
        "pool_steals", "pool_workers_lost",
        # Regression-suite export funnel (repro.suite):
        # ``witnesses_recorded`` counts distinct (path, error-class)
        # executions whose input vectors were retained for export;
        # ``artifacts_exported`` counts artifact directories written,
        # ``artifacts_deduped`` the witnesses collapsed by an identical
        # (path fingerprint, error class) key, ``artifacts_pruned`` the
        # ok-witnesses dropped by coverage subsumption.
        "witnesses_recorded", "artifacts_exported", "artifacts_deduped",
        "artifacts_pruned",
        # Subsumption layer (docs/ALGORITHM.md, "Subsumption and
        # pruning"): ``flips_subsumed_core`` counts flip queries refuted
        # by a recorded UNSAT core they contain (cross-subtree cache
        # tier — no solver call); ``worklist_deduped`` counts children
        # dropped at worklist-insert time because a fingerprint-equal
        # entry (same future, same recorded-error salt) was already
        # enqueued this drain.
        "flips_subsumed_core", "worklist_deduped",
    )

    def __init__(self):
        registry = MetricsRegistry()
        self.registry = registry
        for name in self.COUNTERS:
            registry.counter(name)
        #: Wall-clock latency of actual solver calls (histogram).
        self.solver_latency = registry.histogram(
            "solver_latency_s", SOLVER_LATENCY_BUCKETS_S)
        #: Conditionals executed per completed run (histogram).
        self.path_length = registry.histogram(
            "path_length", PATH_LENGTH_BUCKETS)
        #: Pending-item frontier size (generational engines; gauge).
        self.worklist_depth = registry.gauge("worklist_depth")
        #: Items dispatched to pool workers and not yet committed
        #: (pipeline occupancy; the peak shows how full the window ran).
        self.pool_inflight = registry.gauge("pool_inflight")
        #: Opt-in per-phase wall-time attribution (execute / solve /
        #: cache / checkpoint); enabled by ``profile_phases``.
        self.phases = PhaseTimer()
        self.distinct_paths = set()
        self.covered_branches = set()
        #: Coverage rollup dict (BranchCoverage.to_dict()), set by the
        #: runner when it builds the result; None until then.
        self.coverage = None
        #: QuarantineRecord list — runs contained at the fault boundary.
        self.quarantined = []
        self.started_at = time.perf_counter()
        self.elapsed = 0.0

    def finish(self):
        self.elapsed = time.perf_counter() - self.started_at

    def note_path(self, path_key):
        """Record one completed path; returns True when it is new."""
        self.paths_explored += 1
        if path_key in self.distinct_paths:
            return False
        self.distinct_paths.add(path_key)
        self.runs_new_path += 1
        return True

    @property
    def cache_answered(self):
        """Queries answered by the cache (all four tiers)."""
        return (self.cache_hits + self.flips_subsumed_core
                + self.cache_unsat_shortcuts + self.cache_model_reuses)

    @property
    def cache_hit_rate(self):
        """Fraction of cached-solver queries answered without a solve."""
        queries = self.cache_answered + self.cache_misses
        return self.cache_answered / queries if queries else 0.0

    @property
    def avg_constraints_per_call(self):
        """Mean conjunct count of the queries that reached the solver."""
        if not self.solver_calls:
            return 0.0
        return self.solver_constraints / self.solver_calls

    def summary(self):
        summary = {
            "iterations": self.iterations,
            "paths": self.paths_explored,
            "distinct_paths": len(self.distinct_paths),
            "solver_calls": self.solver_calls,
            "solver_sat": self.solver_sat,
            "solver_unsat": self.solver_unsat,
            "solver_unknown": self.solver_unknown,
            "solver_retries": self.solver_retries,
            "solver_escalations": self.solver_escalations,
            "avg_constraints_per_call":
                round(self.avg_constraints_per_call, 2),
            "sliced_conjuncts_dropped": self.sliced_conjuncts_dropped,
            "cache_hits": self.cache_hits,
            "flips_subsumed_core": self.flips_subsumed_core,
            "cache_unsat_shortcuts": self.cache_unsat_shortcuts,
            "cache_model_reuses": self.cache_model_reuses,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "forcing_failures": self.forcing_failures,
            "random_restarts": self.random_restarts,
            "branches": self.branches_executed,
            "steps": self.instructions_executed,
            "instructions_executed": self.instructions_executed,
            "instructions_symbolic": self.instructions_symbolic,
            "quarantined": len(self.quarantined),
            "elapsed_s": round(self.elapsed, 4),
            "flips_attempted": self.flips_attempted,
            "flips_sat": self.flips_sat,
            "runs_forced": self.runs_forced,
            "runs_new_path": self.runs_new_path,
            "conjuncts_widened": self.conjuncts_widened,
            "conjuncts_dropped_unfaithful":
                self.conjuncts_dropped_unfaithful,
            "faults_injected": self.faults_injected,
            "solver_failures": self.solver_failures,
            "cache_failures": self.cache_failures,
            "checkpoint_failures": self.checkpoint_failures,
            "checkpoints_rejected": self.checkpoints_rejected,
            "pool_retries": self.pool_retries,
            "pool_steals": self.pool_steals,
            "pool_workers_lost": self.pool_workers_lost,
            "witnesses_recorded": self.witnesses_recorded,
            "artifacts_exported": self.artifacts_exported,
            "artifacts_deduped": self.artifacts_deduped,
            "artifacts_pruned": self.artifacts_pruned,
            "worklist_deduped": self.worklist_deduped,
            "histograms": {
                "solver_latency_s": self.solver_latency.to_dict(),
                "path_length": self.path_length.to_dict(),
            },
        }
        if self.phases.enabled or self.phases.seconds:
            summary["phases"] = self.phases.snapshot()
        if self.coverage is not None:
            summary["coverage"] = self.coverage
        return summary


def _counter_property(name):
    """Attribute facade over the registry: ``stats.solver_calls += 1``
    reads and writes the :class:`Counter` named ``solver_calls``."""

    def _get(self):
        return self.registry.counter(name).value

    def _set(self, value):
        self.registry.counter(name).value = value

    return property(_get, _set)


for _name in RunStats.COUNTERS:
    setattr(RunStats, _name, _counter_property(_name))
del _name


class DartResult:
    """Outcome of a DART (or random-testing) session."""

    def __init__(self, status, errors, stats, flags_snapshot,
                 coverage=None, resumed=False, witnesses=None):
        self.status = status
        self.errors = errors
        self.stats = stats
        #: (all_linear, all_locs_definite, forcing_ok, all_faithful) at
        #: session end.
        self.flags = flags_snapshot
        #: Branch-direction coverage of the program under test
        #: (:class:`repro.dart.coverage.BranchCoverage`), or None.
        self.coverage = coverage
        #: True when the session picked up a v2 checkpoint and resumed.
        self.resumed = resumed
        #: :class:`PathWitness` list (witness collection enabled), or [].
        self.witnesses = witnesses if witnesses is not None else []

    @property
    def found_error(self):
        return bool(self.errors)

    @property
    def iterations(self):
        return self.stats.iterations

    @property
    def complete(self):
        """True when termination proves full path coverage (Theorem 1(b))."""
        return self.status == COMPLETE

    @property
    def quarantined(self):
        """Runs contained at the fault boundary (QuarantineRecord list)."""
        return self.stats.quarantined

    def first_error(self):
        return self.errors[0] if self.errors else None

    def to_dict(self):
        """The full result as a JSON-ready dict (``repro --json``)."""
        payload = {
            "status": self.status,
            "resumed": self.resumed,
            "flags": {
                "all_linear": self.flags[0],
                "all_locs_definite": self.flags[1],
                "forcing_ok": self.flags[2],
                "all_faithful": self.flags[3],
            },
            "errors": [error.to_dict() for error in self.errors],
            "quarantined": [
                record.to_dict() for record in self.stats.quarantined
            ],
            "stats": self.stats.summary(),
        }
        if self.coverage is not None:
            # The full rollup: direction coverage plus the per-function
            # C1 (both-arms) table — see repro.dart.coverage.
            payload["coverage"] = self.coverage.to_dict()
        return payload

    def describe(self):
        if self.status == BUG_FOUND:
            return "Bug found after {} run(s): {}".format(
                self.errors[0].iteration, self.errors[0].describe()
            )
        if self.status == COMPLETE:
            return (
                "No bug; all {} feasible paths explored in {} run(s)"
            ).format(len(self.stats.distinct_paths), self.iterations)
        if self.status == INTERRUPTED:
            return (
                "Interrupted after {} run(s); {} error(s) found "
                "(checkpoint saved)"
            ).format(self.iterations, len(self.errors))
        return "Budget exhausted after {} run(s); {} error(s) found".format(
            self.iterations, len(self.errors)
        )

    def __repr__(self):
        return "DartResult({!r})".format(self.describe())
