"""Static input-independence analysis gating worklist dedup.

Two worklist entries whose sliced flip queries are canonically equal may
still diverge later: the flipped group's inputs can feed an accumulator
that a *future* conditional reads together with other inputs, or the
entries' parents may differ on inputs the query never mentions but whose
branches guard the flipped conditional's continuation.  Deduping such
entries loses errors (see docs/ALGORITHM.md, "Subsumption and pruning").

This module computes, once per session from the toplevel function's AST,
a partition of the driver's input ordinals into **coupling classes**: two
inputs land in the same class whenever any predicate's behavior can
depend on both.  A sliced flip query over variable set ``G`` is then
*dedup-eligible* exactly when every class intersecting ``G`` is contained
in ``G`` — the query re-solves everything its future can observe about
those inputs, while inputs outside ``G`` belong to classes no shared
predicate connects to it, so their (unchanged, parent-supplied) values
steer futures the parent's own run and siblings already cover.  Any
combination behavior would require a predicate reading both sides, which
would have merged the classes.

The analysis is deliberately conservative.  Predicate closures inherit
the full control context (a conditional nested under another couples
with it), faulting expressions — division/modulo divisors and assert
conditions — count as predicates, and every construct whose dataflow the
walker does not model precisely **latches the whole program ineligible**
(returns None, disabling dedup for the session):

* external functions or variables, program-defined globals (hidden state
  across calls and runs);
* non-scalar toplevel parameters (pointer coins interleave the ordinal
  space);
* loops, ``switch``, user function calls, arrays, pointers, address-of;
* locals read where not definitely assigned, shadowing declarations.

Under those latches the driver consumes exactly one input per parameter
per call, in order, so ordinal ``c * nparams + i`` is call ``c``'s
parameter ``i``; calls share no state, so classes replicate per call.
"""

from repro.dart.interface import extract_interface
from repro.minic import typesys as ts
from repro.minic import ast_nodes as ast
from repro.minic.parser import parse_program


class _Ineligible(Exception):
    """Raised anywhere the analysis cannot prove independence."""


class _UnionFind:
    def __init__(self, items):
        self._parent = {item: item for item in items}

    def find(self, item):
        parent = self._parent
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union_all(self, items):
        items = iter(items)
        first = next(items, None)
        if first is None:
            return
        anchor = self.find(first)
        for item in items:
            self._parent[self.find(item)] = anchor

    def classes(self):
        by_root = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return list(by_root.values())


class _Analyzer:
    """One pass over the toplevel body computing parameter coupling.

    ``env`` maps each declared name to the set of parameters that may
    influence its current value; ``assigned`` is the definitely-assigned
    subset (reads outside it latch).  Branch merges are may-unions of the
    environments and an intersection of ``assigned`` — standard forward
    dataflow, sound because more influence only ever means more coupling.
    """

    def __init__(self, param_names):
        self.uf = _UnionFind(param_names)
        self.env = {name: frozenset((name,)) for name in param_names}
        self.assigned = set(param_names)
        self.declared = set(param_names)

    # -- statements -------------------------------------------------------

    def stmt(self, node, ctx):
        if isinstance(node, ast.Block):
            for statement in node.statements:
                self.stmt(statement, ctx)
        elif isinstance(node, ast.ExprStmt):
            if node.expr is not None:
                self.expr(node.expr, ctx)
        elif isinstance(node, ast.If):
            self._branching(node.cond, node.then, node.otherwise, ctx)
        elif isinstance(node, ast.AssertStmt):
            # Lowered to ``if (!e) abort()``: a predicate like any other.
            self.uf.union_all(self.expr(node.expr, ctx) | ctx)
        elif isinstance(node, ast.AbortStmt):
            pass  # reachability is the (already coupled) context
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value, ctx)  # value unused by the driver
        elif isinstance(node, ast.DeclStmt):
            for decl in node.decls:
                self._declare(decl, ctx)
        else:
            # While / DoWhile / For / Switch / Break / Continue and any
            # future statement form: dataflow not modeled here.
            raise _Ineligible(type(node).__name__)

    def _declare(self, decl, ctx):
        if decl.name in self.declared:
            raise _Ineligible("shadowing declaration")
        self.declared.add(decl.name)
        if decl.init is not None:
            self.env[decl.name] = self.expr(decl.init, ctx) | ctx
            self.assigned.add(decl.name)
        else:
            self.env[decl.name] = frozenset()

    def _branching(self, cond, then, otherwise, ctx):
        """An ``If`` (or ternary): couple the predicate, merge the arms."""
        cond_inf = self.expr(cond, ctx)
        self.uf.union_all(cond_inf | ctx)
        inner = ctx | cond_inf
        pre_env, pre_assigned = self.env, self.assigned
        self.env, self.assigned = dict(pre_env), set(pre_assigned)
        if then is not None:
            self._arm(then, inner)
        env_then, assigned_then = self.env, self.assigned
        self.env, self.assigned = dict(pre_env), set(pre_assigned)
        if otherwise is not None:
            self._arm(otherwise, inner)
        env_else, assigned_else = self.env, self.assigned
        merged = {}
        for name in set(env_then) | set(env_else):
            merged[name] = (env_then.get(name, frozenset())
                            | env_else.get(name, frozenset()))
        self.env = merged
        self.assigned = assigned_then & assigned_else

    def _arm(self, node, ctx):
        if isinstance(node, ast.Stmt):
            self.stmt(node, ctx)
        else:
            self.expr(node, ctx)  # ternary arm

    # -- expressions ------------------------------------------------------

    def expr(self, node, ctx):
        """Influence set of ``node``; registers predicate couplings for
        short-circuit operators, ternaries and faulting divisions."""
        if isinstance(node, (ast.IntLit, ast.StringLit, ast.SizeofType,
                             ast.SizeofExpr)):
            return frozenset()
        if isinstance(node, ast.Ident):
            return self._read(node.name)
        if isinstance(node, ast.Unary):
            if node.op in ("++", "--"):
                return self._update(node.operand, ctx)
            if node.op in ("*", "&"):
                raise _Ineligible("pointer operator")
            return self.expr(node.operand, ctx)
        if isinstance(node, ast.Postfix):
            return self._update(node.operand, ctx)
        if isinstance(node, ast.Binary):
            return self._binary(node, ctx)
        if isinstance(node, ast.Assign):
            return self._assign(node, ctx)
        if isinstance(node, ast.Conditional):
            self._branching(node.cond, node.then, node.otherwise, ctx)
            return self._ternary_value(node, ctx)
        if isinstance(node, ast.Comma):
            self.expr(node.left, ctx)
            return self.expr(node.right, ctx)
        if isinstance(node, ast.Cast):
            return self.expr(node.operand, ctx)
        # Call / Index / Member and anything unforeseen.
        raise _Ineligible(type(node).__name__)

    def _ternary_value(self, node, ctx):
        # _branching already walked the arms for side effects and
        # coupled the condition; the *value* may depend on all three.
        cond_inf = self._pure(node.cond)
        return (cond_inf | self._pure(node.then) | self._pure(node.otherwise))

    def _pure(self, node):
        """Influence of an already-walked subexpression, without
        re-registering couplings or re-applying side effects."""
        if isinstance(node, (ast.IntLit, ast.StringLit, ast.SizeofType,
                             ast.SizeofExpr)):
            return frozenset()
        if isinstance(node, ast.Ident):
            return self.env.get(node.name, frozenset())
        if isinstance(node, ast.Unary):
            return self._pure(node.operand)
        if isinstance(node, ast.Postfix):
            return self._pure(node.operand)
        if isinstance(node, ast.Binary):
            return self._pure(node.left) | self._pure(node.right)
        if isinstance(node, ast.Assign):
            return self._pure(node.target)
        if isinstance(node, ast.Conditional):
            return (self._pure(node.cond) | self._pure(node.then)
                    | self._pure(node.otherwise))
        if isinstance(node, ast.Comma):
            return self._pure(node.right)
        if isinstance(node, ast.Cast):
            return self._pure(node.operand)
        raise _Ineligible(type(node).__name__)

    def _read(self, name):
        if name not in self.env:
            raise _Ineligible("unknown name {!r}".format(name))
        if name not in self.assigned:
            raise _Ineligible("possibly-unassigned {!r}".format(name))
        return self.env[name]

    def _update(self, target, ctx):
        """``++``/``--``: read-modify-write of an lvalue."""
        if not isinstance(target, ast.Ident):
            raise _Ineligible("non-scalar increment target")
        new = self._read(target.name) | ctx
        self.env[target.name] = new
        return new

    def _binary(self, node, ctx):
        if node.op in ("&&", "||"):
            left = self.expr(node.left, ctx)
            # The right operand is itself branch-guarded by the left.
            right = self.expr(node.right, ctx | left)
            self.uf.union_all(left | right | ctx)
            return left | right
        left = self.expr(node.left, ctx)
        right = self.expr(node.right, ctx)
        if node.op in ("/", "%"):
            # A faulting expression is a predicate: whether it traps
            # depends on the divisor under this control context.
            self.uf.union_all(right | ctx)
        return left | right

    def _assign(self, node, ctx):
        if not isinstance(node.target, ast.Ident):
            raise _Ineligible("non-scalar assignment target")
        name = node.target.name
        if name not in self.env:
            raise _Ineligible("assignment to unknown name {!r}".format(name))
        value = self.expr(node.value, ctx)
        if node.op != "=":
            if node.op in ("/=", "%="):
                self.uf.union_all(value | ctx)
            value = value | self._read(name)
        self.env[name] = value | ctx
        self.assigned.add(name)
        return self.env[name]


def _scalar_params(interface):
    for ptype in interface.param_types:
        if not isinstance(ptype, ts.IntType):
            raise _Ineligible("non-scalar parameter")


def _no_hidden_state(interface, program):
    if interface.external_functions:
        raise _Ineligible("external functions (stubs consume inputs)")
    if interface.external_variables:
        raise _Ineligible("external variables")
    for decl in program.declarations:
        if isinstance(decl, (ast.VarDecl, ast.DeclStmt)):
            raise _Ineligible("program-defined global")


def _toplevel_def(program, toplevel):
    for decl in program.declarations:
        if isinstance(decl, ast.FunctionDef) and decl.name == toplevel:
            return decl
    raise _Ineligible("toplevel not defined")


def coupling_classes(source, toplevel, depth, filename="<program>"):
    """Coupling classes over input ordinals, or None when ineligible.

    Returns ``{ordinal: frozenset(ordinals of its class)}`` covering all
    ``depth * nparams`` ordinals, or None when any conservative latch
    fires — the caller must then disable worklist dedup entirely (the
    UNSAT-core tier is unaffected; it is sound unconditionally).
    """
    try:
        interface, _info = extract_interface(source, toplevel,
                                             filename=filename)
        program = parse_program(source, filename=filename)
        _scalar_params(interface)
        _no_hidden_state(interface, program)
        func = _toplevel_def(program, toplevel)
        names = [param.name for param in func.params]
        if any(name is None for name in names) or len(set(names)) != len(names):
            raise _Ineligible("unnamed or duplicate parameters")
        analyzer = _Analyzer(names)
        analyzer.stmt(func.body, frozenset())
        ordinal_of = {name: index for index, name in enumerate(names)}
        classes = {}
        count = len(names)
        for group in analyzer.uf.classes():
            indices = sorted(ordinal_of[name] for name in group)
            for call in range(depth):
                ordinals = frozenset(call * count + i for i in indices)
                for ordinal in ordinals:
                    classes[ordinal] = ordinals
        return classes
    except _Ineligible:
        return None
    except Exception:
        # The analysis is an optimization gate: any failure to parse or
        # walk (however unexpected) must degrade to "no dedup", never
        # take the session down.
        return None


def dedup_eligible(query_vars, classes):
    """True when every coupling class touching ``query_vars`` is inside it.

    ``classes`` is the map from :func:`coupling_classes`; callers pass
    None through as ineligible before reaching here.
    """
    for var in query_vars:
        cls = classes.get(var)
        if cls is None or not cls <= query_vars:
            return False
    return True
