"""Branch coverage accounting, including per-function C1 rollups.

The paper's core motivation is coverage: "it is well-known that random
testing usually provides low code coverage ... the then branch of
``if (x == 10)`` has one chance out of 2^32 to be exercised", whereas the
directed search gives each branch direction "probability 0.5".  This
module measures exactly that: which *directions* of which conditional
statements were exercised over a testing session.

Two granularities are reported:

* **direction coverage** — covered (function, pc, taken) triples over
  all branch directions (2 per conditional), the historical metric;
* **C1 branch coverage** — a conditional counts as covered only when
  *both* of its arms were taken (the "both-arms" criterion CTGEN-style
  unit-test generators target), bookkept per branch, rolled up per
  function and per program.  ``python -m repro coverage-report`` renders
  this table for an exported suite (see :mod:`repro.suite`).

Driver-generated code (``__dart_*`` functions) is excluded so the numbers
describe the program under test, and only the branches that are feasible
matter for the 100 %-coverage claim — an infeasible direction (like the
``z == x + 10`` branch of §2.4) can never be covered, so the report also
distinguishes "all feasible" from "all" coverage via the session status.
"""

from repro.minic import ir


def _is_program_function(name):
    return not name.startswith("__dart_")


def is_program_branch(entry):
    """True when a covered (function, pc, taken) triple is program code."""
    return _is_program_function(entry[0])


def branch_sites(module):
    """Per program function, the pcs of its Branch instructions."""
    sites = {}
    for name, function in module.functions.items():
        if not _is_program_function(name):
            continue
        sites[name] = [
            pc for pc, instr in enumerate(function.instrs)
            if isinstance(instr, ir.Branch)
        ]
    return sites


def count_branch_directions(module):
    """Total branch directions (2 per conditional) in program functions."""
    return 2 * sum(len(pcs) for pcs in branch_sites(module).values())


class FunctionCoverage:
    """C1 bookkeeping for one program function."""

    __slots__ = ("name", "branches", "branches_both_arms",
                 "directions_covered")

    def __init__(self, name, branches, branches_both_arms,
                 directions_covered):
        #: Function name in the program under test.
        self.name = name
        #: Conditionals (Branch instructions) in the function.
        self.branches = branches
        #: Conditionals with *both* arms exercised (the C1 criterion).
        self.branches_both_arms = branches_both_arms
        #: Exercised (pc, taken) directions, out of ``2 * branches``.
        self.directions_covered = directions_covered

    @property
    def directions(self):
        return 2 * self.branches

    @property
    def c1_percent(self):
        if self.branches == 0:
            return 100.0
        return 100.0 * self.branches_both_arms / self.branches

    @property
    def direction_percent(self):
        if self.branches == 0:
            return 100.0
        return 100.0 * self.directions_covered / self.directions

    def to_dict(self):
        return {
            "function": self.name,
            "branches": self.branches,
            "branches_both_arms": self.branches_both_arms,
            "directions": self.directions,
            "directions_covered": self.directions_covered,
            "c1_percent": round(self.c1_percent, 2),
            "direction_percent": round(self.direction_percent, 2),
        }

    def __repr__(self):
        return "FunctionCoverage({}: {}/{} both-arms)".format(
            self.name, self.branches_both_arms, self.branches)


class BranchCoverage:
    """Coverage of one session: covered directions / total directions,
    plus the per-function C1 (both-arms) rollup."""

    def __init__(self, module, covered):
        self.covered = {
            entry for entry in covered if _is_program_function(entry[0])
        }
        self._sites = branch_sites(module)
        self.total_directions = 2 * sum(
            len(pcs) for pcs in self._sites.values())

    @property
    def covered_directions(self):
        return len(self.covered)

    @property
    def percent(self):
        if self.total_directions == 0:
            return 100.0
        return 100.0 * self.covered_directions / self.total_directions

    # -- C1 (both-arms) accounting ---------------------------------------

    def functions(self):
        """Per-function C1 rollups, sorted by function name."""
        rows = []
        for name in sorted(self._sites):
            pcs = self._sites[name]
            both = sum(
                1 for pc in pcs
                if (name, pc, True) in self.covered
                and (name, pc, False) in self.covered
            )
            covered = sum(
                1 for pc in pcs for taken in (True, False)
                if (name, pc, taken) in self.covered
            )
            rows.append(FunctionCoverage(name, len(pcs), both, covered))
        return rows

    @property
    def total_branches(self):
        return sum(len(pcs) for pcs in self._sites.values())

    @property
    def branches_both_arms(self):
        return sum(row.branches_both_arms for row in self.functions())

    @property
    def c1_percent(self):
        total = self.total_branches
        if total == 0:
            return 100.0
        return 100.0 * self.branches_both_arms / total

    def uncovered(self, module):
        """The (function, pc, direction) triples never exercised."""
        missing = []
        for name, function in sorted(module.functions.items()):
            if not _is_program_function(name):
                continue
            for pc, instr in enumerate(function.instrs):
                if not isinstance(instr, ir.Branch):
                    continue
                for taken in (True, False):
                    if (name, pc, taken) not in self.covered:
                        missing.append((name, pc, taken, instr.location))
        return missing

    def to_dict(self):
        """JSON-ready coverage block (reports, manifests, traces)."""
        return {
            "covered_directions": self.covered_directions,
            "total_directions": self.total_directions,
            "percent": round(self.percent, 2),
            "total_branches": self.total_branches,
            "branches_both_arms": self.branches_both_arms,
            "c1_percent": round(self.c1_percent, 2),
            "functions": [row.to_dict() for row in self.functions()],
        }

    def describe(self):
        return ("{}/{} branch directions ({:.1f}%), "
                "C1 {}/{} branches both-arms ({:.1f}%)").format(
                    self.covered_directions, self.total_directions,
                    self.percent, self.branches_both_arms,
                    self.total_branches, self.c1_percent)

    def __repr__(self):
        return "BranchCoverage({})".format(self.describe())


def render_c1_table(coverage):
    """Human-readable per-function C1 table (``coverage-report``)."""
    lines = ["C1 branch coverage: {}".format(coverage.describe())]
    rows = coverage.functions()
    if not rows:
        lines.append("  (no conditionals in program functions)")
        return "\n".join(lines)
    width = max(len("function"), max(len(row.name) for row in rows))
    lines.append("  {:<{w}}  branches  both-arms  directions      C1%"
                 .format("function", w=width))
    for row in rows:
        lines.append(
            "  {:<{w}}  {:>8}  {:>9}  {:>7}  {:>6.1f}%".format(
                row.name, row.branches, row.branches_both_arms,
                "{}/{}".format(row.directions_covered, row.directions),
                row.c1_percent, w=width))
    return "\n".join(lines)
