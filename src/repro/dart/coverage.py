"""Branch coverage accounting.

The paper's core motivation is coverage: "it is well-known that random
testing usually provides low code coverage ... the then branch of
``if (x == 10)`` has one chance out of 2^32 to be exercised", whereas the
directed search gives each branch direction "probability 0.5".  This
module measures exactly that: which *directions* of which conditional
statements were exercised over a testing session.

Driver-generated code (``__dart_*`` functions) is excluded so the numbers
describe the program under test, and only the branches that are feasible
matter for the 100 %-coverage claim — an infeasible direction (like the
``z == x + 10`` branch of §2.4) can never be covered, so the report also
distinguishes "all feasible" from "all" coverage via the session status.
"""

from repro.minic import ir


def _is_program_function(name):
    return not name.startswith("__dart_")


def count_branch_directions(module):
    """Total branch directions (2 per conditional) in program functions."""
    total = 0
    for name, function in module.functions.items():
        if not _is_program_function(name):
            continue
        total += 2 * sum(
            1 for instr in function.instrs if isinstance(instr, ir.Branch)
        )
    return total


class BranchCoverage:
    """Coverage of one session: covered directions / total directions."""

    def __init__(self, module, covered):
        self.covered = {
            entry for entry in covered if _is_program_function(entry[0])
        }
        self.total_directions = count_branch_directions(module)

    @property
    def covered_directions(self):
        return len(self.covered)

    @property
    def percent(self):
        if self.total_directions == 0:
            return 100.0
        return 100.0 * self.covered_directions / self.total_directions

    def uncovered(self, module):
        """The (function, pc, direction) triples never exercised."""
        missing = []
        for name, function in sorted(module.functions.items()):
            if not _is_program_function(name):
                continue
            for pc, instr in enumerate(function.instrs):
                if not isinstance(instr, ir.Branch):
                    continue
                for taken in (True, False):
                    if (name, pc, taken) not in self.covered:
                        missing.append((name, pc, taken, instr.location))
        return missing

    def describe(self):
        return "{}/{} branch directions ({:.1f}%)".format(
            self.covered_directions, self.total_directions, self.percent
        )

    def __repr__(self):
        return "BranchCoverage({})".format(self.describe())
