"""The input vector ``IM`` (Section 2.2/3.4).

Inputs are identified by *acquisition ordinal*: the i-th call to a
``__dart_*`` intrinsic during an execution reads slot i.  Slots that the
previous runs never defined are filled with fresh random values and
recorded ("for each input x with IM[x] undefined do IM[x] = random()",
Fig. 3); slots solved by the constraint solver overwrite previous values
while all other slots are preserved (the ``IM + IM'`` update of Fig. 5).

Identifying inputs by ordinal rather than by address uniformly supports
repeated toplevel calls (``depth`` > 1), inputs living in malloc'ed memory
(recursive data structures built by ``random_init``) and external-function
returns.
"""

#: Machine domains per input kind.
_DOMAINS = {
    "int": (-(1 << 31), (1 << 31) - 1),
    "uint": (0, (1 << 32) - 1),
    "char": (-128, 127),
    "uchar": (0, 255),
    "short": (-(1 << 15), (1 << 15) - 1),
    "ushort": (0, (1 << 16) - 1),
    "ptr_choice": (0, 1),
}


def domain_for_kind(kind):
    """The (lo, hi) machine domain for an input kind."""
    return _DOMAINS[kind]


class InputSlot:
    """One entry of ``IM``: its kind tag and current concrete value."""

    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    def __repr__(self):
        return "InputSlot({}, {})".format(self.kind, self.value)


class InputVector:
    """``IM``: an extensible, ordinal-indexed vector of typed inputs."""

    def __init__(self, slots=None):
        self._slots = list(slots or [])

    def __len__(self):
        return len(self._slots)

    def __iter__(self):
        return iter(self._slots)

    def __getitem__(self, ordinal):
        return self._slots[ordinal]

    def value_or_none(self, ordinal, kind):
        """The recorded value for slot ``ordinal`` if compatible.

        A kind mismatch (the program consumed its inputs differently than
        in the run that recorded this slot) invalidates the recorded value.
        """
        if ordinal >= len(self._slots):
            return None
        slot = self._slots[ordinal]
        if slot.kind != kind:
            return None
        return slot.value

    def record(self, ordinal, kind, value):
        """Define slot ``ordinal`` (extending the vector as needed)."""
        while len(self._slots) <= ordinal:
            self._slots.append(InputSlot(kind, 0))
        self._slots[ordinal] = InputSlot(kind, value)

    def updated(self, model):
        """``IM + IM'``: a copy with solver ``model`` values merged in."""
        merged = InputVector(
            InputSlot(slot.kind, slot.value) for slot in self._slots
        )
        for ordinal, value in model.items():
            # Negative ordinals are solver-internal auxiliaries (Omega
            # elimination); they never correspond to an input slot.
            if 0 <= ordinal < len(merged._slots):
                merged._slots[ordinal] = InputSlot(
                    merged._slots[ordinal].kind, value
                )
        return merged

    def domains(self):
        """Solver domains for every slot, keyed by ordinal."""
        return {
            ordinal: domain_for_kind(slot.kind)
            for ordinal, slot in enumerate(self._slots)
        }

    def values(self):
        """The raw value list (for reports and replay)."""
        return [slot.value for slot in self._slots]

    def clone(self):
        return InputVector(
            InputSlot(slot.kind, slot.value) for slot in self._slots
        )

    def __repr__(self):
        return "InputVector({})".format(
            ", ".join(
                "x{}={}:{}".format(i, s.value, s.kind)
                for i, s in enumerate(self._slots)
            )
        )


def random_value(kind, rng):
    """A uniformly random value of the given input kind."""
    lo, hi = _DOMAINS[kind]
    return rng.randint(lo, hi)
