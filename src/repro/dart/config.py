"""Configuration for DART runs."""

from repro.interp.memory import MemoryOptions

#: Branch-selection strategies for solve_path_constraint (footnote 4 of the
#: paper: "the next branch to be forced could be selected using a different
#: strategy, e.g., randomly or in a breadth-first manner").
STRATEGIES = ("dfs", "bfs", "random")


class DartOptions:
    """All tunables of a DART (or random-testing) session.

    The defaults mirror the paper: depth-first branch selection, stop at
    the first error, 32-bit integer inputs.  ``directed_pointer_choices``
    enables the extension where the driver's NULL-or-fresh coin toss
    (Fig. 8) is itself an input variable, making pointer shapes directable
    instead of purely random; switch it off for the paper's literal
    behaviour (the ablation benchmark compares both).
    """

    def __init__(
        self,
        depth=1,
        max_iterations=10_000,
        seed=0,
        strategy="dfs",
        stop_on_first_error=True,
        max_steps=1_000_000,
        solver_node_budget=50_000,
        directed_pointer_choices=True,
        max_init_depth=None,
        transparent_memory=False,
        stack_limit=1 << 20,
        heap_limit=1 << 26,
        max_call_depth=256,
        track_uninitialized=False,
        time_limit=None,
        state_file=None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                "strategy must be one of {}".format(", ".join(STRATEGIES))
            )
        if depth < 1:
            raise ValueError("depth must be at least 1")
        #: Number of successive toplevel calls per execution (§3.2).
        self.depth = depth
        #: Upper bound on program executions (runs) per session.
        self.max_iterations = max_iterations
        #: Seed for every source of randomness (fully deterministic runs).
        self.seed = seed
        #: Branch-selection strategy: "dfs" (the paper), "bfs" or "random".
        self.strategy = strategy
        #: Stop at the first error (the paper's ``print "Bug found"; exit``)
        #: or keep searching and collect distinct errors.
        self.stop_on_first_error = stop_on_first_error
        #: RAM-machine step budget per run (non-termination detector).
        self.max_steps = max_steps
        #: Node budget for each constraint-solver call.
        self.solver_node_budget = solver_node_budget
        self.directed_pointer_choices = directed_pointer_choices
        #: Bound on random_init's pointer recursion (None = unbounded, the
        #: paper's Fig. 8 behaviour; a small bound keeps directed searches
        #: over recursive input types finite).
        self.max_init_depth = max_init_depth
        #: Extension: memcpy/strcpy move symbolic values (see DESIGN.md).
        self.transparent_memory = transparent_memory
        self.stack_limit = stack_limit
        self.heap_limit = heap_limit
        self.max_call_depth = max_call_depth
        #: Extension: report reads of never-written locals/heap cells
        #: (the check the paper delegates to Purify/CCured, §3.4).
        self.track_uninitialized = track_uninitialized
        #: Optional wall-clock budget in seconds for a session.
        self.time_limit = time_limit
        #: Path for inter-run state (the paper keeps the branch stack "in
        #: a file between executions"); lets a dfs search resume after an
        #: exhausted budget.  None keeps state in memory only.
        self.state_file = state_file

    def memory_options(self):
        return MemoryOptions(
            stack_limit=self.stack_limit,
            heap_limit=self.heap_limit,
            max_call_depth=self.max_call_depth,
            track_uninitialized=self.track_uninitialized,
        )

    def __repr__(self):
        return (
            "DartOptions(depth={}, max_iterations={}, seed={}, "
            "strategy={!r})"
        ).format(self.depth, self.max_iterations, self.seed, self.strategy)
