"""Configuration for DART runs."""

import hashlib

from repro.interp.memory import MemoryOptions

#: Branch-selection strategies for solve_path_constraint (footnote 4 of the
#: paper: "the next branch to be forced could be selected using a different
#: strategy, e.g., randomly or in a breadth-first manner").
STRATEGIES = ("dfs", "bfs", "random")


class DartOptions:
    """All tunables of a DART (or random-testing) session.

    The defaults mirror the paper: depth-first branch selection, stop at
    the first error, 32-bit integer inputs.  ``directed_pointer_choices``
    enables the extension where the driver's NULL-or-fresh coin toss
    (Fig. 8) is itself an input variable, making pointer shapes directable
    instead of purely random; switch it off for the paper's literal
    behaviour (the ablation benchmark compares both).
    """

    def __init__(
        self,
        depth=1,
        max_iterations=10_000,
        seed=0,
        strategy="dfs",
        stop_on_first_error=True,
        max_steps=1_000_000,
        solver_node_budget=50_000,
        directed_pointer_choices=True,
        max_init_depth=None,
        transparent_memory=False,
        stack_limit=1 << 20,
        heap_limit=1 << 26,
        max_call_depth=256,
        track_uninitialized=False,
        time_limit=None,
        state_file=None,
        run_time_limit=None,
        watchdog_interval=1024,
        checkpoint_every=25,
        solver_escalation=4,
        handle_signals=False,
        constraint_slicing=True,
        solver_cache=True,
        subsumption=True,
        jobs=1,
        trace_file=None,
        trace_ring=32,
        profile_phases=False,
        fault_plan=None,
        compiled_execution=True,
        collect_witnesses=False,
        export_suite=None,
    ):
        if strategy not in STRATEGIES:
            raise ValueError(
                "strategy must be one of {}".format(", ".join(STRATEGIES))
            )
        if depth < 1:
            raise ValueError("depth must be at least 1")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        #: Number of successive toplevel calls per execution (§3.2).
        self.depth = depth
        #: Upper bound on program executions (runs) per session.
        self.max_iterations = max_iterations
        #: Seed for every source of randomness (fully deterministic runs).
        self.seed = seed
        #: Branch-selection strategy: "dfs" (the paper), "bfs" or "random".
        self.strategy = strategy
        #: Stop at the first error (the paper's ``print "Bug found"; exit``)
        #: or keep searching and collect distinct errors.
        self.stop_on_first_error = stop_on_first_error
        #: RAM-machine step budget per run (non-termination detector).
        self.max_steps = max_steps
        #: Node budget for each constraint-solver call.
        self.solver_node_budget = solver_node_budget
        self.directed_pointer_choices = directed_pointer_choices
        #: Bound on random_init's pointer recursion (None = unbounded, the
        #: paper's Fig. 8 behaviour; a small bound keeps directed searches
        #: over recursive input types finite).
        self.max_init_depth = max_init_depth
        #: Extension: memcpy/strcpy move symbolic values (see DESIGN.md).
        self.transparent_memory = transparent_memory
        self.stack_limit = stack_limit
        self.heap_limit = heap_limit
        self.max_call_depth = max_call_depth
        #: Extension: report reads of never-written locals/heap cells
        #: (the check the paper delegates to Purify/CCured, §3.4).
        self.track_uninitialized = track_uninitialized
        #: Optional wall-clock budget in seconds for a session.
        self.time_limit = time_limit
        #: Path for inter-run state (the paper keeps the branch stack "in
        #: a file between executions"); lets a search resume after an
        #: exhausted budget or an interrupt.  None keeps state in memory
        #: only.
        self.state_file = state_file
        #: Optional wall-clock budget in seconds for a *single* run.  A
        #: run exceeding it is quarantined as ``run-timeout`` and the
        #: search continues.  (The session ``time_limit`` is additionally
        #: enforced mid-run through the same watchdog.)
        self.run_time_limit = run_time_limit
        #: RAM-machine steps between wall-clock watchdog checks.
        self.watchdog_interval = watchdog_interval
        #: With ``state_file`` set, autosave a session checkpoint every
        #: this many runs (in addition to budget-exhaustion / signal
        #: checkpoints).  0 disables periodic autosave.
        self.checkpoint_every = checkpoint_every
        #: On a solver ``unknown`` (node budget exhausted), retry once
        #: with the budget multiplied by this factor before degrading to
        #: the random-testing fallback.  <= 1 disables the retry.
        self.solver_escalation = solver_escalation
        #: Install SIGINT/SIGTERM handlers for the duration of the session
        #: that checkpoint (when ``state_file`` is set) and return a
        #: partial result instead of dying mid-run.  The CLI enables this.
        self.handle_signals = handle_signals
        #: Hand the solver only the variable-sharing group of the negated
        #: conjunct instead of the whole path-constraint prefix (see
        #: repro.dart.slicing for the soundness argument).  Off reproduces
        #: the paper's Fig. 5 queries literally.
        self.constraint_slicing = constraint_slicing
        #: Cache solver verdicts keyed on canonical constraint sets, with
        #: UNSAT-superset shortcuts and model reuse (repro.solver.cache).
        self.solver_cache = solver_cache
        #: Subsumption layer (docs/ALGORITHM.md, "Subsumption and
        #: pruning"): record minimal UNSAT cores for cross-subtree flip
        #: refutation and dedupe worklist children whose future
        #: fingerprints coincide.  ``--no-subsumption`` ablates it
        #: (the bench gate compares both).  Requires ``solver_cache``
        #: for the core tier; worklist dedup additionally requires
        #: ``constraint_slicing``.
        self.subsumption = subsumption
        #: Worker processes for the worklist-based strategies ("bfs" and
        #: "random"): a persistent pool of long-lived workers consumes a
        #: shared queue of flip candidates (work stealing, solver calls
        #: overlapping interpretation, solver results shared through a
        #: parent-side cache server), and results are committed strictly
        #: in dispatch order so the search stays deterministic — see
        #: docs/PARALLELISM.md.  1 = in-process serial search.  The
        #: "dfs" strategy is inherently sequential (each run's plan
        #: depends on the previous run's path) and always runs
        #: single-process.
        self.jobs = jobs
        #: Write a JSONL structured trace of the session to this path
        #: (``--trace``); None disables the file sink.  See
        #: docs/OBSERVABILITY.md for the event schema.
        self.trace_file = trace_file
        #: Capacity of the in-memory flight recorder whose tail is
        #: attached to quarantine records.  0 disables it.  Only active
        #: when tracing is on (a sink is attached).
        self.trace_ring = trace_ring
        #: Attribute session wall time to execute / solve / cache /
        #: checkpoint phases (repro.obs.profile); adds two clock reads
        #: per section, so it is opt-in.
        self.profile_phases = profile_phases
        #: Deterministic fault-injection schedule (``--fault-plan``): a
        #: :class:`repro.faults.plan.FaultPlan`, a spec string
        #: (``"solver.raise@2"`` / ``"seed:7"``) or None.  The runner
        #: installs an injector for the session's duration; every
        #: injected fault is traced and counted.  Test-harness only —
        #: like the trace options, it is excluded from the checkpoint
        #: fingerprint so a chaos resume accepts the interrupted
        #: session's checkpoint (and vice versa).
        self.fault_plan = fault_plan
        #: Lower the IR to specialized closures once per session and run
        #: untainted instructions on a concrete-only fast path
        #: (repro.interp.compile); ``--no-compile`` selects the
        #: tree-walking interpreter for ablation.  A pure perf knob —
        #: both engines are observationally identical (pinned by the
        #: engine-differential oracle) — so like ``jobs`` it is excluded
        #: from the checkpoint digest.
        self.compiled_execution = compiled_execution
        #: Keep a :class:`repro.dart.report.PathWitness` (input vector,
        #: branch signature, per-run covered set) for every distinct
        #: (path, error-class) execution, feeding the regression-suite
        #: exporter (repro.suite).  Off by default: witnesses cost
        #: memory proportional to the number of distinct paths.
        self.collect_witnesses = collect_witnesses
        #: Directory to export a deduplicated replayable regression
        #: suite into when the session ends (implies witness
        #: collection); None disables the export.  Like the trace
        #: options it never steers the search, so it is excluded from
        #: the checkpoint digest — an interrupted plain campaign can be
        #: resumed with ``export_suite`` set (budget 0 works) to export
        #: whatever the checkpoint holds.
        self.export_suite = export_suite

    def digest(self):
        """A stable hash of the options that shape the *search*.

        Budget-style knobs (iteration/time limits, checkpoint cadence,
        signal handling, ``jobs``) are excluded: resuming an exhausted
        session with a bigger budget — or more worker processes — must be
        allowed, while resuming with a different strategy, seed or
        instrumentation semantics must be rejected.  Slicing and caching
        are *included*: both can change which model the solver returns
        (never a verdict), so they shape the concrete search trajectory.
        Observability knobs (``trace_file``, ``trace_ring``,
        ``profile_phases``) are excluded: watching a search must never
        change it, and a traced resume of an untraced session is valid.
        ``fault_plan`` is likewise excluded: the chaos harness resumes
        interrupted sessions across injector installs, and the
        crash-resume equivalence invariant needs a faulted session's
        checkpoint to be acceptable to a clean resume.
        ``compiled_execution`` is excluded for the same reason as
        ``jobs``: the engines are observationally identical, so a
        ``--no-compile`` resume of a compiled session (and vice versa)
        must be accepted.  ``collect_witnesses`` and ``export_suite``
        are excluded like the observability knobs: witnessing records
        what the search already does, never shapes it, and resuming an
        interrupted plain campaign *with* an export destination is the
        supported way to salvage its artifacts.  ``subsumption`` is
        excluded too: it only prunes work whose outcome is already
        determined (cores refute queries the solver would refute,
        deduped children re-derive futures an equal entry explores), so
        a ``--no-subsumption`` resume of a subsuming session — e.g. to
        ablate a suspected over-prune — must be accepted.
        """
        relevant = (
            self.depth, self.strategy, self.seed,
            self.stop_on_first_error, self.max_steps,
            self.solver_node_budget, self.directed_pointer_choices,
            self.max_init_depth, self.transparent_memory,
            self.stack_limit, self.heap_limit, self.max_call_depth,
            self.track_uninitialized, self.solver_escalation,
            self.constraint_slicing, self.solver_cache,
        )
        return hashlib.sha256(repr(relevant).encode()).hexdigest()[:16]

    def memory_options(self):
        return MemoryOptions(
            stack_limit=self.stack_limit,
            heap_limit=self.heap_limit,
            max_call_depth=self.max_call_depth,
            track_uninitialized=self.track_uninitialized,
        )

    def __repr__(self):
        return (
            "DartOptions(depth={}, max_iterations={}, seed={}, "
            "strategy={!r})"
        ).format(self.depth, self.max_iterations, self.seed, self.strategy)
