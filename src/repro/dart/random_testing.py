"""The pure random-testing baseline (Sections 1 and 4).

Same generated driver, same fault detection — but every run draws a fresh
random input vector and no symbolic state is maintained.  This is the
baseline the paper's evaluation compares the directed search against
("a random search would thus run forever without detecting any errors").
"""

import random
import time

from repro.dart.config import DartOptions
from repro.dart.coverage import BranchCoverage
from repro.dart.driver import DRIVER_ENTRY, build_test_program
from repro.dart.inputs import InputVector, random_value
from repro.dart.report import (
    BUG_FOUND,
    EXHAUSTED,
    DartResult,
    ErrorReport,
    RunStats,
)
from repro.interp.compile import CompiledProgram
from repro.interp.faults import ExecutionFault, RunTimeout
from repro.interp.machine import Machine, MachineOptions
from repro.symbolic.flags import CompletenessFlags


class RandomHooks:
    """Inputs are freshly random; branches are ignored."""

    def __init__(self, im, rng):
        self.im = im
        self._rng = rng
        self._next_ordinal = 0

    def acquire_input(self, kind):
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        value = random_value(kind, self._rng)
        self.im.record(ordinal, kind, value)
        return value, None  # invisible to the symbolic machinery

    def on_branch(self, taken, constraint, location):
        pass


class RandomTester:
    """Random unit testing with the auto-generated driver."""

    def __init__(self, source, toplevel, options=None, filename="<program>"):
        self.options = options or DartOptions()
        self.toplevel = toplevel
        self.module = build_test_program(
            source, toplevel, depth=self.options.depth, filename=filename,
            max_init_depth=self.options.max_init_depth,
        )
        self.compiled = CompiledProgram(self.module) \
            if self.options.compiled_execution else None

    def run(self):
        options = self.options
        stats = RunStats()
        errors = []
        seen_error_keys = set()
        rng = random.Random(options.seed)
        flags = CompletenessFlags()
        flags.clear_linear()  # random testing never claims completeness
        deadline = None
        if options.time_limit is not None:
            deadline = time.perf_counter() + options.time_limit
        status = EXHAUSTED
        try:
            while stats.iterations < options.max_iterations:
                if deadline is not None and time.perf_counter() > deadline:
                    break
                stats.iterations += 1
                run_deadline = None
                if options.run_time_limit is not None:
                    run_deadline = \
                        time.perf_counter() + options.run_time_limit
                if deadline is not None and (run_deadline is None
                                             or deadline < run_deadline):
                    run_deadline = deadline
                im = InputVector()
                hooks = RandomHooks(im, rng)
                machine = Machine(
                    self.module,
                    MachineOptions(
                        max_steps=options.max_steps,
                        memory=options.memory_options(),
                        deadline=run_deadline,
                        watchdog_interval=options.watchdog_interval,
                    ),
                    hooks,
                    CompletenessFlags(),
                    compiled=self.compiled,
                )
                try:
                    machine.run(DRIVER_ENTRY)
                except RunTimeout:
                    # The watchdog bounds one pathological random run; the
                    # baseline keeps drawing fresh vectors regardless.
                    pass
                except ExecutionFault as fault:
                    status = BUG_FOUND
                    key = (fault.kind, str(fault.location))
                    if key not in seen_error_keys:
                        seen_error_keys.add(key)
                        errors.append(
                            ErrorReport(fault, im.values(), stats.iterations,
                                        kinds=[slot.kind for slot in im])
                        )
                    if options.stop_on_first_error:
                        break
                finally:
                    stats.branches_executed += machine.branches_executed
                    stats.instructions_executed += machine.steps
                    stats.instructions_symbolic += machine.symbolic_steps
                    stats.covered_branches |= machine.covered_branches
        finally:
            stats.finish()
        return DartResult(
            status, errors, stats, flags.snapshot(),
            coverage=BranchCoverage(self.module, stats.covered_branches),
        )


def random_check(source, toplevel, options=None, **option_kwargs):
    """One-call random testing (the baseline for every benchmark)."""
    if options is None:
        options = DartOptions(**option_kwargs)
    elif option_kwargs:
        raise ValueError("pass either options or keyword overrides, not both")
    return RandomTester(source, toplevel, options).run()
