"""Automated interface extraction (Section 3.1).

The external interface of a program is:

* the arguments of the user-specified *toplevel* function,
* the program's *external variables* (``extern`` declarations with no
  defining declaration), and
* its *external functions* (prototypes with no definition).

All three are discovered by the front end's lightweight static pass
(:mod:`repro.minic.semantic`); this module packages them for the driver
generator.
"""

from repro.minic.errors import SemanticError
from repro.minic.parser import parse_program
from repro.minic.semantic import analyze


class ToplevelInterface:
    """The full external interface for one choice of toplevel function."""

    def __init__(self, toplevel, param_types, external_functions,
                 external_variables):
        #: Name of the function the driver will call ``depth`` times.
        self.toplevel = toplevel
        #: Decayed C types of the toplevel function's parameters.
        self.param_types = list(param_types)
        #: name -> FunctionType of environment-controlled functions.
        self.external_functions = dict(external_functions)
        #: name -> CType of environment-controlled variables.
        self.external_variables = dict(external_variables)

    def __repr__(self):
        return (
            "ToplevelInterface({!r}, {} param(s), {} external function(s), "
            "{} external variable(s))"
        ).format(
            self.toplevel,
            len(self.param_types),
            len(self.external_functions),
            len(self.external_variables),
        )


def extract_interface(source, toplevel, filename="<program>"):
    """Parse ``source`` and extract the interface for ``toplevel``.

    Returns (:class:`ToplevelInterface`, ProgramInfo).  Raises
    :class:`SemanticError` if the toplevel function is not defined by the
    program.
    """
    program = parse_program(source, filename=filename)
    info = analyze(program)
    func = info.functions.get(toplevel)
    if func is None:
        raise SemanticError(
            "toplevel function {!r} is not defined by the program"
            .format(toplevel)
        )
    interface = ToplevelInterface(
        toplevel,
        func.ftype.param_types,
        info.interface.external_functions,
        info.interface.external_variables,
    )
    return interface, info


def exported_functions(source, filename="<program>"):
    """All defined functions and their types — used by the oSIP-style sweep
    (Section 4.3: every externally visible function becomes a toplevel)."""
    program = parse_program(source, filename=filename)
    info = analyze(program)
    return {
        name: decl.ftype for name, decl in sorted(info.functions.items())
    }
