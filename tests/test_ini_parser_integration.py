"""A realistic parsing unit under test: a tiny INI-style key=value
scanner written in mini-C, exercised concretely and by DART.

This is the kind of component the paper's introduction targets: an
input-processing routine whose corner cases (empty input, missing '=',
overlong tokens, unterminated lines) hide behind layered checks.
"""

import pytest

from repro import DartOptions, dart_check
from repro.interp import AssertionViolation, Machine, SegFault
from repro.minic import compile_program

INI_PARSER = """
/* Parses one "key=value" line.  Returns the value length, or a negative
 * error code.  A planted bug: a key of exactly 8 characters overruns the
 * fixed key buffer by one NUL byte, clobbering the adjacent canary (the
 * off-by-one is the `eq > 8` check, which should be `eq >= 8`). */
int parse_kv(char *line, int length) {
  char key[8];
  char canary;
  int i; int eq; int vlen;
  canary = 'C';
  if (line == NULL) return -1;
  if (length <= 0) return -2;
  eq = -1;
  for (i = 0; i < length; i++) {
    if (line[i] == '=') { eq = i; break; }
  }
  if (eq < 0) return -3;       /* no separator */
  if (eq == 0) return -4;      /* empty key */
  if (eq > 8) return -5;       /* key too long -- off by one: == 8 slips */
  for (i = 0; i < eq; i++) {
    key[i] = line[i];
  }
  key[eq] = 0;                 /* writes key[8] == canary when eq == 8 */
  assert(canary == 'C');       /* the smashed-stack detector */
  vlen = length - eq - 1;
  return vlen;
}

int parse_line(char *text) {
  if (text == NULL) return -1;
  return parse_kv(text, strlen(text));
}

int demo(void) {
  char buf[32];
  strcpy(buf, "host=example");
  return parse_kv(buf, strlen(buf));
}
"""


def parse_with(module, text, length=None):
    machine = Machine(module)
    addr = machine.memory.malloc(64)
    machine.memory.write_bytes(addr, text.encode() + b"\x00")
    if length is None:
        length = len(text)
    return machine.run("parse_kv", (addr, length))


class TestConcreteBehaviour:
    @pytest.fixture(scope="class")
    def module(self):
        return compile_program(INI_PARSER)

    def test_demo_parses(self, module):
        assert Machine(module).run("demo", ()) == len("example")

    def test_error_codes(self, module):
        assert parse_with(module, "a=b") == 1
        assert parse_with(module, "key=") == 0
        assert parse_with(module, "novalue") == -3
        assert parse_with(module, "=oops") == -4
        assert parse_with(module, "waytoolongkey=1") == -5

    def test_seven_char_key_is_fine(self, module):
        assert parse_with(module, "exactly=value") == 5

    def test_planted_overflow_on_8_char_key(self, module):
        # eq == 8 slips through `eq > 8` and key[8] lands on the canary.
        with pytest.raises(AssertionViolation):
            parse_with(module, "exactly8=x")


class TestDartOnParser:
    def test_dart_finds_a_crash_through_the_raw_api(self):
        # parse_kv's driver inputs: a one-cell char* plus an arbitrary
        # length — any length >= 2 walks off the cell (the §4.3 misuse
        # pattern).  DART must find a crash almost immediately.
        options = DartOptions(max_iterations=300, seed=0,
                              max_init_depth=2)
        result = dart_check(INI_PARSER, "parse_kv", options)
        assert result.found_error
        assert result.first_error().kind == "segmentation fault"

    def test_dart_explores_every_error_code_path(self):
        options = DartOptions(max_iterations=300, seed=0,
                              stop_on_first_error=False, max_init_depth=2)
        result = dart_check(INI_PARSER, "parse_kv", options)
        # With a 1-byte buffer the reachable outcomes include NULL (-1),
        # non-positive length (-2), no separator within a 1-char line
        # (-3), '=' first (-4) and the OOB crash for length >= 2.
        assert result.found_error
        assert len(result.stats.distinct_paths) >= 5

    def test_dart_crashes_the_string_wrapper_too(self):
        # parse_line calls strlen: the driver's single-cell string is NUL
        # only with probability 1/256, so the unterminated-read crash is
        # the dominant first finding — a true bug of calling strlen on
        # possibly-unterminated input.
        options = DartOptions(max_iterations=300, seed=0,
                              max_init_depth=2)
        result = dart_check(INI_PARSER, "parse_line", options)
        assert result.found_error
        assert result.first_error().kind == "segmentation fault"

    def test_replaying_the_crash_inputs_reproduces_it(self):
        from repro.dart.runner import Dart

        options = DartOptions(max_iterations=300, seed=0,
                              max_init_depth=2)
        dart = Dart(INI_PARSER, "parse_kv", options)
        result = dart.run()
        fault = dart.replay(result.first_error().inputs)
        assert fault is not None
        assert fault.kind == result.first_error().kind
