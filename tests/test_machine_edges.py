"""Edge-case semantics: unsigned arithmetic, conversions, evaluation
order, string literals, and miscellaneous C corners."""

import pytest

from repro.interp import Machine, SegFault
from repro.minic import compile_program


def run(source, function="f", args=()):
    return Machine(compile_program(source)).run(function, args)


class TestUnsignedSemantics:
    def test_unsigned_division(self):
        src = ("unsigned int f(unsigned int a, unsigned int b)"
               " { return a / b; }")
        assert run(src, args=(0xFFFFFFFE, 2)) == 0x7FFFFFFF

    def test_unsigned_modulo(self):
        src = ("unsigned int f(unsigned int a, unsigned int b)"
               " { return a % b; }")
        assert run(src, args=(0x80000000, 7)) == 0x80000000 % 7

    def test_unsigned_underflow_wraps(self):
        src = "unsigned int f(unsigned int a) { return a - 1; }"
        assert run(src, args=(0,)) == 0xFFFFFFFF

    def test_mixed_signed_unsigned_op_converts(self):
        # -1 + 1u  ==  0u
        src = "unsigned int f(int a, unsigned int b) { return a + b; }"
        assert run(src, args=(-1, 1)) == 0

    def test_unsigned_comparison_of_negative(self):
        src = "int f(int a, unsigned int b) { return a < b; }"
        assert run(src, args=(-1, 0)) == 0  # -1 converts to UINT_MAX

    def test_uchar_roundtrip(self):
        src = """
        int f(int v) {
          unsigned char c;
          c = v;
          return c;
        }
        """
        assert run(src, args=(300,)) == 44
        assert run(src, args=(-1,)) == 255


class TestEvaluationOrder:
    def test_comma_in_for_header(self):
        src = """
        int f(void) {
          int i; int j; int total;
          total = 0;
          for (i = 0, j = 10; i < j; i++, j--) total = total + 1;
          return total;
        }
        """
        assert run(src) == 5

    def test_assignment_value_is_converted_value(self):
        src = "int f(void) { char c; return (c = 300); }"
        assert run(src) == 44  # C: the value of an assignment is post-conversion

    def test_chained_assignment(self):
        src = "int f(void) { int a; int b; a = b = 7; return a + b; }"
        assert run(src) == 14

    def test_compound_assignment_through_pointer_once(self):
        src = """
        int calls = 0;
        int index(void) { calls = calls + 1; return 0; }
        int f(void) {
          int a[1];
          a[0] = 5;
          a[index()] += 3;
          return a[0] * 10 + calls;
        }
        """
        # The lvalue is computed once: exactly one call.
        assert run(src) == 81

    def test_nested_ternary(self):
        src = """
        int f(int x) { return x < 0 ? -1 : x == 0 ? 0 : 1; }
        """
        assert run(src, args=(-9,)) == -1
        assert run(src, args=(0,)) == 0
        assert run(src, args=(9,)) == 1


class TestStringsAndLiterals:
    def test_string_literal_is_read_only(self):
        src = """
        int f(void) {
          char *s;
          s = "fixed";
          s[0] = 'F';
          return 0;
        }
        """
        with pytest.raises(SegFault, match="read-only"):
            run(src)

    def test_identical_literals_interned_separately(self):
        # Two occurrences may or may not share storage in C; here they
        # are distinct regions, and comparing contents still works.
        src = """
        int f(void) { return strcmp("abc", "abc"); }
        """
        assert run(src) == 0

    def test_string_with_embedded_escapes(self):
        src = r"""
        int f(void) {
          char *s;
          s = "a\tb\n";
          return strlen(s) * 100 + s[1];
        }
        """
        assert run(src) == 4 * 100 + 9

    def test_char_arithmetic(self):
        src = "int f(void) { return 'z' - 'a'; }"
        assert run(src) == 25

    def test_hex_and_octal_literals(self):
        src = "int f(void) { return 0xFF + 010; }"
        assert run(src) == 263


class TestCallSemantics:
    def test_arguments_evaluated_before_call(self):
        src = """
        int g(int a, int b) { return a * 100 + b; }
        int f(void) {
          int i;
          i = 1;
          return g(i++, i);
        }
        """
        # Our evaluation order is strictly left-to-right.
        assert run(src) == 1 * 100 + 2

    def test_recursion_depth_is_per_machine(self):
        src = """
        int depth(int n) {
          if (n == 0) return 0;
          return 1 + depth(n - 1);
        }
        int f(void) { return depth(100); }
        """
        assert run(src) == 100

    def test_void_function_call_in_expression_statement(self):
        src = """
        int hits = 0;
        void bump(void) { hits = hits + 1; }
        int f(void) { bump(); bump(); return hits; }
        """
        assert run(src) == 2

    def test_struct_return_value(self):
        src = """
        struct pair { int a; int b; };
        struct pair make(int x) {
          struct pair p;
          p.a = x; p.b = x * 2;
          return p;
        }
        int f(void) {
          struct pair q;
          q = make(21);
          return q.a + q.b;
        }
        """
        assert run(src) == 63

    def test_member_of_returned_struct(self):
        src = """
        struct pair { int a; int b; };
        struct pair make(void) {
          struct pair p;
          p.a = 5; p.b = 6;
          return p;
        }
        int f(void) { return make().b; }
        """
        assert run(src) == 6
