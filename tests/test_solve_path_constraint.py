"""Unit tests for solve_path_constraint (Fig. 5) and its strategies."""

import random

import pytest

from repro.dart.inputs import InputVector
from repro.dart.pathcond import PathRecord, StackEntry
from repro.dart.solve import candidate_indices, solve_path_constraint
from repro.solver import Solver
from repro.symbolic.expr import CmpExpr, EQ, GT, LinExpr, NE
from repro.symbolic.flags import CompletenessFlags


def build_run(entries):
    """entries: list of (branch, constraint-or-None) -> (record, stack, im)."""
    record = PathRecord()
    stack = []
    im = InputVector()
    ordinals = set()
    for branch, constraint in entries:
        record.append(branch, constraint)
        stack.append(StackEntry(branch))
        if constraint is not None:
            ordinals |= constraint.variables()
    for ordinal in sorted(ordinals):
        im.record(ordinal, "int", 0)
    return record, stack, im


def solve(record, stack, im, strategy="dfs", seed=0):
    flags = CompletenessFlags()
    plan = solve_path_constraint(
        record, stack, im, Solver(seed=seed), strategy,
        random.Random(seed), flags,
    )
    return plan, flags


def eq(var, const=0):
    """Constraint var == const, as asserted by a taken branch."""
    return CmpExpr(EQ, LinExpr({var: 1}, -const))


class TestCandidateOrdering:
    def make_stack(self, done_flags):
        return [StackEntry(1, done) for done in done_flags]

    def test_dfs_deepest_first(self):
        stack = self.make_stack([False, True, False])
        assert candidate_indices(stack, "dfs", random.Random(0)) == [2, 0]

    def test_bfs_shallowest_first(self):
        stack = self.make_stack([False, True, False])
        assert candidate_indices(stack, "bfs", random.Random(0)) == [0, 2]

    def test_random_is_permutation(self):
        stack = self.make_stack([False] * 6)
        result = candidate_indices(stack, "random", random.Random(3))
        assert sorted(result) == list(range(6))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            candidate_indices([StackEntry(1)], "zigzag", random.Random(0))


class TestSolvePathConstraint:
    def test_flips_deepest_pending_branch(self):
        # Run took (x0 == 0) then (x1 == 0); DFS should flip the second.
        record, stack, im = build_run([(1, eq(0)), (1, eq(1))])
        plan, _ = solve(record, stack, im)
        assert plan is not None
        assert [e.branch for e in plan.stack] == [1, 0]
        # New inputs satisfy x0 == 0 and NOT (x1 == 0).
        assert plan.im[0].value == 0
        assert plan.im[1].value != 0

    def test_stack_truncated_at_flip(self):
        record, stack, im = build_run(
            [(1, eq(0)), (1, eq(1)), (1, eq(2))]
        )
        plan, _ = solve(record, stack, im)
        assert len(plan.stack) == 3
        record2, stack2, im2 = build_run([(1, eq(0)), (1, eq(1))])
        stack2[1].done = True
        plan2, _ = solve(record2, stack2, im2)
        assert len(plan2.stack) == 1  # flipped the first instead

    def test_done_branches_skipped(self):
        record, stack, im = build_run([(1, eq(0))])
        stack[0].done = True
        plan, _ = solve(record, stack, im)
        assert plan is None  # search over

    def test_unsat_flip_falls_back_to_shallower(self):
        # Deepest: x0 == 5 following x0 == 5 earlier (negation unsat
        # against the prefix).
        record, stack, im = build_run([(1, eq(0, 5)), (1, eq(0, 5))])
        plan, _ = solve(record, stack, im)
        # Flipping index 1 gives x0 == 5 and x0 != 5: UNSAT; falls back to
        # flipping index 0 (prefix empty): x0 != 5 is satisfiable.
        assert plan is not None
        assert len(plan.stack) == 1
        assert plan.im[0].value != 5

    def test_unsat_marks_done(self):
        record, stack, im = build_run([(1, eq(0, 5)), (1, eq(0, 5))])
        solve(record, stack, im)
        assert stack[1].done  # memoized as permanently infeasible

    def test_unflippable_concrete_branch_skipped_and_marked(self):
        record, stack, im = build_run([(1, None)])
        plan, _ = solve(record, stack, im)
        assert plan is None
        assert stack[0].done

    def test_all_constraints_in_prefix_respected(self):
        # (x0 > 0) then (x1 == 0): flipping the second must keep x0 > 0.
        gt = CmpExpr(GT, LinExpr({0: 1}))
        record, stack, im = build_run([(1, gt), (1, eq(1))])
        # A real run's IM satisfies the path it executed (the branch was
        # taken under it); constraint slicing relies on that invariant to
        # leave independent groups at their current values.
        im.record(0, "int", 5)
        plan, _ = solve(record, stack, im)
        assert plan.im[0].value > 0
        assert plan.im[1].value != 0

    def test_preserves_unconstrained_inputs(self):
        record, stack, im = build_run([(1, eq(0))])
        im.record(5, "int", 777)  # an input no constraint mentions
        plan, _ = solve(record, stack, im)
        assert plan.im[5].value == 777

    def test_empty_run_has_nothing_to_flip(self):
        record, stack, im = build_run([])
        plan, _ = solve(record, stack, im)
        assert plan is None

    def test_bfs_flips_shallowest(self):
        record, stack, im = build_run([(1, eq(0)), (1, eq(1))])
        plan, _ = solve(record, stack, im, strategy="bfs")
        assert len(plan.stack) == 1
        assert plan.stack[0].branch == 0
        assert plan.im[0].value != 0
