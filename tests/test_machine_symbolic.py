"""Integration tests for the intertwined concrete+symbolic execution:
run programs through the machine with tracked inputs and inspect the
constraints the conditionals produce (the heart of Fig. 3)."""

import random

import pytest

from repro.dart.config import DartOptions
from repro.dart.inputs import InputVector
from repro.dart.instrument import DirectedHooks
from repro.interp import Machine
from repro.minic import compile_program
from repro.symbolic.expr import EQ, GE, GT, LE, LT, NE
from repro.symbolic.flags import CompletenessFlags


def trace(source, toplevel_source=None, im_values=(), seed=0):
    """Run a program with DirectedHooks; returns (hooks, flags).

    ``source`` must define ``__dart_main`` style entry named ``main_``
    using __dart_int() intrinsics directly, to keep the tests focused on
    the machine rather than the driver generator.
    """
    module = compile_program(source)
    im = InputVector()
    for ordinal, value in enumerate(im_values):
        im.record(ordinal, "int", value)
    flags = CompletenessFlags()
    hooks = DirectedHooks(im, [], flags, random.Random(seed), DartOptions())
    machine = Machine(module, hooks=hooks, flags=flags)
    machine.run("main_", ())
    return hooks, flags


class TestConstraintShapes:
    def test_equality_constraint(self):
        hooks, flags = trace("""
        void main_(void) {
          int x;
          x = __dart_int();
          if (x == 5) { }
        }
        """, im_values=[5])
        (constraint,) = hooks.record.constraints
        assert constraint.op == EQ
        assert constraint.lin.coeffs == {0: 1}
        assert constraint.lin.const == -5
        assert flags.complete

    def test_not_taken_branch_negates(self):
        hooks, _ = trace("""
        void main_(void) {
          int x;
          x = __dart_int();
          if (x == 5) { }
        }
        """, im_values=[6])
        (constraint,) = hooks.record.constraints
        assert constraint.op == NE

    def test_interprocedural_symbolic_value(self):
        # The paper's 2*x through a call: "defined through an
        # interprocedural, dynamic tracing of symbolic expressions".
        hooks, flags = trace("""
        int f(int x) { return 2 * x; }
        void main_(void) {
          int x;
          x = __dart_int();
          if (f(x) == x + 10) { }
        }
        """, im_values=[0])
        (constraint,) = hooks.record.constraints
        # 2x - (x + 10) = x - 10
        assert constraint.lin.coeffs == {0: 1}
        assert constraint.lin.const == -10
        assert flags.complete

    def test_linear_combination_through_locals(self):
        hooks, _ = trace("""
        void main_(void) {
          int a; int b; int z;
          a = __dart_int();
          b = __dart_int();
          z = 3 * a - b + 7;
          if (z <= 0) { }
        }
        """, im_values=[1, 1])
        (constraint,) = hooks.record.constraints
        assert constraint.lin.coeffs == {0: 3, 1: -1}
        assert constraint.op in (LE, GT)

    def test_symbolic_value_via_pointer(self):
        hooks, flags = trace("""
        void main_(void) {
          int x; int *p;
          x = __dart_int();
          p = &x;
          if (*p > 100) { }
        }
        """, im_values=[0])
        (constraint,) = hooks.record.constraints
        assert constraint.lin.coeffs == {0: 1}
        assert flags.complete

    def test_symbolic_value_through_heap_cell(self):
        hooks, flags = trace("""
        struct cell { int v; };
        void main_(void) {
          struct cell *c;
          c = (struct cell *) malloc(sizeof(struct cell));
          c->v = __dart_int();
          if (c->v == 9) { }
        }
        """, im_values=[9])
        (constraint,) = hooks.record.constraints
        assert constraint.op == EQ
        assert flags.complete  # address was concrete

    def test_overwrite_kills_symbolic_value(self):
        hooks, flags = trace("""
        void main_(void) {
          int x;
          x = __dart_int();
          x = 3;
          if (x == 3) { }
        }
        """, im_values=[0])
        (constraint,) = hooks.record.constraints
        assert constraint is None  # concrete predicate
        assert flags.complete  # nothing symbolic was lost

    def test_alias_overwrite_invalidates(self):
        # The §2.5 aliasing discipline at machine level.
        hooks, flags = trace("""
        void main_(void) {
          int x; char *p;
          x = __dart_int();
          p = (char *) &x;
          p[1] = 7;
          if (x == 5) { }
        }
        """, im_values=[5])
        (constraint,) = hooks.record.constraints
        assert constraint is None  # partially clobbered: no symbolic value

    def test_nonlinear_clears_flag_and_falls_back(self):
        hooks, flags = trace("""
        void main_(void) {
          int x; int y;
          x = __dart_int();
          y = __dart_int();
          if (x * y == 12) { }
        }
        """, im_values=[3, 4])
        (constraint,) = hooks.record.constraints
        assert constraint is None
        assert not flags.all_linear

    def test_input_dependent_index_clears_locs(self):
        hooks, flags = trace("""
        int table[8];
        void main_(void) {
          int i;
          i = __dart_int();
          if (i >= 0)
            if (i < 8)
              if (table[i] == 0) { }
        }
        """, im_values=[2])
        assert not flags.all_locs_definite
        assert hooks.record.constraints[2] is None

    def test_chars_produce_bounded_domain_inputs(self):
        hooks, _ = trace("""
        void main_(void) {
          char c;
          c = __dart_char();
          if (c == 'A') { }
        }
        """)
        assert hooks.im[0].kind == "char"
        assert -128 <= hooks.im[0].value <= 127

    def test_multiple_inputs_multiple_constraints(self):
        hooks, _ = trace("""
        void main_(void) {
          int a; int b;
          a = __dart_int();
          b = __dart_int();
          if (a < b)
            if (a + b >= 10) { }
        }
        """, im_values=[1, 20])
        assert len(hooks.record.constraints) == 2
        first, second = hooks.record.constraints
        assert first.op == LT
        assert second.op == GE
        assert second.lin.coeffs == {0: 1, 1: 1}

    def test_division_by_constant_falls_back(self):
        hooks, flags = trace("""
        void main_(void) {
          int x;
          x = __dart_int();
          if (x / 2 == 4) { }
        }
        """, im_values=[8])
        (constraint,) = hooks.record.constraints
        assert constraint is None
        assert not flags.all_linear

    def test_left_shift_by_constant_stays_linear(self):
        hooks, flags = trace("""
        void main_(void) {
          int x;
          x = __dart_int();
          if ((x << 3) == 64) { }
        }
        """, im_values=[8])
        (constraint,) = hooks.record.constraints
        assert constraint is not None
        assert constraint.lin.coeffs == {0: 8}
        assert flags.all_linear
