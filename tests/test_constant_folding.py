"""Tests for the compile-time constant-folding pass in lowering."""

import pytest

from repro.interp import DivisionByZero, Machine
from repro.minic import ast_nodes as ast
from repro.minic import compile_program, ir


def folded_return(source_expr, ctype="int"):
    module = compile_program(
        "{} f(void) {{ return {}; }}".format(ctype, source_expr)
    )
    ret = next(
        instr for instr in module.functions["f"].instrs
        if isinstance(instr, ir.Ret)
    )
    return ret.value


class TestFolding:
    def test_addition_folds(self):
        value = folded_return("1 + 2 * 3")
        assert isinstance(value, ast.IntLit) and value.value == 7

    def test_comparison_folds(self):
        value = folded_return("3 < 5")
        assert isinstance(value, ast.IntLit) and value.value == 1

    def test_unary_folds(self):
        value = folded_return("-(2 + 3)")
        assert isinstance(value, ast.IntLit) and value.value == -5

    def test_logical_not_folds(self):
        value = folded_return("!7")
        assert isinstance(value, ast.IntLit) and value.value == 0

    def test_bitwise_folds(self):
        value = folded_return("(0xF0 | 0x0F) ^ 0xFF")
        assert isinstance(value, ast.IntLit) and value.value == 0

    def test_shift_folds(self):
        value = folded_return("1 << 10")
        assert isinstance(value, ast.IntLit) and value.value == 1024

    def test_overflow_wraps_when_folding(self):
        value = folded_return("2147483647 + 1")
        assert isinstance(value, ast.IntLit)
        assert value.value == -(2**31)

    def test_unsigned_folding_wraps_modularly(self):
        value = folded_return("4294967295 + 2", ctype="unsigned int")
        assert isinstance(value, ast.IntLit) and value.value == 1

    def test_division_truncates_toward_zero(self):
        value = folded_return("(-7) / 2")
        assert isinstance(value, ast.IntLit) and value.value == -3

    def test_sizeof_arithmetic_folds(self):
        value = folded_return("sizeof(int) * 4")
        assert isinstance(value, ast.IntLit) and value.value == 16

    def test_division_by_zero_not_folded(self):
        value = folded_return("1 / 0")
        assert isinstance(value, ast.Binary)  # kept for the runtime fault

    def test_runtime_division_by_zero_still_faults(self):
        module = compile_program("int f(void) { return 1 / 0; }")
        with pytest.raises(DivisionByZero):
            Machine(module).run("f", ())

    def test_variables_not_folded(self):
        value = folded_return("1 + 2", ctype="int")
        assert isinstance(value, ast.IntLit)
        module = compile_program("int f(int x) { return x + 2; }")
        ret = next(i for i in module.functions["f"].instrs
                   if isinstance(i, ir.Ret))
        assert isinstance(ret.value, ast.Binary)

    def test_semantics_preserved(self):
        source = """
        int f(void) {
          return (100 - 36) / 2 + (1 << 4) - ~0 + ('z' - 'a') % 7;
        }
        """
        expected = (100 - 36) // 2 + (1 << 4) + 1 + (ord("z") - ord("a")) % 7
        assert Machine(compile_program(source)).run("f", ()) == expected
