"""Property-based tests (hypothesis) for the solver and symbolic layers.

Core invariants:

* **soundness of SAT** — any model returned satisfies every constraint and
  every domain bound (the solver verifies internally; this re-verifies
  independently);
* **soundness of UNSAT** — a randomly generated *known-satisfiable* system
  is never declared UNSAT;
* **negation** — a CmpExpr and its negation partition every assignment;
* **linear algebra** — LinExpr operations agree with direct evaluation.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.solver import SAT, Solver, UNSAT
from repro.symbolic.expr import CmpExpr, EQ, GE, GT, LE, LT, NE, LinExpr

OPS = [EQ, NE, LT, LE, GT, GE]

small_ints = st.integers(min_value=-50, max_value=50)
coeffs = st.dictionaries(
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=-5, max_value=5),
    max_size=4,
)


@st.composite
def lin_exprs(draw):
    return LinExpr(draw(coeffs), draw(small_ints))


@st.composite
def assignments(draw):
    return {var: draw(small_ints) for var in range(4)}


@st.composite
def satisfiable_systems(draw):
    """A constraint system built to be satisfied by a known witness."""
    witness = draw(assignments())
    constraints = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        lin = draw(lin_exprs())
        value = lin.evaluate(witness)
        # Pick an operator this witness satisfies.
        candidates = [EQ] if value == 0 else [NE]
        if value <= 0:
            candidates.append(LE)
        if value < 0:
            candidates.append(LT)
        if value >= 0:
            candidates.append(GE)
        if value > 0:
            candidates.append(GT)
        constraints.append(CmpExpr(draw(st.sampled_from(candidates)), lin))
    return witness, constraints


class TestLinExprAlgebra:
    @given(lin_exprs(), lin_exprs(), assignments())
    def test_add_agrees_with_evaluation(self, a, b, env):
        assert a.add(b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(lin_exprs(), lin_exprs(), assignments())
    def test_sub_agrees_with_evaluation(self, a, b, env):
        assert a.sub(b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(lin_exprs(), small_ints, assignments())
    def test_scale_agrees_with_evaluation(self, a, k, env):
        assert a.scale(k).evaluate(env) == k * a.evaluate(env)

    @given(lin_exprs(), assignments())
    def test_negate_is_scale_minus_one(self, a, env):
        assert a.negate().evaluate(env) == -a.evaluate(env)

    @given(lin_exprs(), lin_exprs())
    def test_add_commutes(self, a, b):
        assert a.add(b) == b.add(a)


class TestCmpExprNegation:
    @given(st.sampled_from(OPS), lin_exprs(), assignments())
    def test_negation_partitions(self, op, lin, env):
        constraint = CmpExpr(op, lin)
        assert constraint.evaluate(env) != constraint.negate().evaluate(env)

    @given(st.sampled_from(OPS), lin_exprs())
    def test_double_negation_identity(self, op, lin):
        constraint = CmpExpr(op, lin)
        assert constraint.negate().negate() == constraint


class TestSolverSoundness:
    @settings(max_examples=60, deadline=None)
    @given(satisfiable_systems())
    def test_satisfiable_never_reported_unsat(self, case):
        witness, constraints = case
        result = Solver(seed=1).solve(constraints)
        assert result.status != UNSAT, (
            "solver refuted a system satisfied by {}".format(witness)
        )

    @settings(max_examples=60, deadline=None)
    @given(satisfiable_systems())
    def test_sat_models_verify(self, case):
        _, constraints = case
        result = Solver(seed=2).solve(constraints)
        if result.status == SAT:
            for constraint in constraints:
                assert constraint.evaluate(result.model)

    @settings(max_examples=40, deadline=None)
    @given(satisfiable_systems(), st.integers(min_value=0, max_value=9999))
    def test_deterministic_for_fixed_seed(self, case, seed):
        _, constraints = case
        a = Solver(seed=seed).solve(constraints)
        b = Solver(seed=seed).solve(constraints)
        assert a.status == b.status
        assert a.model == b.model

    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-50, max_value=50).filter(lambda c: c),
            min_size=1, max_size=4,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-100, max_value=100),
        ),
    )
    def test_omega_solves_every_witnessed_equality(self, coeffs, values):
        """Equalities with arbitrary coefficients (the Omega-elimination
        path) are decided SAT whenever a witness exists by construction."""
        witness = {v: values.get(v, 0) for v in coeffs}
        const = -sum(c * witness[v] for v, c in coeffs.items())
        constraint = CmpExpr(EQ, LinExpr(coeffs, const))
        result = Solver(seed=0).solve([constraint])
        assert result.status == SAT
        assert constraint.evaluate(result.model)

    @settings(max_examples=40, deadline=None)
    @given(satisfiable_systems())
    def test_models_respect_domains(self, case):
        _, constraints = case
        domains = {v: (-1000, 1000) for v in range(4)}
        result = Solver(seed=3).solve(constraints, domains)
        if result.status == SAT:
            for var, value in result.model.items():
                lo, hi = domains.get(var, (-(2**31), 2**31 - 1))
                assert lo <= value <= hi
