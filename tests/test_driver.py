"""Unit tests for interface extraction and test-driver generation."""

import pytest

from repro.dart.driver import (
    DRIVER_ENTRY,
    build_test_program,
    generate_driver,
    render_declarator,
    render_type,
)
from repro.dart.interface import extract_interface, exported_functions
from repro.minic import compile_program
from repro.minic import typesys as ts
from repro.minic.errors import SemanticError


SOURCE = """
struct packet { int kind; char payload; };
extern int config_flag;
int remote_lookup(int key);
int process(struct packet *p, int mode) {
  if (p == NULL) return -1;
  if (config_flag) return remote_lookup(mode);
  return p->kind;
}
"""


class TestInterfaceExtraction:
    def test_toplevel_params(self):
        iface, _ = extract_interface(SOURCE, "process")
        assert iface.toplevel == "process"
        assert len(iface.param_types) == 2
        assert iface.param_types[0].is_pointer()
        assert iface.param_types[1] == ts.INT

    def test_external_functions_found(self):
        iface, _ = extract_interface(SOURCE, "process")
        assert set(iface.external_functions) == {"remote_lookup"}

    def test_external_variables_found(self):
        iface, _ = extract_interface(SOURCE, "process")
        assert set(iface.external_variables) == {"config_flag"}

    def test_missing_toplevel_rejected(self):
        with pytest.raises(SemanticError, match="toplevel"):
            extract_interface(SOURCE, "no_such_function")

    def test_exported_functions_lists_definitions(self):
        assert list(exported_functions(SOURCE)) == ["process"]

    def test_array_param_decays(self):
        iface, _ = extract_interface(
            "int f(int data[8]) { return data[0]; }", "f"
        )
        assert iface.param_types[0] == ts.PointerType(ts.INT)


class TestTypeRendering:
    def test_scalars(self):
        assert render_type(ts.INT) == "int"
        assert render_type(ts.PointerType(ts.CHAR)) == "char *"
        assert render_declarator(ts.UINT, "x") == "unsigned int x"

    def test_struct_pointer(self):
        struct = ts.StructType("foo")
        assert render_declarator(ts.PointerType(struct), "p") \
            == "struct foo *p"

    def test_array(self):
        assert render_declarator(ts.ArrayType(ts.INT, 4), "a") == "int a[4]"

    def test_array_of_pointers(self):
        t = ts.ArrayType(ts.PointerType(ts.CHAR), 3)
        assert render_declarator(t, "argv") == "char *argv[3]"

    def test_double_pointer(self):
        t = ts.PointerType(ts.PointerType(ts.INT))
        assert render_declarator(t, "pp") == "int **pp"


class TestDriverGeneration:
    def test_driver_compiles_with_program(self):
        module = build_test_program(SOURCE, "process")
        assert DRIVER_ENTRY in module.functions

    def test_driver_defines_stub_for_external_function(self):
        iface, _ = extract_interface(SOURCE, "process")
        driver = generate_driver(iface)
        assert "int remote_lookup(int __dart_p0)" in driver

    def test_driver_initializes_external_variable(self):
        iface, _ = extract_interface(SOURCE, "process")
        driver = generate_driver(iface)
        assert "&config_flag" in driver

    def test_driver_depth_loop(self):
        iface, _ = extract_interface(SOURCE, "process")
        driver = generate_driver(iface, depth=3)
        assert "__dart_depth_i < 3" in driver

    def test_pointer_init_uses_coin_and_malloc(self):
        iface, _ = extract_interface(SOURCE, "process")
        driver = generate_driver(iface)
        assert "__dart_ptr_choice()" in driver
        assert "malloc(sizeof(struct packet))" in driver

    def test_recursive_type_generates_without_looping(self):
        source = """
        struct node { int value; struct node *next; };
        int length(struct node *head) {
          int n; n = 0;
          while (head != NULL && n < 100) { n = n + 1; head = head->next; }
          return n;
        }
        """
        module = build_test_program(source, "length")
        assert "__dart_init_s_node" in module.functions
        assert "__dart_init_p_s_node" in module.functions

    def test_bounded_init_depth_threads_counter(self):
        source = """
        struct node { int value; struct node *next; };
        int probe(struct node *head) { return head == NULL; }
        """
        iface, _ = extract_interface(source, "probe")
        driver = generate_driver(iface, max_init_depth=4)
        assert "__dart_d < 4" in driver
        assert "__dart_d + 1" in driver
        compile_program(source + driver)  # must be valid mini-C

    def test_void_pointer_param(self):
        source = "int f(void *p) { return p == NULL; }"
        module = build_test_program(source, "f")
        assert DRIVER_ENTRY in module.functions

    def test_struct_by_value_param(self):
        source = """
        struct pair { int a; int b; };
        int add(struct pair p) { return p.a + p.b; }
        """
        module = build_test_program(source, "add")
        assert DRIVER_ENTRY in module.functions

    def test_array_of_struct_field(self):
        source = """
        struct vec { int xs[3]; };
        int total(struct vec *v) {
          if (v == NULL) return 0;
          return v->xs[0] + v->xs[1] + v->xs[2];
        }
        """
        module = build_test_program(source, "total")
        assert DRIVER_ENTRY in module.functions

    def test_external_function_returning_pointer(self):
        source = """
        int *next_cell(void);
        int f(void) {
          int *p;
          p = next_cell();
          if (p == NULL) return 0;
          return *p;
        }
        """
        module = build_test_program(source, "f")
        assert "next_cell" in module.functions  # stubbed by the driver

    def test_external_void_function(self):
        source = """
        void notify(int code);
        int f(int x) { notify(x); return x; }
        """
        module = build_test_program(source, "f")
        assert "notify" in module.functions

    def test_char_param(self):
        module = build_test_program(
            "int f(char c) { return c + 1; }", "f"
        )
        assert DRIVER_ENTRY in module.functions
