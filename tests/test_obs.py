"""Unit tests for the observability layer (repro.obs).

Covers the trace bus and its sinks (round-trip through the JSONL
format), the metrics registry's deterministic merge semantics, the
phase timer, and the zero-overhead-when-disabled contract: a session
without sinks must never construct an event.
"""

import io
import json

import pytest

from repro import dart_check
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    JsonlTraceSink,
    ListSink,
    MetricsRegistry,
    PhaseTimer,
    RingBufferSink,
    TraceBus,
    read_trace,
    summarize_trace,
)
from repro.obs import trace as tr
from repro.programs import samples


class TestTraceBus:
    def test_disabled_until_sink_attached(self):
        bus = TraceBus()
        assert bus.enabled is False
        sink = bus.attach(ListSink())
        assert bus.enabled is True
        bus.detach(sink)
        assert bus.enabled is False

    def test_emit_stamps_seq_type_and_fields(self):
        bus = TraceBus()
        sink = bus.attach(ListSink())
        bus.emit(tr.BRANCH, function="f", pc=3, taken=True)
        bus.emit(tr.CHECKPOINT, wall_s=0.1)
        first, second = sink.events
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["type"] == tr.BRANCH
        assert first["function"] == "f" and first["pc"] == 3
        assert "ts" in first

    def test_fan_out_to_all_sinks(self):
        bus = TraceBus()
        a, b = bus.attach(ListSink()), bus.attach(ListSink())
        bus.emit(tr.GENERATION, size=4)
        assert a.events == b.events and len(a.events) == 1

    def test_forward_restamps_seq_without_mutating_original(self):
        bus = TraceBus()
        sink = bus.attach(ListSink())
        bus.emit(tr.RUN_STARTED, iteration=1)
        worker_event = {"seq": 99, "type": tr.RUN_FINISHED, "ts": 0.5,
                        "iteration": 0}
        bus.forward(worker_event)
        assert worker_event["seq"] == 99  # the worker's copy is untouched
        assert sink.events[1]["seq"] == 2
        assert sink.events[1]["type"] == tr.RUN_FINISHED

    def test_close_detaches_everything(self):
        bus = TraceBus()
        bus.attach(ListSink())
        bus.attach(ListSink())
        bus.close()
        assert bus.enabled is False

    def test_event_types_are_unique(self):
        assert len(set(tr.EVENT_TYPES)) == len(tr.EVENT_TYPES)


class TestRingBufferSink:
    def test_keeps_only_the_last_n(self):
        bus = TraceBus()
        ring = bus.attach(RingBufferSink(capacity=3))
        for i in range(10):
            bus.emit(tr.BRANCH, pc=i)
        tail = ring.tail()
        assert [e["pc"] for e in tail] == [7, 8, 9]

    def test_tail_is_a_copy(self):
        ring = RingBufferSink(capacity=2)
        ring.write({"seq": 1, "type": tr.BRANCH})
        tail = ring.tail()
        tail.clear()
        assert len(ring.tail()) == 1


class TestJsonlRoundTrip:
    def test_emit_write_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus()
        sink = bus.attach(JsonlTraceSink(str(path)))
        bus.emit(tr.SESSION_STARTED, toplevel="f", seed=7)
        bus.emit(tr.SOLVER_ANSWERED, verdict="sat", wall_s=0.001,
                 constraints=3)
        bus.emit(tr.SESSION_FINISHED, status="complete", iterations=1,
                 wall_s=0.01)
        bus.detach(sink)
        sink.close()
        events = list(read_trace(str(path)))
        assert [e["type"] for e in events] == [
            tr.SESSION_STARTED, tr.SOLVER_ANSWERED, tr.SESSION_FINISHED]
        assert events[0]["toplevel"] == "f" and events[0]["seed"] == 7
        assert events[1]["verdict"] == "sat"
        assert [e["seq"] for e in events] == [1, 2, 3]

    def test_read_trace_accepts_handle_and_skips_blank_lines(self):
        handle = io.StringIO('{"seq":1,"type":"branch"}\n\n'
                             '{"seq":2,"type":"checkpoint"}\n')
        events = list(read_trace(handle))
        assert len(events) == 2 and events[1]["type"] == tr.CHECKPOINT

    def test_round_trip_feeds_summarize(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TraceBus()
        sink = bus.attach(JsonlTraceSink(str(path)))
        bus.emit(tr.CONJUNCT_NEGATED, index=0, prefix=0, query=1)
        bus.emit(tr.SOLVER_ANSWERED, verdict="sat", wall_s=0.002,
                 constraints=1)
        bus.emit(tr.RUN_FINISHED, iteration=1, status="ok", planned=True,
                 new_path=True, wall_s=0.003, steps=10, branches=2)
        bus.emit(tr.SESSION_FINISHED, status="complete", iterations=1,
                 wall_s=0.02)
        sink.close()
        summary = summarize_trace(read_trace(str(path)))
        assert summary["funnel"] == {
            "attempted": 1, "sat": 1, "forced": 1, "new_path": 1}
        assert summary["runs"]["total"] == 1 and summary["runs"]["ok"] == 1
        assert summary["wall_s"] == 0.02


class TestDisabledOverheadGuard:
    """A session with no sinks must never reach TraceBus.emit."""

    def test_untraced_session_never_constructs_an_event(self, monkeypatch):
        def boom(self, event_type, **fields):  # pragma: no cover - guard
            raise AssertionError(
                "TraceBus.emit called with no sink attached")

        monkeypatch.setattr(TraceBus, "emit", boom)
        result = dart_check(samples.H_SOURCE, samples.H_TOPLEVEL,
                            max_iterations=50, seed=0)
        assert result.found_error  # the search itself still works

    def test_section_is_shared_noop_when_disabled(self):
        timer = PhaseTimer()
        assert timer.section("execute") is timer.section("solve")
        with timer.section("execute"):
            pass
        assert timer.seconds == {}


class TestCounterGauge:
    def test_counter_inc_and_merge(self):
        counter = Counter("runs")
        counter.inc()
        counter.inc(4)
        assert counter.to_dict() == 5
        counter.merge(3)
        assert counter.value == 8

    def test_gauge_tracks_peak_and_merges_by_max(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.to_dict() == {"value": 2, "peak": 5}
        gauge.merge({"value": 4, "peak": 4})
        assert gauge.value == 4 and gauge.peak == 5


class TestHistogram:
    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("bad", (1, 1, 2))

    def test_observe_buckets_and_overflow(self):
        hist = Histogram("h", (1, 10))
        for value in (0.5, 1, 7, 100):
            hist.observe(value)
        assert hist.counts == [2, 1, 1]  # <=1, <=10, overflow
        assert hist.count == 4
        assert hist.mean == pytest.approx(108.5 / 4)

    def test_merge_adds_elementwise(self):
        a, b = Histogram("h", (1, 10)), Histogram("h", (1, 10))
        a.observe(0.5)
        b.observe(5)
        b.observe(50)
        a.merge(b.to_dict())
        assert a.counts == [1, 1, 1] and a.count == 3

    def test_merge_rejects_mismatched_buckets(self):
        a, b = Histogram("h", (1, 10)), Histogram("h", (1, 20))
        with pytest.raises(ValueError):
            a.merge(b.to_dict())

    def test_quantile_returns_bucket_bound(self):
        hist = Histogram("h", (1, 10, 100))
        for value in (0.5, 0.5, 5, 50):
            hist.observe(value)
        assert hist.quantile(0.5) == 1
        assert hist.quantile(1.0) == 100


class TestMetricsRegistry:
    def fill(self, registry, runs, depth, latencies):
        registry.counter("runs").inc(runs)
        registry.gauge("depth").set(depth)
        hist = registry.histogram("latency", (0.001, 0.01, 0.1))
        for value in latencies:
            hist.observe(value)

    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h", (1,)) is registry.histogram("h")

    def test_histogram_requires_buckets_on_first_use(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h")

    def test_merge_is_order_independent(self):
        snapshots = []
        for runs, depth, latencies in (
            (3, 2, [0.0005, 0.05]), (5, 7, [0.005]), (1, 1, [0.5, 0.005]),
        ):
            registry = MetricsRegistry()
            self.fill(registry, runs, depth, latencies)
            snapshots.append(registry.to_dict())

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snap in snapshots:
            forward.merge(snap)
        for snap in reversed(snapshots):
            backward.merge(snap)
        assert forward.to_dict() == backward.to_dict()
        assert forward.counter("runs").value == 9
        assert forward.gauge("depth").peak == 7

    def test_to_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        self.fill(registry, 2, 3, [0.002])
        payload = json.loads(json.dumps(registry.to_dict()))
        other = MetricsRegistry()
        other.merge(payload)
        assert other.to_dict() == registry.to_dict()


class TestPhaseTimer:
    def test_sections_accumulate_when_enabled(self):
        timer = PhaseTimer(enabled=True)
        with timer.section("solve"):
            pass
        with timer.section("solve"):
            pass
        snap = timer.snapshot()
        assert snap["solve"]["count"] == 2
        assert snap["solve"]["seconds"] >= 0.0

    def test_merge_adds_seconds_and_counts(self):
        a, b = PhaseTimer(), PhaseTimer()
        a.add("execute", 0.25, count=2)
        b.add("execute", 0.75, count=3)
        b.add("cache", 0.1)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["execute"] == {"seconds": 1.0, "count": 5}
        assert snap["cache"] == {"seconds": 0.1, "count": 1}
