"""The chaos harness (repro.faults.chaos) and its CLI surface."""

import json
import os

import pytest

from repro import cli
from repro.faults import points as fault_points
from repro.faults.chaos import (
    BENCHMARKS,
    PROBE_SITES,
    chaos_probe,
    run_chaos,
)
from repro.faults.plan import SIGNAL_SITES
from repro.programs.ac_controller import (
    AC_CONTROLLER_SOURCE,
    AC_CONTROLLER_TOPLEVEL,
)


class TestRunChaos:
    def test_rotation_covers_every_benchmark(self, tmp_path):
        out_dir = str(tmp_path / "artifacts")
        report = run_chaos(seed=3, schedules=len(BENCHMARKS),
                           out_dir=out_dir)
        assert report.ok, report.describe()
        assert {outcome.benchmark for outcome in report.outcomes} == \
            {benchmark.name for benchmark in BENCHMARKS}
        # Artifacts: one directory per schedule plus the campaign report.
        payload = json.load(open(os.path.join(out_dir, "report.json")))
        assert payload["ok"] is True
        assert len(payload["outcomes"]) == len(BENCHMARKS)
        for index in range(len(BENCHMARKS)):
            run_dir = os.path.join(out_dir,
                                   "schedule-{:03d}".format(index))
            outcome = json.load(open(os.path.join(run_dir,
                                                  "outcome.json")))
            assert outcome["violations"] == []
            assert os.path.exists(os.path.join(run_dir, "trace.jsonl"))

    def test_schedules_are_replayable(self):
        first = run_chaos(seed=11, schedules=2)
        second = run_chaos(seed=11, schedules=2)
        assert [outcome.plan_spec for outcome in first.outcomes] == \
            [outcome.plan_spec for outcome in second.outcomes]
        assert [outcome.fired for outcome in first.outcomes] == \
            [outcome.fired for outcome in second.outcomes]

    def test_harness_leaves_no_injector_behind(self):
        run_chaos(seed=5, schedules=1)
        assert fault_points.ACTIVE is None


class TestChaosProbe:
    OPTIONS = dict(depth=2, strategy="bfs", seed=0, max_iterations=150,
                   stop_on_first_error=False, handle_signals=False)

    def test_probe_sites_are_in_process_only(self):
        assert not set(PROBE_SITES) & SIGNAL_SITES
        assert "worker.kill" not in PROBE_SITES
        assert not any(site.startswith("persist.")
                       for site in PROBE_SITES)

    def test_probe_holds_on_clean_stack(self):
        # A few seeds so at least one plan actually fires.
        for plan_seed in range(4):
            violations = chaos_probe(
                AC_CONTROLLER_SOURCE, AC_CONTROLLER_TOPLEVEL,
                dict(self.OPTIONS), plan_seed)
            assert violations == []
        assert fault_points.ACTIVE is None


class TestChaosCli:
    def test_chaos_command_ok(self, tmp_path, capsys):
        out_dir = str(tmp_path / "artifacts")
        code = cli.main(["chaos", "--seed", "2", "--schedules", "2",
                         "--benchmark", "h-dfs", "--out", out_dir,
                         "--progress-every", "0"])
        assert code == 0
        assert "violation(s)" in capsys.readouterr().out
        assert os.path.exists(os.path.join(out_dir, "report.json"))

    def test_chaos_command_json(self, capsys):
        code = cli.main(["chaos", "--schedules", "1",
                         "--benchmark", "ac-bfs", "--json",
                         "--progress-every", "0"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_chaos_command_rejects_unknown_benchmark(self, capsys):
        code = cli.main(["chaos", "--benchmark", "nope"])
        assert code == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_fault_plan_flag_rejects_bad_spec(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(AC_CONTROLLER_SOURCE)
        code = cli.main([str(source), AC_CONTROLLER_TOPLEVEL,
                         "--fault-plan", "solver.meltdown@1"])
        assert code == 2
        assert "bad --fault-plan" in capsys.readouterr().err

    def test_fault_plan_flag_injects(self, tmp_path, capsys):
        source = tmp_path / "p.c"
        source.write_text(AC_CONTROLLER_SOURCE)
        code = cli.main([str(source), AC_CONTROLLER_TOPLEVEL,
                         "--depth", "2", "--strategy", "bfs",
                         "--all-errors", "--max-iterations", "150",
                         "--fault-plan", "solver.raise@2", "--json"])
        assert code == 1  # the AC bug is still found
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["faults_injected"] == 1
        assert payload["stats"]["solver_failures"] == 1
