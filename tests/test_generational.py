"""Regression tests for the generational worklist engine (bfs/random).

A naive reordering of Fig. 5's single stack silently discards unexplored
deep branches when a shallow one is flipped — the original implementation
of the bfs strategy claimed "complete" on the paper's h example after
exploring only 2 of 3 feasible paths.  These tests pin the fixed
behaviour: the worklist engines must reach everything DFS reaches.
"""

import pytest

from repro import DartOptions, dart_check

NESTED = """
int f(int a, int b, int c) {
  if (a == 1) {
    if (b == 2) {
      if (c == 3) {
        abort();
      }
    }
  }
  return 0;
}
"""

LADDER = """
int f(int a, int b) {
  int score;
  score = 0;
  if (a > 10) score = score + 1;
  if (b > 20) score = score + 1;
  if (a > 10 && b > 20 && a + b == 1000) abort();
  return score;
}
"""


class TestWorklistReachesDeepBranches:
    @pytest.mark.parametrize("strategy", ["bfs", "random"])
    def test_three_level_nest(self, strategy):
        result = dart_check(NESTED, "f", strategy=strategy,
                            max_iterations=200, seed=0)
        assert result.status == "bug_found", strategy
        assert result.first_error().inputs == [1, 2, 3]

    @pytest.mark.parametrize("strategy", ["bfs", "random"])
    def test_ladder_with_conjunction(self, strategy):
        result = dart_check(LADDER, "f", strategy=strategy,
                            max_iterations=500, seed=1)
        assert result.status == "bug_found", strategy
        a, b = result.first_error().inputs
        assert a > 10 and b > 20 and a + b == 1000

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "random"])
    def test_identical_verdicts_across_engines(self, strategy):
        source = """
        int f(int x) {
          if (x > 100)
            if (x < 200)
              if (x % 2 == 0)
                return 1;
          return 0;
        }
        """
        result = dart_check(source, "f", strategy=strategy,
                            max_iterations=500, seed=0)
        # x % 2 is non-linear: no engine may claim completeness, and no
        # engine may report an error (there is none).
        assert not result.found_error
        assert result.status == "exhausted", strategy

    @pytest.mark.parametrize("strategy", ["bfs", "random"])
    def test_complete_on_full_exploration(self, strategy):
        source = """
        int f(int x) {
          if (x == 5) return 1;
          if (x == 6) return 2;
          return 0;
        }
        """
        result = dart_check(source, "f", strategy=strategy,
                            max_iterations=200, seed=0)
        assert result.status == "complete", strategy
        assert len(result.stats.distinct_paths) == 3

    @pytest.mark.parametrize("strategy", ["bfs", "random"])
    def test_no_duplicate_path_exploration(self, strategy):
        source = """
        int f(int x, int y) {
          if (x > 0)
            if (y > 0)
              return 1;
          return 0;
        }
        """
        result = dart_check(source, "f", strategy=strategy,
                            max_iterations=200, seed=0)
        assert result.status == "complete"
        # Each feasible path executed exactly once.
        assert result.stats.paths_explored == len(
            result.stats.distinct_paths
        )

    def test_bfs_finds_shallow_bug_before_exploring_deep(self):
        source = """
        int f(int x, int y) {
          if (x == 7) abort();          /* shallow */
          if (x > 0)
            if (y > 0)
              if (x + y == 555) abort();  /* deep */
          return 0;
        }
        """
        bfs = dart_check(source, "f", strategy="bfs",
                         max_iterations=200, seed=0)
        assert bfs.found_error
        assert bfs.first_error().inputs[0] == 7  # the shallow one first
