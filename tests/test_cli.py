"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.c"
    path.write_text("""
int f(int x, int y) {
  if (x != y)
    if (2 * x == x + 10)
      abort();
  return 0;
}
""")
    return str(path)


class TestCli:
    def test_bug_found_exit_code(self, program_file, capsys):
        code = main([program_file, "f", "--max-iterations", "100"])
        assert code == 1
        out = capsys.readouterr().out
        assert "Bug found" in out
        assert "coverage:" in out
        assert "solver calls" in out

    def test_clean_program_exit_code(self, tmp_path, capsys):
        path = tmp_path / "clean.c"
        path.write_text("int f(int x) { if (x > 0) return 1; return 0; }")
        code = main([str(path), "f"])
        assert code == 0
        assert "all" in capsys.readouterr().out

    def test_random_baseline_flag(self, program_file, capsys):
        code = main([program_file, "f", "--random",
                     "--max-iterations", "50"])
        assert code == 0  # random testing cannot find this one
        assert "0 error(s)" in capsys.readouterr().out

    def test_quiet_mode(self, program_file, capsys):
        main([program_file, "f", "--quiet", "--max-iterations", "50"])
        out = capsys.readouterr().out
        assert "coverage" not in out
        assert len(out.strip().splitlines()) == 1

    def test_disasm_mode(self, program_file, capsys):
        code = main([program_file, "--disasm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "branch" in out and "abort" in out

    def test_missing_file(self, capsys):
        code = main(["/no/such/file.c", "f"])
        assert code == 2

    def test_compile_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("int f( { return 0; }")
        code = main([str(path), "f"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_toplevel_function(self, program_file, capsys):
        code = main([program_file, "nonexistent"])
        assert code == 2

    def test_toplevel_required_without_disasm(self, program_file, capsys):
        code = main([program_file])
        assert code == 2

    def test_all_errors_flag(self, tmp_path, capsys):
        path = tmp_path / "multi.c"
        path.write_text("""
        int f(int x) {
          if (x == 1) abort();
          if (x == 2) { int z; z = 0; return 3 / z; }
          return 0;
        }
        """)
        code = main([str(path), "f", "--all-errors",
                     "--max-iterations", "200"])
        assert code == 1
        out = capsys.readouterr().out
        assert "abort" in out and "division by zero" in out

    def test_json_output(self, program_file, capsys):
        code = main([program_file, "f", "--json",
                     "--max-iterations", "100"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "bug_found"
        assert payload["errors"][0]["kind"] == "abort"
        assert payload["errors"][0]["inputs"]
        assert payload["errors"][0]["kinds"]
        assert payload["quarantined"] == []
        assert payload["stats"]["iterations"] >= 1
        assert payload["coverage"]["total_directions"] == 4
        assert payload["flags"]["forcing_ok"] is True
        assert payload["resumed"] is False

    def test_json_clean_program(self, tmp_path, capsys):
        path = tmp_path / "clean.c"
        path.write_text("int f(int x) { if (x > 0) return 1; return 0; }")
        code = main([str(path), "f", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "complete"
        assert payload["errors"] == []

    def test_state_file_resume(self, tmp_path, capsys):
        path = tmp_path / "ac.c"
        path.write_text("""
        int hot = 0; int closed = 0; int ac = 0;
        void ctl(int m) {
          if (m == 0) hot = 1;
          if (m == 3) { closed = 1; if (hot) ac = 1; }
          if (hot && closed && !ac) abort();
        }
        """)
        state = str(tmp_path / "state.json")
        first = main([str(path), "ctl", "--max-iterations", "2",
                      "--state-file", state])
        assert first == 0
        assert os.path.exists(state)
        assert "exhausted" in capsys.readouterr().out.lower()
        second = main([str(path), "ctl", "--max-iterations", "100",
                       "--state-file", state, "--json"])
        assert second == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["resumed"] is True
        assert payload["status"] == "complete"
        assert not os.path.exists(state)  # cleared on clean termination

    def test_state_file_in_missing_directory_fails_fast(
        self, program_file, capsys
    ):
        code = main([program_file, "f",
                     "--state-file", "/no/such/dir/state.json"])
        assert code == 2
        assert "--state-file directory" in capsys.readouterr().err

    def test_run_time_limit_flag(self, tmp_path, capsys):
        path = tmp_path / "slow.c"
        path.write_text("""
        int f(int x) {
          int i;
          i = 0;
          if (x == 5) { while (i < 50000000) i = i + 1; }
          return i;
        }
        """)
        code = main([str(path), "f", "--run-time-limit", "0.1",
                     "--max-iterations", "5", "--strategy", "bfs"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quarantined" in out and "run-timeout" in out

    def test_depth_option(self, tmp_path, capsys):
        path = tmp_path / "ac.c"
        path.write_text("""
        int hot = 0; int closed = 0; int ac = 0;
        void ctl(int m) {
          if (m == 0) hot = 1;
          if (m == 3) { closed = 1; if (hot) ac = 1; }
          if (hot && closed && !ac) abort();
        }
        """)
        assert main([str(path), "ctl", "--depth", "1",
                     "--max-iterations", "100"]) == 0
        assert main([str(path), "ctl", "--depth", "2",
                     "--max-iterations", "500"]) == 1
