"""Unit tests for the 32-bit machine-arithmetic helpers."""

import hypothesis.strategies as st
from hypothesis import given

from repro.interp import values
from repro.minic import typesys as ts


class TestWrapping:
    def test_wrap_signed_identity_in_range(self):
        assert values.wrap_signed(123) == 123
        assert values.wrap_signed(-123) == -123

    def test_wrap_signed_overflow(self):
        assert values.wrap_signed(2**31) == -(2**31)
        assert values.wrap_signed(2**31 - 1) == 2**31 - 1
        assert values.wrap_signed(-(2**31) - 1) == 2**31 - 1

    def test_wrap_unsigned(self):
        assert values.wrap_unsigned(2**32) == 0
        assert values.wrap_unsigned(-1) == 2**32 - 1

    def test_narrow_widths(self):
        assert values.wrap_signed(200, size=1) == -56
        assert values.wrap_unsigned(257, size=1) == 1
        assert values.wrap_signed(0x18000, size=2) == -(0x8000)

    def test_wrap_dispatches_on_type(self):
        assert values.wrap(300, ts.CHAR) == 44
        assert values.wrap(300, ts.UCHAR) == 44
        assert values.wrap(-1, ts.UCHAR) == 255
        assert values.wrap(2**31, ts.INT) == -(2**31)

    def test_to_unsigned(self):
        assert values.to_unsigned(-1) == 0xFFFFFFFF
        assert values.to_unsigned(5) == 5


class TestCDivMod:
    def test_truncation_toward_zero(self):
        assert values.c_div(7, 2) == 3
        assert values.c_div(-7, 2) == -3
        assert values.c_div(7, -2) == -3
        assert values.c_div(-7, -2) == 3

    def test_mod_sign_follows_dividend(self):
        assert values.c_mod(7, 2) == 1
        assert values.c_mod(-7, 2) == -1
        assert values.c_mod(7, -2) == 1
        assert values.c_mod(-7, -2) == -1

    @given(st.integers(min_value=-10**9, max_value=10**9),
           st.integers(min_value=-10**9, max_value=10**9).filter(bool))
    def test_division_identity(self, a, b):
        assert values.c_div(a, b) * b + values.c_mod(a, b) == a

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=1, max_value=10**6))
    def test_remainder_magnitude(self, a, b):
        assert abs(values.c_mod(a, b)) < b


class TestByteCodecs:
    def test_roundtrip_signed(self):
        for value in (-1, 0, 1, -(2**31), 2**31 - 1):
            data = values.int_to_bytes(value, 4, signed=True)
            assert values.int_from_bytes(data, signed=True) == value

    def test_roundtrip_unsigned(self):
        for value in (0, 1, 2**32 - 1):
            data = values.int_to_bytes(value, 4, signed=False)
            assert values.int_from_bytes(data, signed=False) == value

    def test_little_endian_layout(self):
        assert values.int_to_bytes(0x01020304, 4, signed=False) == \
            b"\x04\x03\x02\x01"

    def test_encode_wraps_out_of_range(self):
        assert values.int_to_bytes(2**31, 4, signed=True) == \
            b"\x00\x00\x00\x80"

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_roundtrip_property(self, value):
        data = values.int_to_bytes(value, 4, signed=True)
        assert values.int_from_bytes(data, signed=True) == value
