"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Bug found" in out
        assert "x = 10" in out

    def test_protocol_testing_fast_mode(self, capsys):
        load_example("protocol_testing").main(full=False)
        out = capsys.readouterr().out
        assert "possibilistic" in out
        assert "Bug found" in out  # the depth-2 projection attack
        assert "Dolev-Yao" in out

    def test_library_fuzzing_small_sample(self, capsys):
        load_example("library_fuzzing").main(6)
        out = capsys.readouterr().out
        assert "CRASH" in out
        assert "alloca attack" in out

    def test_coverage_and_ir(self, capsys):
        load_example("coverage_and_ir").main()
        out = capsys.readouterr().out
        assert "branch" in out
        assert "100.0%" in out
        assert "uninitialized read" in out

    def test_check_c_file_cli(self, tmp_path, capsys):
        module = load_example("check_c_file")
        path = tmp_path / "prog.c"
        path.write_text(
            "int f(int x) { if (x == 99) abort(); return 0; }"
        )
        code = module.main([str(path), "f", "--max-iterations", "100"])
        assert code == 1
        assert "Bug found" in capsys.readouterr().out

    def test_dy_attack_decoder(self):
        protocol = load_example("protocol_testing")
        lines = protocol.describe_dy_attack(
            [2, 0, 0, 4, 101, 1, 3, 1, 0, 5, 102, 0]
        )
        assert "intruder" in lines[0] or "A starts" in lines[0]
        assert any("msg1" in line for line in lines)
        assert any("forwards" in line for line in lines)
        assert any("msg3" in line for line in lines)
