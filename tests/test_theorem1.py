"""Theorem 1 of the paper, checked empirically.

(a) *Soundness*: every "Bug found" comes with an input vector; replaying
    that vector deterministically reproduces the error.
(b) *Completeness*: if the session terminates without a bug and both
    completeness flags are still set, re-running with a different seed
    explores the same set of paths and still finds nothing.
(invariant) ``all_linear and all_locs_definite  =>  forcing_ok`` holds at
    session end, and completeness is never claimed when an unsound
    fallback occurred.
"""

import pytest

from repro import DartOptions, dart_check
from repro.dart.runner import Dart
from repro.programs import samples
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE

#: (source, toplevel, depth) programs with a reachable error.
BUGGY = [
    (samples.H_SOURCE, "h", 1),
    (samples.FOOBAR_SOURCE, "foobar", 1),
    (samples.FILTER_SOURCE, "entry", 1),
    (AC_CONTROLLER_SOURCE, "ac_controller", 2),
]

#: Programs DART proves error-free by exhausting all feasible paths.
CLEAN = [
    (samples.Z_SOURCE, "f", 1),
    (AC_CONTROLLER_SOURCE, "ac_controller", 1),
    ("int f(int x) { if (x == 4) return 1; return 0; }", "f", 1),
    ("int f(int x, int y) { if (x < y) if (y < x) abort(); return 0; }",
     "f", 1),
]


class TestSoundness:
    @pytest.mark.parametrize("source,toplevel,depth", BUGGY)
    def test_errors_replay(self, source, toplevel, depth):
        options = DartOptions(depth=depth, max_iterations=2000, seed=4)
        dart = Dart(source, toplevel, options)
        result = dart.run()
        assert result.found_error
        fault = dart.replay(result.first_error().inputs)
        assert fault is not None, "reported error did not replay"
        assert fault.kind == result.first_error().kind

    @pytest.mark.parametrize("source,toplevel,depth", BUGGY)
    def test_replay_is_deterministic(self, source, toplevel, depth):
        options = DartOptions(depth=depth, max_iterations=2000, seed=4)
        dart = Dart(source, toplevel, options)
        result = dart.run()
        inputs = result.first_error().inputs
        first = dart.replay(inputs)
        second = dart.replay(inputs)
        assert first.kind == second.kind
        assert str(first.location) == str(second.location)


class TestCompleteness:
    @pytest.mark.parametrize("source,toplevel,depth", CLEAN)
    def test_clean_programs_terminate_complete(self, source, toplevel,
                                               depth):
        result = dart_check(source, toplevel, depth=depth,
                            max_iterations=2000, seed=0)
        assert result.status == "complete"
        assert result.flags == (True, True, True, True)

    @pytest.mark.parametrize("source,toplevel,depth", CLEAN)
    def test_path_set_is_seed_independent(self, source, toplevel, depth):
        runs = [
            dart_check(source, toplevel, depth=depth,
                       max_iterations=2000, seed=seed)
            for seed in (0, 1, 2)
        ]
        path_sets = [r.stats.distinct_paths for r in runs]
        assert path_sets[0] == path_sets[1] == path_sets[2]

    def test_completeness_not_claimed_with_nonlinear_code(self):
        # A non-linear guard: even when every flippable branch is
        # exhausted, DART must keep searching (never report complete).
        # x*x == 7 is unreachable even with wrap-around (squares are never
        # congruent to 7 mod 8), but DART cannot prove that.
        source = """
        int f(int x) { if (x * x == 7) abort(); return 0; }
        """
        result = dart_check(source, "f", max_iterations=50, seed=0)
        assert result.status == "exhausted"  # runs forever in principle
        all_linear = result.flags[0]
        assert not all_linear

    def test_completeness_not_claimed_with_symbolic_address(self):
        source = """
        int table[4];
        int f(int i) {
          if (i < 0) return -1;
          if (i > 3) return -1;
          if (table[i] == 1) abort();
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=100, seed=0)
        all_locs = result.flags[1]
        assert not all_locs
        assert result.status == "exhausted"


class TestInvariant:
    """all_linear and all_locs_definite => forcing_ok (end of §2.3)."""

    PROGRAMS = BUGGY + CLEAN + [
        (samples.STRUCT_CAST_SOURCE, "bar", 1),
        ("""
        int f(int x, int y) {
          int z;
          z = x * y;        /* non-linear */
          if (z > 100) if (x == 3) abort();
          return 0;
        }
        """, "f", 1),
    ]

    @pytest.mark.parametrize("source,toplevel,depth", PROGRAMS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_invariant_at_session_end(self, source, toplevel, depth, seed):
        result = dart_check(source, toplevel, depth=depth,
                            max_iterations=300, seed=seed)
        all_linear, all_locs, forcing_ok = result.flags[:3]
        if all_linear and all_locs:
            assert forcing_ok
