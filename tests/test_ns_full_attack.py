"""The full Lowe attack at depth 4 (slow; run with ``-m slow``).

This is the headline of Fig. 10: the Dolev-Yao intruder model admits no
attack of input length <= 3, and DART's systematic directed search finds
the complete six-step Lowe attack at input length 4 — something the
state-space exploration of [13] (VeriSoft) only managed with heuristics.
"""

import pytest

from repro import dart_check
from repro.programs.needham_schroeder import ns_source

pytestmark = pytest.mark.slow

AGENT_A, AGENT_B, AGENT_I = 1, 2, 3
NONCE_A, NONCE_B = 101, 102


def test_depth4_lowe_attack_step_by_step():
    result = dart_check(ns_source("dolev_yao"), "ns_dy_step",
                        depth=4, max_iterations=400_000, seed=0,
                        time_limit=900)
    assert result.status == "bug_found"
    inputs = result.first_error().inputs
    steps = [tuple(inputs[i:i + 3]) for i in range(0, 12, 3)]
    # Step 1 of Lowe's attack: A starts a session with the intruder.
    assert steps[0][0] == 2
    # Step 2: I composes msg1 {Na, A}Kb for B (it learned Na in step 1).
    assert steps[1][0] == 4
    assert steps[1][1] == NONCE_A
    assert steps[1][2] == AGENT_A
    # Steps 3+4: I forwards B's msg2 {Na, Nb}Ka to A, who replies {Nb}Ki.
    assert steps[2][0] == 3
    # Steps 5+6: I composes msg3 {Nb}Kb; B commits a session "with A".
    assert steps[3][0] == 5
    assert steps[3][1] == NONCE_B
    assert result.first_error().kind == "assertion violation"
