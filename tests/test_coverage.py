"""Tests for branch-direction coverage accounting."""

from repro import DartOptions, dart_check, random_check
from repro.dart.coverage import BranchCoverage, count_branch_directions
from repro.dart.driver import build_test_program
from repro.programs import samples
from repro.programs.ac_controller import AC_CONTROLLER_SOURCE


class TestCounting:
    def test_total_directions(self):
        module = build_test_program(samples.H_SOURCE, "h")
        # h has two conditionals -> 4 directions; driver code excluded.
        assert count_branch_directions(module) == 4

    def test_driver_branches_excluded(self):
        module = build_test_program(
            "struct box { int v; }; int f(struct box *b) "
            "{ return b == NULL; }", "f",
        )
        # The program's one conditional (b == NULL via return? no - the
        # comparison is a value, not a branch): zero branches; all the
        # coin-toss branches live in __dart_* code and must not count.
        assert count_branch_directions(module) == 0

    def test_empty_coverage(self):
        module = build_test_program(samples.H_SOURCE, "h")
        coverage = BranchCoverage(module, set())
        assert coverage.covered_directions == 0
        assert coverage.percent == 0.0

    def test_full_coverage_percent(self):
        module = build_test_program(samples.H_SOURCE, "h")
        coverage = BranchCoverage(module, {
            ("h", pc, taken)
            for (name, pc, taken, _) in BranchCoverage(
                module, set()
            ).uncovered(module)
        })
        assert coverage.percent == 100.0

    def test_describe(self):
        module = build_test_program(samples.H_SOURCE, "h")
        coverage = BranchCoverage(module, set())
        assert "0/4" in coverage.describe()


class TestSessionCoverage:
    def test_complete_session_covers_all_feasible(self):
        # A program where every branch direction is feasible: complete
        # exploration yields 100% branch-direction coverage.
        source = """
        int f(int a, int b) {
          if (a > 0) { if (b == 3) return 2; return 1; }
          return 0;
        }
        """
        result = dart_check(source, "f", max_iterations=100, seed=0)
        assert result.complete
        assert result.coverage.percent == 100.0

    def test_depth_limits_feasible_directions(self):
        # AC controller at depth 1: the alarm conjunction needs two
        # messages (hot AND closed), so 4 of 16 directions are infeasible;
        # the complete search covers exactly the other 12.
        result = dart_check(AC_CONTROLLER_SOURCE, "ac_controller",
                            depth=1, max_iterations=200, seed=0)
        assert result.complete
        assert result.coverage.covered_directions == 12
        assert result.coverage.total_directions == 16
        # At depth 2 the previously unreachable directions open up.
        deeper = dart_check(AC_CONTROLLER_SOURCE, "ac_controller",
                            depth=2, max_iterations=500, seed=0)
        assert deeper.coverage.covered_directions > 12

    def test_infeasible_direction_stays_uncovered(self):
        # §2.4: the inner then-branch is infeasible; complete exploration
        # still leaves exactly one direction uncovered.
        result = dart_check(samples.Z_SOURCE, "f",
                            max_iterations=50, seed=0)
        assert result.complete
        assert result.coverage.covered_directions == 3
        assert result.coverage.total_directions == 4
        module = build_test_program(samples.Z_SOURCE, "f")
        missing = result.coverage.uncovered(module)
        assert len(missing) == 1
        assert missing[0][2] is True  # the never-taken then direction

    def test_directed_beats_random_on_filter_code(self):
        # The introduction's claim, measured: "if (x == 10)"-style filters
        # give random testing ~0 coverage of the then branch.
        budget = 200
        directed = dart_check(
            samples.FILTER_SOURCE, "entry",
            DartOptions(max_iterations=budget, seed=0,
                        stop_on_first_error=False),
        )
        baseline = random_check(
            samples.FILTER_SOURCE, "entry",
            DartOptions(max_iterations=budget, seed=0,
                        stop_on_first_error=False),
        )
        assert directed.coverage.percent == 100.0
        assert baseline.coverage.percent < directed.coverage.percent

    def test_random_covers_fifty_fifty_branches(self):
        source = "int f(int x) { if (x > 0) return 1; return 0; }"
        result = random_check(source, "f", max_iterations=50, seed=0)
        assert result.coverage.percent == 100.0

    def test_coverage_attached_to_every_result(self):
        for status_source in (samples.H_SOURCE, samples.Z_SOURCE):
            toplevel = "h" if status_source is samples.H_SOURCE else "f"
            result = dart_check(status_source, toplevel,
                                max_iterations=20, seed=0)
            assert result.coverage is not None
            assert 0.0 <= result.coverage.percent <= 100.0
