"""Unit tests for the AST -> RAM-machine IR lowering."""

import pytest

from repro.minic import compile_program, ir
from repro.minic.errors import LoweringError
from repro.minic.parser import parse_program
from repro.minic.semantic import analyze
from repro.minic.lower import lower_program


def lower(source):
    program = parse_program(source)
    return lower_program(program, analyze(program))


def instrs(source, name="f"):
    return lower(source).functions[name].instrs


def count(source, instr_type, name="f"):
    return sum(
        1 for i in instrs(source, name) if isinstance(i, instr_type)
    )


class TestControlFlowLowering:
    def test_if_produces_one_branch(self):
        src = "int f(int x) { if (x) return 1; return 0; }"
        assert count(src, ir.Branch) == 1

    def test_every_branch_target_resolved(self):
        src = """
        int f(int x) {
          int i;
          for (i = 0; i < x; i++) { if (i == 2) continue; }
          while (x > 0) { x--; if (x == 1) break; }
          return x;
        }
        """
        for instr in instrs(src):
            if isinstance(instr, (ir.Branch, ir.Jump)):
                assert isinstance(instr.target, int)
                assert 0 <= instr.target <= len(instrs(src))

    def test_short_circuit_becomes_two_branches(self):
        # Each primitive predicate of `a && b` is one Branch, so the
        # directed search can flip them independently (the paper's foobar
        # discussion).
        src = "int f(int a, int b) { if (a > 0 && b > 0) return 1; return 0; }"
        assert count(src, ir.Branch) == 2

    def test_or_chain(self):
        src = ("int f(int a, int b, int c)"
               " { if (a || b || c) return 1; return 0; }")
        assert count(src, ir.Branch) == 3

    def test_negation_swaps_targets_without_extra_branch(self):
        src = "int f(int a) { if (!a) return 1; return 0; }"
        assert count(src, ir.Branch) == 1

    def test_value_position_boolean_uses_temp(self):
        # 2 params + r = 12 bytes; the && lowering adds a temp slot.
        src = "int f(int a, int b) { int r; r = a && b; return r; }"
        func = lower(src).functions["f"]
        assert func.frame_size >= 16
        assert count(src, ir.Branch) == 2

    def test_ternary_in_value_position(self):
        src = "int f(int a) { return a > 0 ? a : -a; }"
        assert count(src, ir.Branch) == 1

    def test_assert_lowers_to_branch_plus_abort(self):
        src = "int f(int x) { assert(x > 0); return x; }"
        assert count(src, ir.Branch) == 1
        assert count(src, ir.AbortInstr) == 1

    def test_abort_reason_distinguishes_assert(self):
        src = "int f(int x) { assert(x); abort(); }"
        reasons = [
            i.reason for i in instrs(src) if isinstance(i, ir.AbortInstr)
        ]
        assert reasons == ["assertion violation", "abort"]

    def test_trailing_implicit_return(self):
        src = "void f(int x) { x = x + 1; }"
        assert isinstance(instrs(src)[-1], ir.Ret)


class TestFrameLayout:
    def test_params_then_locals(self):
        src = "int f(int a, char b) { int c; c = a + b; return c; }"
        func = lower(src).functions["f"]
        offsets = [slot.offset for slot in func.param_slots]
        assert offsets == [0, 4]
        assert func.frame_size >= 12

    def test_alignment_respected(self):
        src = "int f(char a, int b) { return a + b; }"
        func = lower(src).functions["f"]
        assert func.param_slots[1].offset == 4  # int aligned after char

    def test_array_local_size(self):
        src = "int f(void) { int a[10]; a[0] = 1; return a[0]; }"
        func = lower(src).functions["f"]
        assert func.frame_size >= 40

    def test_struct_local_size(self):
        src = """
        struct wide { int a; int b; int c; };
        int f(void) { struct wide w; w.a = 1; return w.a; }
        """
        func = lower(src).functions["f"]
        assert func.frame_size >= 12

    def test_shadowed_locals_get_distinct_slots(self):
        src = """
        int f(void) {
          int x; x = 1;
          { int x; x = 2; }
          return x;
        }
        """
        from repro.interp import Machine

        assert Machine(lower(src)).run("f", ()) == 1


class TestModuleContents:
    def test_globals_collected_in_order(self):
        module = lower("int a; int b = 5; extern int c;")
        assert [g.name for g in module.globals] == ["a", "b", "c"]
        assert module.globals[1].init == 5

    def test_string_literals_interned(self):
        module = lower('char *s = "once"; int f(void) '
                       '{ return strlen("twice"); }')
        assert module.strings == [b"once", b"twice"]

    def test_string_global_init_is_ref(self):
        module = lower('char *s = "hello";')
        assert isinstance(module.globals[0].init, ir.StringRef)

    def test_enum_global_initializer(self):
        module = lower("enum { K = 9 }; int x = K;")
        assert module.globals[0].init == 9

    def test_sizeof_becomes_constant(self):
        module = lower(
            "struct s { int a; char b; }; int x = sizeof(struct s);"
        )
        assert module.globals[0].init == 8

    def test_non_constant_global_initializer_rejected(self):
        with pytest.raises(LoweringError):
            lower("int y; int x = y;")

    def test_extern_then_definition_uses_definition(self):
        module = lower("extern int x; int x = 7;")
        assert len(module.globals) == 1
        assert module.globals[0].init == 7

    def test_function_lookup_error(self):
        module = lower("int f(void) { return 0; }")
        with pytest.raises(KeyError):
            module.function("missing")
