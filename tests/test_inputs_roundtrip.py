"""Round-trip tests for input vectors across the persistence layer.

A checkpoint-resumed session must drive the machine with *byte-identical*
inputs to the session that wrote the checkpoint — every slot's kind tag
and value must survive the JSON encode/decode, for every input kind the
intrinsics can acquire (including ``ptr_choice``, whose 0/1 values decide
pointer-shape branches and so change the whole execution if perturbed).
"""

import random

from repro.dart.inputs import _DOMAINS, InputVector, random_value
from repro.dart.pathcond import StackEntry
from repro.dart.persist import (
    _decode_im,
    _encode_im,
    load_state,
    save_state,
)
from repro.dart.runner import Dart, dart_check


def boundary_values(kind):
    lo, hi = _DOMAINS[kind]
    return sorted({lo, lo + 1, 0, 1, hi - 1, hi})


class TestEncodeDecode:
    def test_every_kind_round_trips_boundary_values(self):
        for kind in sorted(_DOMAINS):
            im = InputVector()
            values = boundary_values(kind)
            for ordinal, value in enumerate(values):
                im.record(ordinal, kind, value)
            decoded = _decode_im(_encode_im(im))
            assert [slot.kind for slot in decoded] == [kind] * len(values)
            assert decoded.values() == values

    def test_mixed_kind_vector_round_trips(self):
        rng = random.Random(0)
        im = InputVector()
        kinds = sorted(_DOMAINS) * 3
        for ordinal, kind in enumerate(kinds):
            im.record(ordinal, kind, random_value(kind, rng))
        decoded = _decode_im(_encode_im(im))
        assert [slot.kind for slot in decoded] == kinds
        assert decoded.values() == im.values()
        assert decoded.domains() == im.domains()

    def test_decoded_vector_preserves_slot_compatibility(self):
        im = InputVector()
        im.record(0, "ptr_choice", 1)
        im.record(1, "int", -(1 << 31))
        decoded = _decode_im(_encode_im(im))
        assert decoded.value_or_none(0, "ptr_choice") == 1
        assert decoded.value_or_none(0, "int") is None
        assert decoded.value_or_none(1, "int") == -(1 << 31)


class TestStateFileRoundTrip:
    def test_save_load_state_is_identity_on_inputs(self, tmp_path):
        path = str(tmp_path / "state.json")
        rng = random.Random(7)
        im = InputVector()
        kinds = sorted(_DOMAINS)
        for ordinal, kind in enumerate(kinds):
            im.record(ordinal, kind, random_value(kind, rng))
        stack = [StackEntry(1, False), StackEntry(0, True)]
        save_state(path, stack, im)
        loaded_stack, loaded_im = load_state(path)
        assert [slot.kind for slot in loaded_im] == kinds
        assert loaded_im.values() == im.values()
        assert [(e.branch, e.done) for e in loaded_stack] == \
            [(1, False), (0, True)]

    def test_double_round_trip_is_stable(self, tmp_path):
        path = str(tmp_path / "state.json")
        im = InputVector()
        for ordinal, kind in enumerate(sorted(_DOMAINS)):
            lo, hi = _DOMAINS[kind]
            im.record(ordinal, kind, hi)
        save_state(path, [StackEntry(0, False)], im)
        _, once = load_state(path)
        save_state(path, [StackEntry(0, False)], once)
        _, twice = load_state(path)
        assert _encode_im(once) == _encode_im(twice) == _encode_im(im)


POINTER_PROGRAM = """
int f(int *p, int x) {
    if (x == 7) {
        return *p;
    }
    return 0;
}
"""


class TestReplayReproduction:
    """An ErrorReport's (inputs, kinds) must re-trigger the same fault."""

    def test_pointer_fault_replays_from_report(self):
        result = dart_check(POINTER_PROGRAM, "f", seed=3, max_iterations=40)
        assert result.found_error
        report = result.errors[0]
        assert "ptr_choice" in report.kinds
        dart = Dart(POINTER_PROGRAM, "f")
        fault = dart.replay(report)
        assert fault is not None
        assert fault.kind == report.fault.kind

    def test_replay_accepts_persisted_inputs(self, tmp_path):
        result = dart_check(POINTER_PROGRAM, "f", seed=3, max_iterations=40)
        report = result.errors[0]
        # Round-trip the report's inputs through the v1 state file, as a
        # resumed session would, then replay from the decoded vector.
        im = InputVector()
        for ordinal, (kind, value) in enumerate(
                zip(report.kinds, report.inputs)):
            im.record(ordinal, kind, value)
        path = str(tmp_path / "state.json")
        save_state(path, [StackEntry(0, False)], im)
        _, loaded = load_state(path)
        assert loaded.values() == report.inputs
        dart = Dart(POINTER_PROGRAM, "f")
        fault = dart.replay(loaded.values(),
                            kinds=[slot.kind for slot in loaded])
        assert fault is not None
        assert fault.kind == report.fault.kind
